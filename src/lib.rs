//! # DIABLO — Translation of Array-Based Loops to Distributed Data-Parallel Programs
//!
//! A from-scratch Rust reproduction of Fegaras & Noor (VLDB 2020). This
//! facade crate re-exports the whole pipeline:
//!
//! ```text
//! source text ──lang──▶ AST ──core──▶ target code over comprehensions
//!            ──exec──▶ results on the dataflow engine
//!            ──interp─▶ results from the sequential reference interpreter
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use diablo::prelude::*;
//!
//! // A loop-based program: count values per key (the intro example).
//! let src = r#"
//!     input A: vector[<|K: long, V: long|>];
//!     var C: vector[long] = vector();
//!     for i = 0, 2 do
//!         C[A[i].K] += A[i].V;
//! "#;
//! let compiled = compile(src).expect("compiles");
//!
//! let ctx = Context::new(2, 4);
//! let mut session = Session::new(ctx);
//! session.bind_input(
//!     "A",
//!     vec![
//!         (0, (3, 10)),
//!         (1, (5, 25)),
//!         (2, (3, 13)),
//!     ]
//!     .into_iter()
//!     .map(|(i, (k, v))| {
//!         Value::pair(
//!             Value::Long(i),
//!             Value::record(vec![
//!                 ("K".to_string(), Value::Long(k)),
//!                 ("V".to_string(), Value::Long(v)),
//!             ]),
//!         )
//!     })
//!     .collect::<Vec<_>>(),
//! );
//! session.run(&compiled).expect("runs");
//! let mut c = session.collect("C").expect("C exists");
//! c.sort();
//! assert_eq!(
//!     c,
//!     vec![
//!         Value::pair(Value::Long(3), Value::Long(23)),
//!         Value::pair(Value::Long(5), Value::Long(25)),
//!     ]
//! );
//! ```

pub use diablo_baselines as baselines;
pub use diablo_comp as comp;
pub use diablo_core as core;
pub use diablo_dataflow as dataflow;
pub use diablo_exec as exec;
pub use diablo_interp as interp;
pub use diablo_lang as lang;
pub use diablo_runtime as runtime;
pub use diablo_workloads as workloads;

/// The most common imports for driving DIABLO end to end.
pub mod prelude {
    pub use diablo_core::compile;
    pub use diablo_dataflow::{Context, Dataset};
    pub use diablo_exec::Session;
    pub use diablo_interp::Interpreter;
    pub use diablo_runtime::Value;
}
