//! `diablod` — the DIABLO serving daemon.
//!
//! ```text
//! diablod [--listen ADDR] [engine flags] [serving flags]
//! ```
//!
//! Starts a long-lived server that accepts concurrent DIABLO programs
//! over the length-prefixed socket protocol of `diablo-serve`, runs them
//! on **one shared engine** (one morsel worker pool, one global memory
//! budget), and serves repeat programs from a plan-hash result cache.
//! Drive it with `diabloc run --connect ADDR program.dbl …` or the bench
//! harness's `serve` command.
//!
//! * `--listen ADDR` — `host:port` (port 0 picks an ephemeral port) or
//!   `unix:/path` for a Unix domain socket. Default `127.0.0.1:7716`,
//!   or `DIABLO_SERVE_LISTEN`.
//! * `--max-inflight N` — concurrent executions admitted; excess
//!   requests queue (`DIABLO_SERVE_MAX_INFLIGHT`, default 4).
//! * `--queue-deadline-ms MS` — how long a queued request may wait
//!   before a clean admission error (`DIABLO_SERVE_QUEUE_DEADLINE_MS`,
//!   default 10000).
//! * `--cache-budget BYTES` — result-cache byte budget, 0 disables
//!   caching (`DIABLO_SERVE_CACHE_BUDGET`, default 64 MiB).
//!
//! Engine flags mirror `diabloc run`: `--backend <local|tile|spill|morsel>`,
//! `--workers N`, `--partitions N`, `--memory-budget BYTES`,
//! `--dataset-budget BYTES` (one shared dataset cache across all
//! tenants — materialized datasets past the budget demote to disk and
//! recompute when dropped), `--morsel-size ROWS`, `--ordered` (each
//! also honors its `DIABLO_*` env var through the engine's own
//! defaults).
//!
//! On startup the daemon prints exactly one line to stdout —
//! `diablod: listening on <resolved addr>` — so wrappers can wait for
//! readiness; it exits cleanly when a client sends the shutdown request.

use std::process::ExitCode;
use std::time::Duration;

use diablo_dataflow::Context;
use diablo_serve::{ServeConfig, Server};

const USAGE: &str = "usage: diablod [--listen ADDR|unix:/path] [--backend <local|tile|spill|morsel>] [--workers N] [--partitions N] [--memory-budget BYTES] [--dataset-budget BYTES] [--morsel-size ROWS] [--ordered] [--max-inflight N] [--queue-deadline-ms MS] [--cache-budget BYTES]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match serve(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("diablod: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// One `--flag value` / `--flag=value` extraction pass.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix(&format!("{flag}=")) {
            let v = v.to_string();
            args.remove(i);
            return Ok(Some(v));
        }
        if args[i] == flag {
            if i + 1 >= args.len() {
                return Err(format!("{flag} requires a value"));
            }
            let v = args[i + 1].clone();
            args.drain(i..=i + 1);
            return Ok(Some(v));
        }
        i += 1;
    }
    Ok(None)
}

/// A flag value, falling back to its environment variable.
fn flag_or_env(args: &mut Vec<String>, flag: &str, env: &str) -> Result<Option<String>, String> {
    match take_flag(args, flag)? {
        Some(v) => Ok(Some(v)),
        None => Ok(std::env::var(env).ok().filter(|v| !v.is_empty())),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: `{s}` is not a valid value"))
}

fn serve(mut args: Vec<String>) -> Result<(), String> {
    let ordered = args.iter().any(|a| a == "--ordered");
    args.retain(|a| a != "--ordered");

    let listen = flag_or_env(&mut args, "--listen", "DIABLO_SERVE_LISTEN")?
        .unwrap_or_else(|| "127.0.0.1:7716".to_string());
    let backend = take_flag(&mut args, "--backend")?;
    let workers = take_flag(&mut args, "--workers")?
        .map(|v| parse_num::<usize>("--workers", &v))
        .transpose()?;
    let partitions = take_flag(&mut args, "--partitions")?
        .map(|v| parse_num::<usize>("--partitions", &v))
        .transpose()?;
    let memory_budget = take_flag(&mut args, "--memory-budget")?
        .map(|v| parse_num::<u64>("--memory-budget", &v))
        .transpose()?;
    let dataset_budget = take_flag(&mut args, "--dataset-budget")?
        .map(|v| parse_num::<u64>("--dataset-budget", &v))
        .transpose()?;
    let morsel_size = take_flag(&mut args, "--morsel-size")?
        .map(|v| parse_num::<usize>("--morsel-size", &v))
        .transpose()?;

    let mut cfg = ServeConfig::default();
    if let Some(v) = flag_or_env(&mut args, "--max-inflight", "DIABLO_SERVE_MAX_INFLIGHT")? {
        cfg.max_inflight = parse_num("--max-inflight", &v)?;
    }
    if let Some(v) = flag_or_env(
        &mut args,
        "--queue-deadline-ms",
        "DIABLO_SERVE_QUEUE_DEADLINE_MS",
    )? {
        cfg.queue_deadline = Duration::from_millis(parse_num("--queue-deadline-ms", &v)?);
    }
    if let Some(v) = flag_or_env(&mut args, "--cache-budget", "DIABLO_SERVE_CACHE_BUDGET")? {
        cfg.cache_budget = parse_num("--cache-budget", &v)?;
    }
    if let Some(stray) = args.first() {
        return Err(format!("unexpected argument `{stray}`\n{USAGE}"));
    }

    let ctx = Context::sized(workers, partitions);
    if let Some(b) = memory_budget {
        ctx.set_memory_budget(Some(b));
    }
    if let Some(b) = dataset_budget {
        ctx.set_dataset_budget(Some(b));
    }
    if let Some(rows) = morsel_size {
        ctx.set_morsel_size(rows);
    }
    if ordered {
        ctx.set_ordered(true);
    }
    let ctx = match backend {
        None => ctx,
        Some(name) => {
            let exec = diablo_dataflow::executor_named(&name).ok_or_else(|| {
                format!(
                    "unknown backend `{name}` (try {})",
                    diablo_dataflow::BACKEND_NAMES.join(", ")
                )
            })?;
            ctx.with_executor(exec)
        }
    };

    let server = Server::start(&listen, ctx, cfg).map_err(|e| format!("{listen}: {e}"))?;
    // The single readiness line wrappers wait for; flushed immediately
    // so piped stdout sees it before the first request.
    println!("diablod: listening on {}", server.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.join();
    Ok(())
}
