//! `diabloc` — the DIABLO command-line compiler and runner.
//!
//! ```text
//! diabloc check   <program.dbl>             # parse + type check + restriction check
//! diabloc check --json <program.dbl>        # same, diagnostics as stable JSON
//! diabloc lint    <program.dbl>             # check + program lints (shuffle forecast, …)
//! diabloc lint --json <program.dbl>         # lints as stable JSON
//! diabloc show    <program.dbl>             # print the translated bulk statements
//! diabloc run     <program.dbl> [bindings]  # execute on the dataflow engine
//! diabloc interp  <program.dbl> [bindings]  # execute with the sequential interpreter
//! diabloc explain <program.dbl> [bindings]  # print the executed physical plan
//! diabloc run --explain <program.dbl> ...   # same as `explain`
//! diabloc run --backend spill <program.dbl> # pick the execution backend
//! diabloc run --workers 8 --partitions 32 --memory-budget 1048576 ...
//! diabloc run --ordered <program.dbl>       # sort-based (key-ordered) shuffles
//! ```
//!
//! Every source-consuming command runs the **multi-error front end**: a
//! faulty program reports *all* of its syntax, type, and §3.2 restriction
//! violations in one run, each as a rustc-style caret snippet with a
//! stable `D0xx` code (see `diablo_diag::codes`). `--json` (for `check`
//! and `lint`) emits the same diagnostics as one stable JSON document on
//! stdout instead. `lint` additionally reports advisory warnings on
//! *accepted* programs — updates that compile to a group-by shuffle
//! (Rule (17) not eliminable), non-monoid accumulations, unused or dead
//! stores, and provably out-of-bounds constant subscripts; warnings never
//! fail the command.
//!
//! Engine flags (for `run` and `explain` only):
//!
//! * `--backend <name>` selects the execution backend: `local`
//!   (tuple-at-a-time, the default), `tile` (batch-at-a-time, tuned for
//!   tiled-matrix workloads), `spill` (budgeted exchanges that spill
//!   to disk, plus adaptive stage re-chunking), `morsel` (narrow
//!   stages split into fixed-size morsels for the work-stealing pool),
//!   or `columnar` (transparent fused chains lowered to typed column
//!   chunks and run batch-at-a-time, with per-stage row fallback for
//!   opaque UDFs; `DIABLO_COLUMNAR_BATCH` sizes the batch).
//!   Results are identical across backends; only the execution strategy
//!   changes.
//! * `--workers N` / `--partitions N` size the engine context (default:
//!   one worker per core, two partitions per worker).
//! * `--memory-budget BYTES` caps the bytes a shuffle buffers in memory;
//!   buckets past the budget spill to sorted run files (equivalent to
//!   `DIABLO_MEMORY_BUDGET`).
//! * `--dataset-budget BYTES` caps the bytes of materialized datasets
//!   held in memory; entries past the budget demote to disk and, past
//!   the disk ledger, recompute from their plan on the next read
//!   (equivalent to `DIABLO_DATASET_BUDGET`). `0` disables dataset
//!   caching. Results never change.
//! * `--morsel-size ROWS` sets the scheduling granularity stages split
//!   oversized partitions into (equivalent to `DIABLO_MORSEL_SIZE`;
//!   default 16384 rows). Scheduling only — results never change.
//! * `--ordered` routes keyed operators through the sort-based shuffle
//!   path (equivalent to `DIABLO_ORDERED=1`): outputs are globally
//!   key-ordered — same rows as the hash path, in key order.
//!
//! Bindings are `name=value` for scalars (`n=100`, `a=0.5`, `x=hello`) and
//! `name=@file.csv` for collections. A collection CSV has one element per
//! line: `key,value` for vectors/maps, `i,j,value` for matrices. After a
//! run, every program variable is printed (collections truncated).
//!
//! `explain` renders the engine's physical plan — one line per fused
//! per-partition stage, shuffle, and broadcast. Inputs that are not bound
//! on the command line are synthesized from their declared types (small
//! representative collections, default scalars), so any program can be
//! explained without data files.

use std::process::ExitCode;

use diablo_core::{CompiledProgram, TStmt};
use diablo_dataflow::Context;
use diablo_diag::Diagnostics;
use diablo_exec::Session;
use diablo_interp::Interpreter;
use diablo_lang::{parse_multi, typecheck_multi, Type, TypedProgram};
use diablo_runtime::Value;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let explain_flag = args.iter().any(|a| a == "--explain");
    args.retain(|a| a != "--explain");
    let json_flag = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let engine = match EngineFlags::extract(&mut args) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("diabloc: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args, explain_flag, json_flag, &engine) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("diabloc: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The engine-shaping flags of `run` and `explain`.
#[derive(Default)]
struct EngineFlags {
    backend: Option<String>,
    workers: Option<usize>,
    partitions: Option<usize>,
    memory_budget: Option<u64>,
    dataset_budget: Option<u64>,
    morsel_size: Option<usize>,
    ordered: bool,
    /// `run` only: execute on a `diablod` server at this address
    /// (`host:port` or `unix:/path`) instead of a local engine.
    connect: Option<String>,
}

impl EngineFlags {
    /// Pulls `--backend`, `--workers`, `--partitions`, `--memory-budget`,
    /// `--dataset-budget`, `--morsel-size` (each as `--flag value` or
    /// `--flag=value`), and the bare `--ordered` out of the argument
    /// list.
    fn extract(args: &mut Vec<String>) -> Result<EngineFlags, String> {
        let mut flags = EngineFlags::default();
        args.retain(|a| {
            let hit = a == "--ordered";
            flags.ordered |= hit;
            !hit
        });
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].clone();
            let mut take_value = |flag: &str| -> Result<Option<String>, String> {
                if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                    args.remove(i);
                    return Ok(Some(v.to_string()));
                }
                if arg == flag {
                    if i + 1 >= args.len() {
                        return Err(format!("{flag} requires a value"));
                    }
                    let v = args[i + 1].clone();
                    args.drain(i..=i + 1);
                    return Ok(Some(v));
                }
                Ok(None)
            };
            if let Some(name) = take_value("--backend")? {
                flags.backend = Some(name);
            } else if let Some(n) = take_value("--workers")? {
                flags.workers = Some(parse_count("--workers", &n)?);
            } else if let Some(n) = take_value("--partitions")? {
                flags.partitions = Some(parse_count("--partitions", &n)?);
            } else if let Some(n) = take_value("--memory-budget")? {
                flags.memory_budget = Some(
                    n.parse()
                        .map_err(|_| format!("--memory-budget: `{n}` is not a byte count"))?,
                );
            } else if let Some(n) = take_value("--dataset-budget")? {
                flags.dataset_budget = Some(
                    n.parse()
                        .map_err(|_| format!("--dataset-budget: `{n}` is not a byte count"))?,
                );
            } else if let Some(n) = take_value("--morsel-size")? {
                flags.morsel_size = Some(parse_count("--morsel-size", &n)?);
            } else if let Some(addr) = take_value("--connect")? {
                flags.connect = Some(addr);
            } else {
                i += 1;
            }
        }
        Ok(flags)
    }

    /// True when any engine flag was given (they only apply to commands
    /// that build an engine context).
    fn any(&self) -> bool {
        self.backend.is_some()
            || self.workers.is_some()
            || self.partitions.is_some()
            || self.memory_budget.is_some()
            || self.dataset_budget.is_some()
            || self.morsel_size.is_some()
            || self.ordered
            || self.connect.is_some()
    }

    /// Builds the engine context these flags describe.
    fn context(&self) -> Result<Context, String> {
        let ctx = Context::sized(self.workers, self.partitions);
        if let Some(budget) = self.memory_budget {
            ctx.set_memory_budget(Some(budget));
        }
        if let Some(budget) = self.dataset_budget {
            ctx.set_dataset_budget(Some(budget));
        }
        if let Some(rows) = self.morsel_size {
            ctx.set_morsel_size(rows);
        }
        if self.ordered {
            ctx.set_ordered(true);
        }
        match &self.backend {
            None => Ok(ctx),
            Some(name) => {
                let exec = diablo_dataflow::executor_named(name).ok_or_else(|| {
                    format!(
                        "unknown backend `{name}` (try {})",
                        diablo_dataflow::BACKEND_NAMES.join(", ")
                    )
                })?;
                Ok(ctx.with_executor(exec))
            }
        }
    }
}

fn parse_count(flag: &str, s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("{flag}: `{s}` is not a positive count")),
    }
}

fn run(
    args: &[String],
    explain_flag: bool,
    json_flag: bool,
    engine: &EngineFlags,
) -> Result<(), String> {
    let [cmd, path, rest @ ..] = args else {
        return Err(USAGE.to_string());
    };
    let cmd = match (cmd.as_str(), explain_flag) {
        (cmd, false) => cmd,
        ("run" | "explain", true) => "explain",
        (other, true) => {
            return Err(format!(
                "--explain only applies to `run` (or use the `explain` command), not `{other}`"
            ))
        }
    };
    if engine.any() && !matches!(cmd, "run" | "explain") {
        return Err(format!(
            "--backend/--workers/--partitions/--memory-budget/--dataset-budget/--morsel-size/--ordered/--connect only apply to `run` and `explain`, not `{cmd}`"
        ));
    }
    if json_flag && !matches!(cmd, "check" | "lint") {
        return Err("--json only applies to `check` and `lint`".to_string());
    }
    if engine.connect.is_some() && cmd == "explain" {
        return Err("--connect only applies to `run`".to_string());
    }
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    match cmd {
        "check" => {
            let _ = front_end(&source, path, json_flag)?;
            if json_flag {
                println!("{}", diablo_diag::to_json(&Diagnostics::new()));
            } else {
                println!("{path}: ok — the program satisfies the Definition 3.1 restrictions");
            }
            Ok(())
        }
        "lint" => {
            let (tp, compiled) = front_end(&source, path, json_flag)?;
            let mut diags = Diagnostics::new();
            diags.extend(diablo_core::lint_program(&tp, &compiled));
            if json_flag {
                println!("{}", diablo_diag::to_json(&diags));
            } else if diags.is_empty() {
                println!("{path}: ok — no lint warnings");
            } else {
                eprint!("{}", diablo_diag::render_all(&diags, &source, path));
                let n = diags.len();
                eprintln!(
                    "{path}: {n} warning{} emitted",
                    if n == 1 { "" } else { "s" }
                );
            }
            // Warnings are advisory: lint fails only on front-end errors.
            Ok(())
        }
        "show" => {
            let (_, compiled) = front_end(&source, path, false)?;
            print_target(&compiled.stmts, 0);
            Ok(())
        }
        "run" => {
            if let Some(addr) = &engine.connect {
                if engine.backend.is_some()
                    || engine.workers.is_some()
                    || engine.partitions.is_some()
                    || engine.memory_budget.is_some()
                    || engine.dataset_budget.is_some()
                    || engine.morsel_size.is_some()
                    || engine.ordered
                {
                    return Err(
                        "--connect runs on the server's engine; engine flags belong to diablod"
                            .to_string(),
                    );
                }
                return run_remote(addr, &source, rest);
            }
            let (_, compiled) = front_end(&source, path, false)?;
            let mut session = Session::new(engine.context()?);
            for binding in rest {
                let (name, value) = parse_binding(binding)?;
                match value {
                    Bound::Scalar(v) => session.bind_scalar(&name, v),
                    Bound::Rows(rows) => session.bind_input(&name, rows),
                }
            }
            session.run(&compiled).map_err(|e| e.to_string())?;
            report_session(&compiled, &session);
            Ok(())
        }
        "explain" => {
            let (_, compiled) = front_end(&source, path, false)?;
            let mut session = Session::new(engine.context()?);
            for binding in rest {
                let (name, value) = parse_binding(binding)?;
                match value {
                    Bound::Scalar(v) => session.bind_scalar(&name, v),
                    Bound::Rows(rows) => session.bind_input(&name, rows),
                }
            }
            bind_synthetic_inputs(&compiled, &mut session);
            let plan = session.explain(&compiled).map_err(|e| e.to_string())?;
            print!("{plan}");
            Ok(())
        }
        "interp" => {
            // The interpreter accepts programs the restriction check would
            // reject (it runs them sequentially), so only parse and type
            // check here — still multi-error.
            let mut diags = Diagnostics::new();
            let tp = parse_multi(&source, &mut diags)
                .and_then(|p| typecheck_multi(p, &mut diags))
                .ok_or_else(|| report_diagnostics(&diags, &source, path, false))?;
            let mut interp = Interpreter::new();
            for binding in rest {
                let (name, value) = parse_binding(binding)?;
                match value {
                    Bound::Scalar(v) => interp.bind_scalar(&name, v),
                    Bound::Rows(rows) => interp
                        .bind_collection(&name, rows)
                        .map_err(|e| e.to_string())?,
                }
            }
            interp.run(&tp).map_err(|e| e.to_string())?;
            for (name, ty) in collect_var_names(&tp.var_types) {
                if ty.is_collection() {
                    if let Some(rows) = interp.collection(&name) {
                        print_rows(&name, &rows);
                    }
                } else if let Some(v) = interp.scalar(&name) {
                    println!("{name} = {v}");
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "usage: diabloc <check|lint|show|run|interp|explain> [--explain] [--json] [--backend <local|tile|spill|morsel|columnar>] [--workers N] [--partitions N] [--memory-budget BYTES] [--dataset-budget BYTES] [--morsel-size ROWS] [--ordered] [--connect ADDR] <program.dbl> [name=value | name=@rows.csv ...]";

/// Renders accumulated front-end diagnostics — rustc-style caret snippets
/// on stderr, or the stable JSON document on stdout under `--json` — and
/// returns the one-line summary the process exits with.
fn report_diagnostics(diags: &Diagnostics, source: &str, path: &str, json: bool) -> String {
    if json {
        println!("{}", diablo_diag::to_json(diags));
    } else {
        eprint!("{}", diablo_diag::render_all(diags, source, path));
    }
    let n = diags.error_count();
    format!("{path}: {n} error{} emitted", if n == 1 { "" } else { "s" })
}

/// The multi-error front end behind every source-consuming command: on
/// any fault, every diagnostic is rendered (not just the first) and a
/// one-line summary error is returned for the exit path.
fn front_end(
    source: &str,
    path: &str,
    json: bool,
) -> Result<(TypedProgram, CompiledProgram), String> {
    let mut diags = Diagnostics::new();
    diablo_core::compile_multi(source, &mut diags)
        .ok_or_else(|| report_diagnostics(&diags, source, path, json))
}

/// `run --connect`: ship the program and bindings to a `diablod` server
/// and print its outputs exactly as a local run would.
fn run_remote(addr: &str, source: &str, bindings: &[String]) -> Result<(), String> {
    let mut scalars = Vec::new();
    let mut rows = Vec::new();
    for binding in bindings {
        let (name, value) = parse_binding(binding)?;
        match value {
            Bound::Scalar(v) => scalars.push((name, v)),
            Bound::Rows(r) => rows.push((name, r)),
        }
    }
    let mut client =
        diablo_serve::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let result = client.run(source, scalars, rows, false)?;
    // Advisory lints computed server-side ride along with the response;
    // stderr keeps stdout clean for the outputs.
    for w in &result.warnings {
        eprintln!("{w}");
    }
    for (name, output) in &result.outputs {
        match output {
            diablo_serve::Output::Scalar(v) => println!("{name} = {v}"),
            diablo_serve::Output::Rows(rows) => print_rows(name, rows),
        }
    }
    Ok(())
}

/// Binds a small synthesized value for every input the user did not bind,
/// so `explain` works on any program without data files.
fn bind_synthetic_inputs(compiled: &CompiledProgram, session: &mut Session) {
    for (name, ty) in &compiled.inputs {
        if session.binding(name).is_some() {
            continue;
        }
        if ty.is_collection() {
            session.bind_input(name, synthetic_rows(ty));
        } else {
            session.bind_scalar(name, default_scalar(ty));
        }
    }
}

/// Representative rows for a collection type: 8 entries for vectors and
/// maps, a 3×3 grid for matrices.
fn synthetic_rows(ty: &Type) -> Vec<Value> {
    let elem = ty.element().cloned().unwrap_or(Type::Long);
    match ty {
        Type::Matrix(_) => {
            let mut rows = Vec::new();
            for i in 0..3i64 {
                for j in 0..3i64 {
                    rows.push(Value::pair(
                        Value::pair(Value::Long(i), Value::Long(j)),
                        default_scalar(&elem),
                    ));
                }
            }
            rows
        }
        _ => {
            let key = ty.key_type().unwrap_or(Type::Long);
            (0..8i64)
                .map(|i| Value::pair(synthetic_key(&key, i), default_scalar(&elem)))
                .collect()
        }
    }
}

/// A key of the given type for synthetic row `i` (repeats every few rows
/// for string keys, so group-bys have something to group).
fn synthetic_key(ty: &Type, i: i64) -> Value {
    match ty {
        Type::Str => Value::str(format!("w{}", i % 3)),
        Type::Tuple(ts) => Value::tuple(
            ts.iter()
                .enumerate()
                .map(|(p, t)| synthetic_key(t, if p == 0 { i / 3 } else { i % 3 }))
                .collect(),
        ),
        _ => Value::Long(i),
    }
}

/// The default scalar of a type (`4` for longs so synthesized loop bounds
/// make a little progress).
fn default_scalar(ty: &Type) -> Value {
    match ty {
        Type::Bool => Value::Bool(true),
        Type::Long => Value::Long(4),
        Type::Double => Value::Double(0.5),
        Type::Str => Value::str("x"),
        Type::Tuple(ts) => Value::tuple(ts.iter().map(default_scalar).collect()),
        Type::Record(fs) => Value::record(
            fs.iter()
                .map(|(n, t)| (n.clone(), default_scalar(t)))
                .collect(),
        ),
        _ => Value::Long(0),
    }
}

enum Bound {
    Scalar(Value),
    Rows(Vec<Value>),
}

/// Parses `name=value` / `name=@file` bindings.
fn parse_binding(s: &str) -> Result<(String, Bound), String> {
    let (name, rhs) = s
        .split_once('=')
        .ok_or_else(|| format!("binding `{s}` is not name=value"))?;
    if let Some(file) = rhs.strip_prefix('@') {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let rows = parse_rows(&text)?;
        return Ok((name.to_string(), Bound::Rows(rows)));
    }
    Ok((name.to_string(), Bound::Scalar(parse_scalar(rhs))))
}

/// Scalar literals: long, double, bool, else string.
fn parse_scalar(s: &str) -> Value {
    if let Ok(n) = s.parse::<i64>() {
        return Value::Long(n);
    }
    if let Ok(x) = s.parse::<f64>() {
        return Value::Double(x);
    }
    match s {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::str(s),
    }
}

/// CSV rows: `key,value` (vector/map) or `i,j,value` (matrix). A value
/// written `(a b c)` parses as a tuple of space-separated scalars, so
/// tuple-element vectors (e.g. K-Means points) bind from files too.
fn parse_rows(text: &str) -> Result<Vec<Value>, String> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let row = match fields.as_slice() {
            [k, v] => Value::pair(parse_scalar(k), parse_value(v)),
            [i, j, v] => Value::pair(
                Value::pair(parse_scalar(i), parse_scalar(j)),
                parse_value(v),
            ),
            _ => {
                return Err(format!(
                    "line {}: expected `key,value` or `i,j,value`",
                    lineno + 1
                ))
            }
        };
        rows.push(row);
    }
    Ok(rows)
}

/// A CSV cell: `(a b c)` is a tuple of scalars, anything else a scalar.
fn parse_value(s: &str) -> Value {
    match s.strip_prefix('(').and_then(|t| t.strip_suffix(')')) {
        Some(inner) => Value::tuple(inner.split_whitespace().map(parse_scalar).collect()),
        None => parse_scalar(s),
    }
}

fn print_target(stmts: &[TStmt], indent: usize) {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            TStmt::Assign {
                name,
                value,
                collection,
            } => {
                let kind = if *collection { "array" } else { "scalar" };
                println!(
                    "{pad}{name} := {}   [{kind}]",
                    diablo_comp::pretty_cexpr(value)
                );
            }
            TStmt::While { cond, body } => {
                println!("{pad}while {} {{", diablo_comp::pretty_cexpr(cond));
                print_target(body, indent + 1);
                println!("{pad}}}");
            }
        }
    }
}

fn collect_var_names(var_types: &std::collections::HashMap<String, Type>) -> Vec<(String, Type)> {
    let mut names: Vec<(String, Type)> = var_types
        .iter()
        .map(|(n, t)| (n.clone(), t.clone()))
        .collect();
    names.sort_by(|a, b| a.0.cmp(&b.0));
    // Hide loop indexes and compiler temporaries.
    names.retain(|(n, _)| !n.contains('#'));
    names
}

fn report_session(compiled: &CompiledProgram, session: &Session) {
    for (name, ty) in collect_var_names(&compiled.var_types) {
        if ty.is_collection() {
            if let Some(rows) = session.collect(&name) {
                print_rows(&name, &rows);
            }
        } else if let Some(v) = session.scalar(&name) {
            println!("{name} = {v}");
        }
    }
}

fn print_rows(name: &str, rows: &[Value]) {
    const LIMIT: usize = 20;
    println!("{name} = {{ {} element(s) }}", rows.len());
    for row in rows.iter().take(LIMIT) {
        println!("  {row}");
    }
    if rows.len() > LIMIT {
        println!("  ... ({} more)", rows.len() - LIMIT);
    }
}
