//! Failure-path tests: bad programs, bad inputs, and runtime faults must
//! surface as errors (never panics), on both execution paths.

use std::sync::Arc;

use diablo_core::compile;
use diablo_dataflow::{
    ColumnarExecutor, Context, Executor, LocalExecutor, MorselExecutor, RowExpr, SpillExecutor,
    TileExecutor,
};
use diablo_exec::Session;
use diablo_interp::Interpreter;
use diablo_lang::{parse, typecheck};
use diablo_runtime::{BinOp, RuntimeError, Value};

fn vec_rows(entries: &[(i64, i64)]) -> Vec<Value> {
    entries
        .iter()
        .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
        .collect()
}

#[test]
fn division_by_zero_is_an_error_on_both_paths() {
    let src = "input V: vector[long];
               var s: long = 0;
               for v in V do s += 100 / v;";
    let rows = vec_rows(&[(0, 4), (1, 0)]);

    let compiled = compile(src).unwrap();
    let mut session = Session::new(Context::new(2, 4));
    session.bind_input("V", rows.clone());
    let err = session.run(&compiled).unwrap_err();
    assert!(err.message.contains("zero"), "{err}");

    let tp = typecheck(parse(src).unwrap()).unwrap();
    let mut interp = Interpreter::new();
    interp.bind_collection("V", rows).unwrap();
    let err = interp.run(&tp).unwrap_err();
    assert!(err.message.contains("zero"), "{err}");
}

#[test]
fn malformed_collection_rows_are_rejected() {
    let src = "input V: vector[long];
               var s: long = 0;
               for v in V do s += v;";
    let compiled = compile(src).unwrap();
    let mut session = Session::new(Context::new(2, 4));
    // Rows must be (key, value) pairs; bare longs are not.
    session.bind_input("V", vec![Value::Long(5)]);
    assert!(session.run(&compiled).is_err());
}

#[test]
fn wrong_value_shapes_fail_cleanly() {
    // The program treats V as a vector of longs but the bound rows carry
    // strings; the engine must report an operator error, not panic.
    let src = "input V: vector[long];
               var s: long = 0;
               for v in V do s += v;";
    let compiled = compile(src).unwrap();
    let mut session = Session::new(Context::new(2, 4));
    session.bind_input(
        "V",
        vec![Value::pair(Value::Long(0), Value::str("not a number"))],
    );
    let err = session.run(&compiled).unwrap_err();
    assert!(err.message.contains("expects numbers"), "{err}");
}

#[test]
fn missing_scalar_input_is_reported_by_name() {
    let src = "input n: long;
               var x: long = 0;
               x := n + 1;";
    let compiled = compile(src).unwrap();
    let mut session = Session::new(Context::new(1, 1));
    let err = session.run(&compiled).unwrap_err();
    assert!(err.message.contains('n'), "{err}");
}

#[test]
fn non_boolean_while_condition_is_a_type_error() {
    let err = compile("var k: long = 0; while (k) k += 1;").unwrap_err();
    assert!(err.message.contains("bool"), "{err}");
}

#[test]
fn runtime_faults_propagate_from_worker_threads() {
    // The fault happens deep inside a shuffle stage on some partition; the
    // driver still receives a proper error.
    let src = "input K: vector[long];
               input V: vector[long];
               var C: vector[long] = vector();
               for i = 0, 9 do C[K[i]] += 100 / V[i];";
    let compiled = compile(src).unwrap();
    let mut session = Session::new(Context::new(4, 8));
    session.bind_input("K", vec_rows(&[(0, 1), (1, 2), (2, 3)]));
    session.bind_input("V", vec_rows(&[(0, 10), (1, 0), (2, 5)]));
    let err = session.run(&compiled).unwrap_err();
    assert!(err.message.contains("zero"), "{err}");
}

#[test]
fn interpreter_detects_collection_used_as_scalar() {
    let tp = typecheck(
        parse(
            "input V: vector[long];
             var s: long = 0;
             for v in V do s += v;",
        )
        .unwrap(),
    )
    .unwrap();
    let mut interp = Interpreter::new();
    // Bind V as a *scalar* — shape confusion must be caught.
    interp.bind_scalar("V", Value::Long(3));
    assert!(interp.run(&tp).is_err());
}

#[test]
fn empty_inputs_produce_empty_or_unchanged_outputs() {
    let src = "input V: vector[long];
               var C: vector[long] = vector();
               var s: long = 42;
               for v in V do { C[v] += 1; s += v; };";
    let compiled = compile(src).unwrap();
    let mut session = Session::new(Context::new(2, 4));
    session.bind_input("V", Vec::new());
    session.run(&compiled).unwrap();
    assert_eq!(session.collect("C").unwrap(), Vec::<Value>::new());
    // No iterations → the scalar keeps its initial value.
    assert_eq!(session.scalar("s"), Some(Value::Long(42)));
}

#[test]
fn empty_range_loops_are_no_ops() {
    let src = "var V: vector[long] = vector();
               var s: long = 7;
               for i = 5, 4 do { V[i] := 1; s += 1; };";
    let compiled = compile(src).unwrap();
    let mut session = Session::new(Context::new(2, 4));
    session.run(&compiled).unwrap();
    assert_eq!(session.collect("V").unwrap(), Vec::<Value>::new());
    assert_eq!(session.scalar("s"), Some(Value::Long(7)));
}

#[test]
fn while_loop_that_never_runs() {
    let src = "var k: long = 10;
               var body_ran: long = 0;
               while (k < 5) { k += 1; body_ran += 1; };";
    let compiled = compile(src).unwrap();
    let mut session = Session::new(Context::new(1, 1));
    session.run(&compiled).unwrap();
    assert_eq!(session.scalar("body_ran"), Some(Value::Long(0)));
}

/// The built-in backends (tile with a tiny batch so tile replay paths
/// run; spill with a zero fallback budget so every exchanged chunk goes
/// through disk runs; morsel so injected failures also race the
/// work-stealing splitter; columnar with a tiny batch so the opaque
/// closures here exercise its per-stage row fallback).
fn sorted_failure_backends() -> Vec<Arc<dyn Executor>> {
    vec![
        Arc::new(LocalExecutor),
        Arc::new(TileExecutor::new(4)),
        Arc::new(SpillExecutor::new(0)),
        Arc::new(MorselExecutor),
        Arc::new(ColumnarExecutor::new(16)),
    ]
}

#[test]
fn sorted_path_surfaces_the_hash_paths_error_mid_sort() {
    // A UDF that fails inside the fused chain feeding the keyed operator
    // (the sort side of the sorted path) must surface the identical first
    // error — message and statement tag — as the hash path's scatter, on
    // every backend.
    for exec in sorted_failure_backends() {
        let name = exec.name();
        let run = |sorted: bool| -> RuntimeError {
            let ctx = Context::new(3, 6).with_executor(exec.clone());
            ctx.set_memory_budget(None);
            ctx.set_statement_label(Some("s4: C := poisoned map"));
            let d = ctx
                .from_vec((0..300).map(Value::Long).collect())
                .map(|v| {
                    if v.as_long() == Some(137) {
                        Err(RuntimeError::new("boom mid-sort"))
                    } else {
                        Ok(Value::pair(v.clone(), Value::Long(1)))
                    }
                })
                .unwrap();
            ctx.set_statement_label(None);
            let keyed = if sorted {
                d.sorted_reduce_by_key(|a, b| BinOp::Add.apply(a, b))
            } else {
                d.reduce_by_key(|a, b| BinOp::Add.apply(a, b))
            };
            keyed.unwrap_err()
        };
        let hash = run(false);
        let sorted = run(true);
        assert_eq!(
            sorted.message, hash.message,
            "backend `{name}`: sorted path changed the first error"
        );
        assert!(sorted.message.contains("boom mid-sort"), "{sorted}");
        assert!(
            sorted.message.contains("s4: C := poisoned map"),
            "backend `{name}`: statement tag lost on the sorted path: {sorted}"
        );
    }
}

#[test]
fn sorted_path_surfaces_the_hash_paths_error_mid_merge() {
    // A combiner that fails during the post-shuffle reduction (the merge
    // side of the sorted path). The poisoned key appears once per source
    // partition, so neither path's map-side combine ever touches it — the
    // failure happens only while merging the shuffled bucket — and both
    // paths must report the same tagged error on every backend.
    for exec in sorted_failure_backends() {
        let name = exec.name();
        let run = |sorted: bool| -> RuntimeError {
            let ctx = Context::new(3, 6).with_executor(exec.clone());
            ctx.set_memory_budget(None);
            // 60 rows chunk into 6 partitions of 10; key 5 sits at one
            // index per partition (i % 10 == 0 → key 5).
            let rows: Vec<Value> = (0..60)
                .map(|i| {
                    if i % 10 == 0 {
                        Value::pair(Value::Long(5), Value::Long(-1))
                    } else {
                        Value::pair(Value::Long(i % 7 + 100), Value::Long(i))
                    }
                })
                .collect();
            ctx.set_statement_label(Some("s9: C := poisoned combine"));
            let d = ctx.from_vec(rows);
            let combiner = |a: &Value, b: &Value| {
                if a.as_long() == Some(-1) || b.as_long() == Some(-1) {
                    Err(RuntimeError::new("boom mid-merge"))
                } else {
                    BinOp::Add.apply(a, b)
                }
            };
            let keyed = if sorted {
                d.sorted_reduce_by_key(combiner)
            } else {
                d.reduce_by_key(combiner)
            }
            .unwrap();
            ctx.set_statement_label(None);
            keyed.try_collect().unwrap_err()
        };
        let hash = run(false);
        let sorted = run(true);
        assert_eq!(
            sorted.message, hash.message,
            "backend `{name}`: sorted merge changed the first error"
        );
        assert!(sorted.message.contains("boom mid-merge"), "{sorted}");
        assert!(
            sorted.message.contains("s9: C := poisoned combine"),
            "backend `{name}`: statement tag lost in the sorted merge: {sorted}"
        );
    }
}

#[test]
fn sorted_shuffle_rejects_non_pair_rows_like_the_hash_scatter() {
    // The ordered exchange's pair check fires in canonical row order, so
    // the sorted path reports the same malformed-row error the hash
    // scatter does.
    for exec in sorted_failure_backends() {
        let name = exec.name();
        let run = |sorted: bool| -> RuntimeError {
            let ctx = Context::new(2, 4).with_executor(exec.clone());
            ctx.set_memory_budget(None);
            let d = ctx.from_vec(vec![
                Value::pair(Value::Long(1), Value::Long(10)),
                Value::Long(99), // not a (key, value) pair
            ]);
            if sorted {
                d.sorted_group_by_key().unwrap_err()
            } else {
                d.group_by_key().unwrap_err()
            }
        };
        let hash = run(false);
        let sorted = run(true);
        assert_eq!(
            sorted.message, hash.message,
            "backend `{name}`: malformed-row errors diverged"
        );
        assert!(sorted.message.contains("pair"), "{sorted}");
    }
}

#[test]
fn columnar_mid_batch_failures_match_the_row_path_byte_for_byte() {
    // A fully transparent (vectorizable) fused chain whose 137th row
    // divides by zero. Under the columnar backend the failure strikes in
    // the middle of a 64-row tile; the tile is replayed tuple-at-a-time,
    // so the surfaced first error — message and statement tag — must be
    // byte-identical to `LocalExecutor`'s, on both keyed paths and under
    // every exchange budget.
    let expr = || {
        RowExpr::Tuple(vec![
            RowExpr::Bin(
                BinOp::Mod,
                Box::new(RowExpr::Input),
                Box::new(RowExpr::Const(Value::Long(7))),
            ),
            RowExpr::Bin(
                BinOp::Div,
                Box::new(RowExpr::Const(Value::Long(1000))),
                Box::new(RowExpr::Bin(
                    BinOp::Sub,
                    Box::new(RowExpr::Input),
                    Box::new(RowExpr::Const(Value::Long(137))),
                )),
            ),
        ])
    };
    for budget in [None, Some(4096), Some(0)] {
        for sorted in [false, true] {
            let run = |exec: Arc<dyn Executor>| -> RuntimeError {
                let ctx = Context::new(3, 6).with_executor(exec);
                ctx.set_memory_budget(budget);
                ctx.set_statement_label(Some("s3: C := 1000 / (V[i] - 137)"));
                let d = ctx
                    .from_vec((0..300).map(Value::Long).collect())
                    .map_expr(expr())
                    .unwrap();
                ctx.set_statement_label(None);
                let keyed = if sorted {
                    d.sorted_reduce_by_key(|a, b| BinOp::Add.apply(a, b))
                } else {
                    d.reduce_by_key(|a, b| BinOp::Add.apply(a, b))
                };
                match keyed {
                    Err(e) => e,
                    Ok(k) => k.try_collect().unwrap_err(),
                }
            };
            let row_path = run(Arc::new(LocalExecutor));
            let columnar = run(Arc::new(ColumnarExecutor::new(64)));
            let mode = if sorted { "ordered" } else { "hash" };
            assert_eq!(
                columnar.message, row_path.message,
                "{mode}/budget {budget:?}: columnar changed the first error"
            );
            assert!(columnar.message.contains("zero"), "{columnar}");
            assert!(
                columnar.message.contains("s3: C := 1000 / (V[i] - 137)"),
                "{mode}/budget {budget:?}: statement tag lost mid-batch: {columnar}"
            );
        }
    }
}

#[test]
fn deep_nesting_is_handled() {
    // Four nested range loops, all eliminated into one bulk statement.
    let src = "var T: matrix[long] = matrix();
               for a = 0, 2 do
                 for b = 0, 2 do
                   for c = 0, 2 do
                     for d = 0, 2 do
                       T[a, b] += 1;";
    let compiled = compile(src).unwrap();
    let mut session = Session::new(Context::new(2, 4));
    session.run(&compiled).unwrap();
    let rows = session.collect("T").unwrap();
    assert_eq!(rows.len(), 9);
    for row in rows {
        let (_, v) = diablo_runtime::array::key_value(&row).unwrap();
        assert_eq!(v, Value::Long(9), "each (a, b) gets 3×3 increments");
    }
}
