//! Executor trait conformance: every backend must be plan-faithful — same
//! rows, same order, same shuffle counts, same first error for
//! deterministic chains — so the whole suite runs against both built-in
//! implementations and compares them pairwise.

use std::sync::Arc;

use diablo_dataflow::{
    executor_named, ColumnarExecutor, Context, Dataset, Executor, LocalExecutor, MorselExecutor,
    RowExpr, SpillExecutor, TileExecutor,
};
use diablo_runtime::{array::key_value, BinOp, RuntimeError, Value};

/// The backends under test. The tile executor runs with a deliberately
/// tiny batch so partition sizes exercise partial and multi-tile paths;
/// the spill executor runs once with its default budget and once with a
/// zero fallback budget so every exchanged bucket goes through disk runs
/// (and adaptive re-chunking is active on both); the morsel executor
/// splits narrow stages across the work-stealing pool; the columnar
/// executor runs with a tiny batch so fixtures span many tiles (opaque
/// closures here exercise its per-stage row fallback, transparent
/// expressions its vectorized path).
fn backends() -> Vec<Arc<dyn Executor>> {
    vec![
        Arc::new(LocalExecutor),
        Arc::new(TileExecutor::new(4)),
        Arc::new(TileExecutor::default()),
        Arc::new(SpillExecutor::default()),
        Arc::new(SpillExecutor::new(0)),
        Arc::new(MorselExecutor),
        Arc::new(ColumnarExecutor::new(16)),
        Arc::new(ColumnarExecutor::default()),
    ]
}

fn ctx_for(exec: Arc<dyn Executor>) -> Context {
    // Clear any suite-wide DIABLO_MEMORY_BUDGET so each backend runs
    // under exactly the budget its constructor chose: conformance must
    // hold for the in-memory and the fully spilled exchange alike.
    // A tiny morsel size keeps the work-stealing splitter active even on
    // these small fixtures (the default 16K-row morsel would never split
    // them) — conformance must hold at any granularity.
    let ctx = Context::new(3, 5).with_executor(exec).with_morsel_size(16);
    ctx.set_memory_budget(None);
    ctx
}

fn long_pairs(ctx: &Context, entries: &[(i64, i64)]) -> Dataset {
    ctx.from_vec(
        entries
            .iter()
            .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
            .collect(),
    )
}

/// A representative pipeline: narrow chain → keyed aggregation → map.
fn pipeline(ctx: &Context) -> Vec<Value> {
    let d = ctx.range(0, 199);
    d.map(|v| BinOp::Mul.apply(v, &Value::Long(3)))
        .unwrap()
        .filter(|v| Ok(v.as_long().unwrap() % 2 == 0))
        .unwrap()
        .flat_map(|v| Ok(vec![v.clone(), v.clone()]))
        .unwrap()
        .map(|v| {
            Ok(Value::pair(
                Value::Long(v.as_long().unwrap() % 7),
                v.clone(),
            ))
        })
        .unwrap()
        .reduce_by_key(|a, b| BinOp::Add.apply(a, b))
        .unwrap()
        .map(|row| {
            let (k, v) = key_value(row)?;
            Ok(Value::pair(v, k))
        })
        .unwrap()
        .collect()
}

#[test]
fn backends_agree_on_a_full_pipeline() {
    let reference = pipeline(&ctx_for(Arc::new(LocalExecutor)));
    assert!(!reference.is_empty());
    for exec in backends() {
        let name = exec.name();
        let got = pipeline(&ctx_for(exec));
        assert_eq!(got, reference, "backend `{name}` diverged");
    }
}

#[test]
fn backends_agree_on_narrow_chain_order_and_stage_count() {
    let mut outputs: Vec<(String, Vec<Value>)> = Vec::new();
    for exec in backends() {
        let name = exec.name().to_string();
        let ctx = ctx_for(exec);
        let d = ctx.from_vec((0..137).map(Value::Long).collect());
        let chained = d
            .map(|v| BinOp::Add.apply(v, &Value::Long(10)))
            .unwrap()
            .filter(|v| Ok(v.as_long().unwrap() % 3 != 0))
            .unwrap()
            .flat_map(|v| {
                let x = v.as_long().unwrap();
                Ok(vec![Value::Long(x), Value::Long(-x)])
            })
            .unwrap();
        let before = ctx.stats().snapshot();
        let rows = chained.collect();
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(
            after.physical_stages, 1,
            "backend `{name}` must fuse the chain into one stage"
        );
        outputs.push((name, rows));
    }
    for (name, rows) in &outputs[1..] {
        assert_eq!(rows, &outputs[0].1, "backend `{name}` changed row order");
    }
}

#[test]
fn backends_agree_on_shuffle_volume() {
    let mut volumes = Vec::new();
    for exec in backends() {
        let name = exec.name().to_string();
        let ctx = ctx_for(exec);
        let entries: Vec<(i64, i64)> = (0..600).map(|i| (i % 13, i)).collect();
        let d = long_pairs(&ctx, &entries);
        let before = ctx.stats().snapshot();
        let r = d.reduce_by_key(|a, b| BinOp::Add.apply(a, b)).unwrap();
        let _ = r.collect();
        let after = ctx.stats().snapshot().since(&before);
        volumes.push((name, after.shuffles, after.shuffled_records));
    }
    for (name, shuffles, records) in &volumes[1..] {
        assert_eq!(
            (shuffles, records),
            (&volumes[0].1, &volumes[0].2),
            "backend `{name}` moved a different number of rows"
        );
    }
}

type BackendRows = (String, Vec<Value>, Vec<Value>, Vec<Value>);

#[test]
fn backends_agree_on_union_merge_and_join() {
    let mut outputs: Vec<BackendRows> = Vec::new();
    for exec in backends() {
        let name = exec.name().to_string();
        let ctx = ctx_for(exec);
        let a = long_pairs(&ctx, &[(1, 1), (2, 2), (3, 3), (4, 4)]);
        let b = long_pairs(&ctx, &[(2, 20), (3, 30), (5, 50)]);
        let union_rows = a.union(&b).try_collect().unwrap();
        let merged = a
            .merge(&b, Some(|x: &Value, y: &Value| BinOp::Add.apply(x, y)))
            .unwrap()
            .collect_sorted();
        let joined = a.join(&b).unwrap().collect_sorted();
        outputs.push((name, union_rows, merged, joined));
    }
    for (name, u, m, j) in &outputs[1..] {
        assert_eq!(u, &outputs[0].1, "backend `{name}` union diverged");
        assert_eq!(m, &outputs[0].2, "backend `{name}` merge diverged");
        assert_eq!(j, &outputs[0].3, "backend `{name}` join diverged");
    }
}

#[test]
fn backends_surface_the_same_first_error() {
    // Row 2 fails in the second step; row 7 fails in the first step.
    // Tuple-at-a-time order reaches row 2's second-step error first, and
    // the tile backend must replay to the same error.
    let mut messages = Vec::new();
    for exec in backends() {
        let name = exec.name().to_string();
        let ctx = ctx_for(exec);
        let d = ctx.from_vec((0..10).map(Value::Long).collect());
        let err = d
            .map(|v| {
                if v.as_long() == Some(7) {
                    Err(RuntimeError::new("first-step error"))
                } else {
                    Ok(v.clone())
                }
            })
            .unwrap()
            .map(|v| {
                if v.as_long() == Some(2) {
                    Err(RuntimeError::new("second-step error"))
                } else {
                    Ok(v.clone())
                }
            })
            .unwrap()
            .try_collect()
            .unwrap_err();
        messages.push((name, err.message));
    }
    for (name, msg) in &messages {
        assert_eq!(
            msg, "second-step error",
            "backend `{name}` surfaced the wrong first error"
        );
    }
}

#[test]
fn backends_surface_the_same_first_error_from_the_consumer_sink() {
    // The first error in canonical row order can come from the CONSUMER
    // (here the shuffle's key check on row 0), not from a step (row 1's
    // map error). The tile backend's batch replay must reproduce the
    // sink's error, not short-circuit on the step's.
    let mut messages = Vec::new();
    for exec in backends() {
        let name = exec.name().to_string();
        // One partition, so both rows share a tile and the batch replay
        // path is what decides which error surfaces.
        let ctx = Context::new(2, 1).with_executor(exec);
        let d = ctx.from_vec(vec![Value::Long(0), Value::Long(1)]);
        let err = d
            .map(|v| match v.as_long() {
                // Row 0 becomes a non-pair value: the scatter rejects it.
                Some(0) => Ok(Value::Long(99)),
                // Row 1 fails inside the step itself.
                Some(1) => Err(RuntimeError::new("step error on row 1")),
                _ => Ok(v.clone()),
            })
            .unwrap()
            .group_by_key()
            .unwrap_err();
        messages.push((name, err.message));
    }
    for (name, msg) in &messages[1..] {
        assert_eq!(
            msg, &messages[0].1,
            "backend `{name}` surfaced a different first error"
        );
    }
    assert!(
        messages[0].1.contains("pair"),
        "row 0's sink error comes first in tuple order: {}",
        messages[0].1
    );
}

#[test]
fn backends_agree_under_reduce_and_group() {
    for exec in backends() {
        let name = exec.name().to_string();
        let ctx = ctx_for(exec);
        let d = ctx.range(1, 500);
        let sum = d.reduce(|a, b| BinOp::Add.apply(a, b)).unwrap().unwrap();
        assert_eq!(sum, Value::Long(125250), "backend `{name}`");
        let entries: Vec<(i64, i64)> = (0..100).map(|i| (i % 4, i)).collect();
        let g = long_pairs(&ctx, &entries).group_by_key().unwrap();
        let rows = g.collect_sorted();
        assert_eq!(rows.len(), 4, "backend `{name}`");
        for row in rows {
            let (_, bag) = key_value(&row).unwrap();
            assert_eq!(bag.as_bag().unwrap().len(), 25, "backend `{name}`");
        }
    }
}

#[test]
fn introspection_is_stable() {
    let local = executor_named("local").unwrap();
    assert_eq!(local.name(), "local");
    assert!(!local.capabilities().vectorized);
    assert!(local.capabilities().fused_shuffle_read);
    assert!(local.capabilities().union_in_place);

    let tile = executor_named("tile").unwrap();
    assert_eq!(tile.name(), "tile");
    assert!(tile.capabilities().vectorized);
    assert!(!tile.capabilities().spilling_exchange);

    let spill = executor_named("spill").unwrap();
    assert_eq!(spill.name(), "spill");
    assert!(spill.capabilities().spilling_exchange);
    assert!(spill.capabilities().adaptive_chunking);
    assert!(spill.capabilities().fused_shuffle_read);

    let columnar = executor_named("columnar").unwrap();
    assert_eq!(columnar.name(), "columnar");
    assert!(columnar.capabilities().vectorized);
    assert!(columnar.capabilities().fused_shuffle_read);
    assert!(!columnar.capabilities().spilling_exchange);

    assert!(executor_named("flink").is_none());
    assert!(
        diablo_dataflow::BACKEND_NAMES.contains(&"spill"),
        "the registry lists the spill backend"
    );
    assert!(
        diablo_dataflow::BACKEND_NAMES.contains(&"columnar"),
        "the registry lists the columnar backend"
    );
}

/// A transparent chain (built via `map_expr` / `filter_expr`) must return
/// the same rows in the same order on every backend — and actually engage
/// the columnar driver's vectorized path on the columnar backend.
#[test]
fn backends_agree_on_a_transparent_expression_chain() {
    fn chain(ctx: &Context) -> Vec<Value> {
        let d = ctx.range(0, 499);
        d.map_expr(RowExpr::Bin(
            BinOp::Mul,
            Box::new(RowExpr::Input),
            Box::new(RowExpr::Const(Value::Long(3))),
        ))
        .unwrap()
        .filter_expr(RowExpr::Bin(
            BinOp::Lt,
            Box::new(RowExpr::Bin(
                BinOp::Mod,
                Box::new(RowExpr::Input),
                Box::new(RowExpr::Const(Value::Long(7))),
            )),
            Box::new(RowExpr::Const(Value::Long(4))),
        ))
        .unwrap()
        .map_expr(RowExpr::Tuple(vec![
            RowExpr::Input,
            RowExpr::Bin(
                BinOp::Add,
                Box::new(RowExpr::Input),
                Box::new(RowExpr::Const(Value::Long(1))),
            ),
        ]))
        .unwrap()
        .collect()
    }
    let reference = chain(&ctx_for(Arc::new(LocalExecutor)));
    assert!(!reference.is_empty());
    for exec in backends() {
        let name = exec.name();
        let ctx = ctx_for(exec);
        let before = ctx.stats().snapshot();
        let got = chain(&ctx);
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(got, reference, "backend `{name}` diverged");
        if name == "columnar" {
            assert!(
                after.vectorized_batches > 0,
                "columnar backend must vectorize a fully transparent chain"
            );
            assert_eq!(after.row_fallback_stages, 0, "no fallback expected");
        }
    }
}

/// An opaque closure in an otherwise transparent chain demotes the stage
/// to the row path — counted, and still row- and error-identical.
#[test]
fn columnar_falls_back_per_stage_on_opaque_steps() {
    let reference = {
        let ctx = ctx_for(Arc::new(LocalExecutor));
        let d = ctx.from_vec((0..200).map(Value::Long).collect());
        d.map(|v| BinOp::Add.apply(v, &Value::Long(5)))
            .unwrap()
            .collect()
    };
    let ctx = ctx_for(Arc::new(ColumnarExecutor::new(32)));
    let d = ctx.from_vec((0..200).map(Value::Long).collect());
    let before = ctx.stats().snapshot();
    let got = d
        .map(|v| BinOp::Add.apply(v, &Value::Long(5)))
        .unwrap()
        .collect();
    let after = ctx.stats().snapshot().since(&before);
    assert_eq!(got, reference);
    assert!(
        after.row_fallback_stages > 0,
        "opaque closure must be counted as a row fallback: {after:?}"
    );
    assert_eq!(after.vectorized_batches, 0, "{after:?}");
}

#[test]
fn context_swaps_backends_in_place() {
    let ctx = Context::new(2, 4);
    let default_name = ctx.executor().name();
    ctx.set_executor(Arc::new(TileExecutor::new(8)));
    assert_eq!(ctx.executor().name(), "tile");
    // Results stay correct after the swap.
    let d = ctx.range(1, 50);
    assert_eq!(d.count(), 50);
    ctx.set_executor(executor_named("local").unwrap());
    assert_eq!(ctx.executor().name(), "local");
    let _ = default_name;
}
