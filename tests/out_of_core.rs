//! Out-of-core dataset-cache conformance: a dataset budget NEVER changes
//! results.
//!
//! The dataset cache (`DIABLO_DATASET_BUDGET` /
//! `Context::with_dataset_budget`) demotes materialized datasets past
//! the memory budget to disk, drops them past the disk ledger, and
//! recomputes dropped entries from their plan on the next read. All of
//! that must be invisible: Word Count and PageRank on inputs many times
//! the budget return byte-identical rows, in identical order, with the
//! identical first error, on every backend × hash/ordered routing — at
//! an unbounded budget, at a 4 KiB budget (everything demotes), and at
//! a zero budget (caching disabled, every re-read recomputes).
//!
//! The second half regression-tests the cache-pinning bug this cache
//! replaced: a materialized dataset used to be pinned by an
//! `Arc<OnceLock>` forever, so loop-shaped sessions (diablod serving,
//! `while` programs) grew memory per iteration. Entries must now be
//! released the moment the last dataset or derived plan drops.

use diablo_core::compile;
use diablo_dataflow::{executor_named, Context, StatsSnapshot, BACKEND_NAMES};
use diablo_exec::Session;
use diablo_runtime::Value;
use diablo_workloads as wl;

/// Runs a workload on one backend / routing / dataset budget; returns
/// every output collection (in engine partition order) plus the run's
/// statistics delta.
fn run_budgeted(
    w: &wl::Workload,
    backend: &str,
    ordered: bool,
    budget: Option<u64>,
) -> (Vec<(String, Vec<Value>)>, StatsSnapshot) {
    let ctx = Context::new(3, 6)
        .with_executor(executor_named(backend).expect(backend))
        .with_ordered(ordered);
    ctx.set_dataset_budget(budget);
    let compiled = compile(w.source).expect("compiles");
    let mut s = Session::new(ctx.clone());
    for (n, v) in &w.scalars {
        s.bind_scalar(n, v.clone());
    }
    for (n, rows) in &w.collections {
        s.bind_input(n, rows.clone());
    }
    let before = ctx.stats().snapshot();
    s.run(&compiled).expect("runs");
    let stats = ctx.stats().snapshot().since(&before);
    let outputs = w
        .outputs
        .iter()
        .map(|out| {
            (
                out.to_string(),
                s.dataset(out).expect("output bound").collect(),
            )
        })
        .collect();
    (outputs, stats)
}

/// The tentpole contract: Word Count and PageRank on inputs far past the
/// budget (the 4 KiB budget is ~10–100× smaller than the materialized
/// data) are byte-identical to the unbounded run, per backend and per
/// shuffle routing — and the budgeted runs actually exercised the cache
/// (spills or evictions fired).
#[test]
fn word_count_and_pagerank_are_budget_invariant_on_every_backend() {
    let workloads = [wl::word_count(1500, 7), wl::pagerank(60, 3, 7)];
    for w in &workloads {
        for &backend in BACKEND_NAMES {
            for ordered in [false, true] {
                let (reference, base) = run_budgeted(w, backend, ordered, None);
                assert!(
                    reference.iter().any(|(_, rows)| !rows.is_empty()),
                    "{}: empty reference on {backend}",
                    w.name
                );
                assert_eq!(base.dataset_spills, 0, "unbounded run never spills");
                assert_eq!(base.dataset_evictions, 0, "unbounded run never evicts");
                for budget in [Some(4096), Some(0)] {
                    let (got, stats) = run_budgeted(w, backend, ordered, budget);
                    assert_eq!(
                        got, reference,
                        "{} diverged on {backend} (ordered={ordered}, budget={budget:?})",
                        w.name
                    );
                    match budget {
                        // 4 KiB: materialized datasets exceed the memory
                        // tier, so LRU demotion to disk must have fired.
                        Some(4096) => assert!(
                            stats.dataset_spills > 0,
                            "{} on {backend}: no spills under a 4 KiB budget: {stats:?}",
                            w.name
                        ),
                        // 0: caching is disabled — every insert is an
                        // eviction, nothing is ever held.
                        _ => assert!(
                            stats.dataset_evictions > 0,
                            "{} on {backend}: no evictions under a zero budget: {stats:?}",
                            w.name
                        ),
                    }
                }
            }
        }
    }
}

/// Deferred first errors are budget-invariant too: the recomputed plan
/// carries the same statement tags, so the error message — tag included —
/// matches the unbounded run exactly.
#[test]
fn first_error_is_budget_invariant() {
    const FAILING: &str = "
        input V: vector[long];
        var X: vector[long] = vector();
        for i = 0, 9 do X[i] := 100 / V[i];
    ";
    let rows: Vec<Value> = (0..10)
        .map(|i| Value::pair(Value::Long(i), Value::Long(i - 4)))
        .collect();
    let run = |budget: Option<u64>| -> String {
        let ctx = Context::new(3, 6);
        ctx.set_dataset_budget(budget);
        let mut s = Session::new(ctx);
        s.bind_input("V", rows.clone());
        s.run(&compile(FAILING).expect("compiles"))
            .expect_err("divides by zero")
            .to_string()
    };
    let reference = run(None);
    assert!(reference.contains(":X"), "tagged: {reference}");
    assert_eq!(run(Some(4096)), reference);
    assert_eq!(run(Some(0)), reference);
}

/// A dropped cache entry recomputes from lineage — and the recompute
/// counter proves it happened (a zero budget marks every insert evicted,
/// so the second read of a materialized dataset is a recompute).
#[test]
fn evicted_datasets_recompute_from_lineage() {
    let ctx = Context::new(2, 4).with_dataset_budget(0);
    let d = ctx
        .range(0, 499)
        .map(|v| Ok(Value::pair(v.clone(), v.clone())))
        .unwrap()
        .materialize()
        .expect("materializes");
    let first = d.collect();
    let again = d.collect();
    assert_eq!(first, again, "recomputed rows are byte-identical");
    let snap = ctx.stats_snapshot();
    assert!(snap.dataset_evictions > 0, "{snap:?}");
    assert!(snap.dataset_recomputes > 0, "{snap:?}");
    assert_eq!(snap.dataset_budget, 0);
}

/// `unpersist` releases an entry eagerly; the dataset stays usable and
/// recomputes on the next read.
#[test]
fn unpersist_releases_and_recomputes() {
    let ctx = Context::new(2, 4);
    let d = ctx
        .range(0, 99)
        .map(|v| Ok(v.clone()))
        .unwrap()
        .materialize()
        .expect("materializes");
    let before = d.collect();
    d.unpersist();
    assert_eq!(d.collect(), before, "usable after unpersist");
}

/// The cache-pinning regression, engine level: a loop creating and
/// dropping one materialized dataset per iteration must hold at most one
/// live entry. Each iteration's ~9 KiB result alone fits the 16 KiB
/// budget, but any two leaked iterations would not — so a single spill
/// or eviction means superseded datasets were still pinned.
#[test]
fn dropped_datasets_release_their_cache_entries() {
    let ctx = Context::new(2, 4).with_dataset_budget(16 << 10);
    for i in 0..100 {
        let d = ctx
            .range(0, 499)
            .map(move |v| Ok(Value::pair(v.clone(), Value::Long(i))))
            .unwrap()
            .materialize()
            .expect("materializes");
        assert_eq!(d.count(), 500);
    }
    let snap = ctx.stats_snapshot();
    assert_eq!(
        snap.dataset_spills, 0,
        "leaked pins forced spills: {snap:?}"
    );
    assert_eq!(snap.dataset_evictions, 0, "{snap:?}");
}

/// The same regression through the serving shape diablod uses: one
/// session per request, loop-carried `while` programs re-assigning their
/// variables every iteration. Superseded per-iteration datasets must
/// release their entries as the loop overwrites them, so a long loop
/// under a budget sized for ONE iteration's live set never spills.
#[test]
fn looping_sessions_do_not_grow_the_dataset_cache() {
    const LOOP: &str = "
        input V: vector[long];
        var X: vector[long] = vector();
        var i: long = 0;
        for j = 0, 499 do X[j] := V[j];
        while (i < 40) {
            i += 1;
            for j = 0, 499 do X[j] := X[j] + 1;
        }
    ";
    let rows: Vec<Value> = (0..500)
        .map(|j| Value::pair(Value::Long(j), Value::Long(j)))
        .collect();
    let ctx = Context::new(2, 4).with_dataset_budget(64 << 10);
    let mut s = Session::new(ctx.clone());
    s.bind_input("V", rows.clone());
    s.run(&compile(LOOP).expect("compiles")).expect("runs");
    let got = s.dataset("X").expect("output bound").collect();

    // Ground truth from an unbounded run.
    let free = Session::new(Context::new(2, 4));
    let mut free = free;
    free.bind_input("V", rows);
    free.run(&compile(LOOP).expect("compiles")).expect("runs");
    assert_eq!(got, free.dataset("X").expect("output bound").collect());

    let snap = ctx.stats_snapshot();
    assert_eq!(
        snap.dataset_spills, 0,
        "loop iterations leaked cache entries: {snap:?}"
    );
    assert_eq!(snap.dataset_evictions, 0, "{snap:?}");
}
