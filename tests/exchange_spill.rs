//! Exchange conformance under memory pressure: a budget so tiny that
//! every exchanged bucket goes through disk run files must yield rows,
//! order, shuffle counts, and first errors **identical** to the unbounded
//! in-memory exchange — on Word-Count and K-Means (the acceptance
//! workloads) and on raw `Dataset` pipelines — while the spill counters
//! prove the disk path actually ran.

use proptest::prelude::*;

use diablo_core::compile;
use diablo_dataflow::{
    Context, Dataset, HashPartitioner, Partitioner, RangePartitioner, SpillExecutor, StatsSnapshot,
};
use diablo_exec::Session;
use diablo_runtime::{array::key_value, BinOp, RuntimeError, Value};
use diablo_workloads as wl;
use std::sync::Arc;

/// A context with an explicit exchange budget (`None` = unbounded),
/// pinned regardless of any suite-wide `DIABLO_MEMORY_BUDGET`.
fn ctx_with_budget(budget: Option<u64>) -> Context {
    let ctx = Context::new(3, 6);
    ctx.set_memory_budget(budget);
    ctx
}

/// Runs a workload through a session on the given context; returns the
/// named collection in engine (partition) order plus the stats delta.
fn run_workload(w: &wl::Workload, ctx: Context, out: &str) -> (Vec<Value>, StatsSnapshot) {
    let compiled = compile(w.source).expect("compiles");
    let mut s = Session::new(ctx.clone());
    for (n, v) in &w.scalars {
        s.bind_scalar(n, v.clone());
    }
    for (n, rows) in &w.collections {
        s.bind_input(n, rows.clone());
    }
    let before = ctx.stats().snapshot();
    s.run(&compiled).expect("runs");
    let stats = ctx.stats().snapshot().since(&before);
    let rows = s.dataset(out).expect("output bound").collect();
    (rows, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn word_count_spilled_matches_unbounded(n in 200usize..1200, seed in 1u64..500) {
        let w = wl::word_count(n, seed);
        let (mem_rows, mem) = run_workload(&w, ctx_with_budget(None), "C");
        let (spill_rows, spill) = run_workload(&w, ctx_with_budget(Some(0)), "C");
        prop_assert_eq!(spill_rows, mem_rows, "rows/order diverged under spilling");
        prop_assert_eq!(spill.shuffles, mem.shuffles);
        prop_assert_eq!(spill.shuffled_records, mem.shuffled_records);
        prop_assert_eq!(spill.physical_stages, mem.physical_stages);
        prop_assert_eq!(mem.spill_files, 0, "unbounded run must not spill");
        prop_assert!(spill.spill_files > 0, "budget 0 must spill: {:?}", spill);
        prop_assert!(spill.spilled_records > 0 && spill.spilled_bytes > 0, "{:?}", spill);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn kmeans_spilled_matches_unbounded(n in 60usize..220, steps in 1usize..3, seed in 1u64..200) {
        let w = wl::kmeans(n, 3, steps, seed);
        let (mem_rows, mem) = run_workload(&w, ctx_with_budget(None), "C");
        let (spill_rows, spill) = run_workload(&w, ctx_with_budget(Some(0)), "C");
        prop_assert_eq!(spill_rows, mem_rows, "rows/order diverged under spilling");
        prop_assert_eq!(spill.shuffles, mem.shuffles);
        prop_assert_eq!(spill.shuffled_records, mem.shuffled_records);
        prop_assert_eq!(spill.broadcasts, mem.broadcasts);
        prop_assert_eq!(mem.spill_files, 0);
        prop_assert!(spill.spill_files > 0, "budget 0 must spill: {:?}", spill);
    }
}

/// The spill backend (no context budget at all) agrees with local too —
/// its fallback budget kicks in, and with a zero fallback every bucket
/// hits disk.
#[test]
fn spill_backend_agrees_with_local_on_word_count() {
    let w = wl::word_count(600, 42);
    let (mem_rows, _) = run_workload(&w, ctx_with_budget(None), "C");
    let forced = ctx_with_budget(None).with_executor(Arc::new(SpillExecutor::new(0)));
    let (spill_rows, spill) = run_workload(&w, forced, "C");
    assert_eq!(spill_rows, mem_rows);
    assert!(spill.spill_files > 0, "{spill:?}");
}

#[test]
fn spilled_shuffle_surfaces_the_same_first_error() {
    // The scatter's key check fails on a non-pair row; the spilled and
    // in-memory exchanges must report the identical first error.
    let run = |budget: Option<u64>| -> RuntimeError {
        let ctx = ctx_with_budget(budget);
        let d = ctx.from_vec((0..300).map(Value::Long).collect());
        d.map(|v| {
            if v.as_long() == Some(137) {
                Ok(v.clone()) // non-pair row: the scatter rejects it
            } else {
                Ok(Value::pair(v.clone(), Value::Long(1)))
            }
        })
        .unwrap()
        .group_by_key()
        .unwrap_err()
    };
    assert_eq!(run(Some(0)).message, run(None).message);

    // An operator error inside the fused scatter chain, likewise.
    let run_step_err = |budget: Option<u64>| -> RuntimeError {
        let ctx = ctx_with_budget(budget);
        let d = ctx.from_vec((0..300).map(Value::Long).collect());
        d.map(|v| {
            if v.as_long() == Some(41) {
                Err(RuntimeError::new("boom at 41"))
            } else {
                Ok(Value::pair(v.clone(), Value::Long(1)))
            }
        })
        .unwrap()
        .reduce_by_key(|a, b| BinOp::Add.apply(a, b))
        .unwrap_err()
    };
    assert_eq!(run_step_err(Some(0)).message, run_step_err(None).message);
    assert!(run_step_err(Some(0)).message.contains("boom at 41"));
}

#[test]
fn spilled_pipeline_preserves_shuffle_read_fusion_and_caches() {
    // Spilling is invisible to the plan: reduce_by_key → map → shuffle is
    // still 2 physical stages, and spilled results cache like any other.
    let ctx = ctx_with_budget(Some(0));
    let entries: Vec<Value> = (0..500)
        .map(|i| Value::pair(Value::Long(i % 20), Value::Long(1)))
        .collect();
    let d = ctx.from_vec(entries);
    let before = ctx.stats().snapshot();
    let r = d
        .reduce_by_key(|a, b| BinOp::Add.apply(a, b))
        .unwrap()
        .map(|row| {
            let (k, v) = key_value(row)?;
            Ok(Value::pair(v, k))
        })
        .unwrap()
        .partition_by_key()
        .unwrap();
    let after = ctx.stats().snapshot().since(&before);
    assert_eq!(after.physical_stages, 2, "{after:?}");
    assert!(after.spill_files > 0, "{after:?}");
    assert_eq!(r.count(), 20);
}

#[test]
fn range_partitioner_keeps_ordered_keys_contiguous() {
    let ctx = ctx_with_budget(None);
    let rows: Vec<Value> = (0..120)
        .map(|i| Value::pair(Value::Long((i * 7) % 120), Value::Long(i)))
        .collect();
    let d = ctx.from_vec(rows);
    let part = RangePartitioner::from_sample((0..120).map(Value::Long).collect(), 6);
    let ranged = d.partition_by(&part).unwrap();
    // Same bag of rows as a hash re-partition...
    let hashed = d.partition_by(&HashPartitioner).unwrap();
    assert_eq!(ranged.collect_sorted(), hashed.collect_sorted());
    // ...but with key ranges contiguous per partition: a partition-order
    // collect visits the range buckets in ascending key-range order.
    let collected = ranged.collect();
    let buckets: Vec<usize> = collected
        .iter()
        .map(|r| {
            let (k, _) = key_value(r).unwrap();
            part.partition(&k, 6).unwrap()
        })
        .collect();
    let mut sorted = buckets.clone();
    sorted.sort();
    assert_eq!(
        buckets, sorted,
        "range buckets appear in ascending order across partitions"
    );
    // A spilled range exchange is byte-identical to the in-memory one.
    let spill_ctx = ctx_with_budget(Some(0));
    let d2 = spill_ctx.from_vec(
        (0..120)
            .map(|i| Value::pair(Value::Long((i * 7) % 120), Value::Long(i)))
            .collect(),
    );
    let before = spill_ctx.stats().snapshot();
    let ranged2 = d2.partition_by(&part).unwrap();
    let after = spill_ctx.stats().snapshot().since(&before);
    assert_eq!(ranged2.collect(), collected);
    assert!(after.spill_files > 0, "{after:?}");
}

/// Two-sided exchanges (merge/cogroup) spill independently per side and
/// still align their buckets.
#[test]
fn spilled_two_sided_exchanges_align() {
    let make = |ctx: &Context| -> (Dataset, Dataset) {
        let a = ctx.from_vec(
            (0..200)
                .map(|i| Value::pair(Value::Long(i % 50), Value::Long(i)))
                .collect(),
        );
        let b = ctx.from_vec(
            (0..100)
                .map(|i| Value::pair(Value::Long(i % 25), Value::Long(1000 + i)))
                .collect(),
        );
        (a, b)
    };
    let mem_ctx = ctx_with_budget(None);
    let (a, b) = make(&mem_ctx);
    let mem_join = a.join(&b).unwrap().collect();
    let mem_merge = a
        .merge(&b, Some(|x: &Value, y: &Value| BinOp::Add.apply(x, y)))
        .unwrap()
        .collect();
    let spill_ctx = ctx_with_budget(Some(0));
    let (a, b) = make(&spill_ctx);
    let before = spill_ctx.stats().snapshot();
    let spill_join = a.join(&b).unwrap().collect();
    let spill_merge = a
        .merge(&b, Some(|x: &Value, y: &Value| BinOp::Add.apply(x, y)))
        .unwrap()
        .collect();
    let after = spill_ctx.stats().snapshot().since(&before);
    assert_eq!(spill_join, mem_join);
    assert_eq!(spill_merge, mem_merge);
    assert!(after.spill_files > 0, "{after:?}");
}
