//! Meaning preservation, empirically: every benchmark workload is compiled
//! by DIABLO and executed on the dataflow engine, then run sequentially by
//! the reference interpreter; the results must agree (Appendix A proves
//! this must hold; these tests check the implementation does too).

use diablo_dataflow::Context;
use diablo_exec::Session;
use diablo_interp::Interpreter;
use diablo_lang::{parse, typecheck};
use diablo_runtime::Value;
use diablo_workloads::Workload;

/// Approximate equality: doubles within relative 1e-9 (engine and
/// interpreter sum in different orders, so floats drift slightly).
fn approx_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Double(x), Value::Double(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-6 * scale
        }
        (Value::Long(_), Value::Long(_))
        | (Value::Bool(_), Value::Bool(_))
        | (Value::Str(_), Value::Str(_))
        | (Value::Unit, Value::Unit) => a == b,
        (Value::Long(x), Value::Double(y)) | (Value::Double(y), Value::Long(x)) => {
            (*x as f64 - y).abs() <= 1e-6
        }
        (Value::Tuple(xs), Value::Tuple(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| approx_eq(x, y))
        }
        (Value::Record(xs), Value::Record(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|((n, x), (m, y))| n == m && approx_eq(x, y))
        }
        (Value::Bag(xs), Value::Bag(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| approx_eq(x, y))
        }
        _ => false,
    }
}

fn assert_rows_approx_eq(name: &str, var: &str, engine: &[Value], interp: &[Value]) {
    assert_eq!(
        engine.len(),
        interp.len(),
        "{name}/{var}: row counts differ (engine {} vs interpreter {})\nengine: {engine:?}\ninterp: {interp:?}",
        engine.len(),
        interp.len()
    );
    for (e, i) in engine.iter().zip(interp) {
        assert!(
            approx_eq(e, i),
            "{name}/{var}: rows differ\n  engine: {e}\n  interp: {i}"
        );
    }
}

/// Runs a workload both ways and compares every declared output.
fn check_equivalence(w: &Workload) {
    // Engine side.
    let compiled =
        diablo_core::compile(w.source).unwrap_or_else(|e| panic!("{}: compile: {e}", w.name));
    let mut session = Session::new(Context::new(4, 8));
    for (name, v) in &w.scalars {
        session.bind_scalar(name, v.clone());
    }
    for (name, rows) in &w.collections {
        session.bind_input(name, rows.clone());
    }
    session
        .run(&compiled)
        .unwrap_or_else(|e| panic!("{}: engine run: {e}", w.name));

    // Interpreter side.
    let tp = typecheck(parse(w.source).unwrap()).unwrap();
    let mut interp = Interpreter::new();
    for (name, v) in &w.scalars {
        interp.bind_scalar(name, v.clone());
    }
    for (name, rows) in &w.collections {
        interp.bind_collection(name, rows.clone()).unwrap();
    }
    interp
        .run(&tp)
        .unwrap_or_else(|e| panic!("{}: interpreter run: {e}", w.name));

    for out in &w.outputs {
        match (session.scalar(out), interp.scalar(out)) {
            (Some(e), Some(i)) => {
                assert!(
                    approx_eq(&e, &i),
                    "{}/{out}: scalar differs: engine {e} vs interpreter {i}",
                    w.name
                );
                continue;
            }
            (None, None) => {}
            (e, i) => {
                assert!(
                    e.is_none() && i.is_none() || e.is_some() == i.is_some(),
                    "{}/{out}: binding kinds differ ({e:?} vs {i:?})",
                    w.name
                );
            }
        }
        let engine_rows = session
            .collect(out)
            .unwrap_or_else(|| panic!("{}/{out}: engine has no collection", w.name));
        let interp_rows = interp
            .collection(out)
            .unwrap_or_else(|| panic!("{}/{out}: interpreter has no collection", w.name));
        assert_rows_approx_eq(w.name, out, &engine_rows, &interp_rows);
    }
}

#[test]
fn conditional_sum_matches_interpreter() {
    check_equivalence(&diablo_workloads::conditional_sum(3_000, 11));
}

#[test]
fn equal_matches_interpreter() {
    check_equivalence(&diablo_workloads::equal(2_000, 12));
}

#[test]
fn string_match_matches_interpreter() {
    check_equivalence(&diablo_workloads::string_match(2_000, 13));
}

#[test]
fn word_count_matches_interpreter() {
    check_equivalence(&diablo_workloads::word_count(3_000, 14));
}

#[test]
fn histogram_matches_interpreter() {
    check_equivalence(&diablo_workloads::histogram(2_000, 15));
}

#[test]
fn linear_regression_matches_interpreter() {
    check_equivalence(&diablo_workloads::linear_regression(2_000, 16));
}

#[test]
fn group_by_matches_interpreter() {
    check_equivalence(&diablo_workloads::group_by(3_000, 17));
}

#[test]
fn matrix_addition_matches_interpreter() {
    check_equivalence(&diablo_workloads::matrix_addition(20, 18));
}

#[test]
fn matrix_multiplication_matches_interpreter() {
    check_equivalence(&diablo_workloads::matrix_multiplication(10, 19));
}

#[test]
fn pagerank_matches_interpreter() {
    check_equivalence(&diablo_workloads::pagerank(60, 2, 20));
}

#[test]
fn kmeans_matches_interpreter() {
    check_equivalence(&diablo_workloads::kmeans(200, 3, 2, 21));
}

#[test]
fn matrix_factorization_matches_interpreter() {
    check_equivalence(&diablo_workloads::matrix_factorization(12, 2, 2, 22));
}

#[test]
fn table1_only_programs_match_interpreter() {
    for w in [
        diablo_workloads::average(2_000, 23),
        diablo_workloads::conditional_count(2_000, 24),
        diablo_workloads::count(2_000, 25),
        diablo_workloads::equal_frequency(2_000, 26),
        diablo_workloads::sum(2_000, 27),
        diablo_workloads::pca(2_000, 28),
    ] {
        check_equivalence(&w);
    }
}
