//! Property tests for the dataflow engine: every keyed operator must agree
//! with a naive single-threaded reference implementation, regardless of
//! worker count and partitioning.

use std::collections::HashMap;

use proptest::prelude::*;

use diablo_dataflow::Context;
use diablo_runtime::{array::key_value, BinOp, Value};

fn pairs_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..20, -100i64..100), 0..200)
}

fn dataset(ctx: &Context, pairs: &[(i64, i64)]) -> diablo_dataflow::Dataset {
    ctx.from_vec(
        pairs
            .iter()
            .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
            .collect(),
    )
}

fn rows_to_map(rows: Vec<Value>) -> HashMap<i64, Value> {
    rows.into_iter()
        .map(|r| {
            let (k, v) = key_value(&r).unwrap();
            (k.as_long().unwrap(), v)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduce_by_key_matches_reference(
        pairs in pairs_strategy(),
        workers in 1usize..5,
        partitions in 1usize..9,
    ) {
        let ctx = Context::new(workers, partitions);
        let d = dataset(&ctx, &pairs);
        let got = rows_to_map(d.reduce_by_key(|a, b| BinOp::Add.apply(a, b)).unwrap().collect());
        let mut want: HashMap<i64, i64> = HashMap::new();
        for &(k, v) in &pairs {
            *want.entry(k).or_insert(0) += v;
        }
        prop_assert_eq!(got.len(), want.len());
        for (k, v) in want {
            prop_assert_eq!(got.get(&k), Some(&Value::Long(v)), "key {}", k);
        }
    }

    #[test]
    fn group_by_key_collects_every_value(
        pairs in pairs_strategy(),
        partitions in 1usize..9,
    ) {
        let ctx = Context::new(2, partitions);
        let d = dataset(&ctx, &pairs);
        let grouped = d.group_by_key().unwrap().collect();
        let mut want: HashMap<i64, Vec<i64>> = HashMap::new();
        for &(k, v) in &pairs {
            want.entry(k).or_default().push(v);
        }
        prop_assert_eq!(grouped.len(), want.len());
        for row in grouped {
            let (k, bag) = key_value(&row).unwrap();
            let mut got: Vec<i64> = bag
                .as_bag()
                .unwrap()
                .iter()
                .map(|v| v.as_long().unwrap())
                .collect();
            got.sort_unstable();
            let mut expect = want.remove(&k.as_long().unwrap()).unwrap();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn join_matches_nested_loop_reference(
        left in pairs_strategy(),
        right in pairs_strategy(),
    ) {
        let ctx = Context::new(3, 5);
        let l = dataset(&ctx, &left);
        let r = dataset(&ctx, &right);
        let mut got: Vec<(i64, i64, i64)> = l
            .join(&r)
            .unwrap()
            .collect()
            .into_iter()
            .map(|row| {
                let (k, lr) = key_value(&row).unwrap();
                let f = lr.as_tuple().unwrap();
                (
                    k.as_long().unwrap(),
                    f[0].as_long().unwrap(),
                    f[1].as_long().unwrap(),
                )
            })
            .collect();
        got.sort_unstable();
        let mut want: Vec<(i64, i64, i64)> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    want.push((lk, lv, rv));
                }
            }
        }
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn merge_is_right_biased_and_total(
        old in pairs_strategy(),
        new in pairs_strategy(),
    ) {
        let ctx = Context::new(2, 4);
        // Deduplicate input keys (arrays have unique keys).
        let dedup = |ps: &[(i64, i64)]| -> Vec<(i64, i64)> {
            let mut m: HashMap<i64, i64> = HashMap::new();
            for &(k, v) in ps {
                m.insert(k, v);
            }
            m.into_iter().collect()
        };
        let old = dedup(&old);
        let new = dedup(&new);
        let d = dataset(&ctx, &old)
            .merge(&dataset(&ctx, &new), None::<fn(&Value, &Value) -> Result<Value, diablo_runtime::RuntimeError>>)
            .unwrap();
        let got = rows_to_map(d.collect());
        let mut want: HashMap<i64, i64> = old.iter().copied().collect();
        for &(k, v) in &new {
            want.insert(k, v);
        }
        prop_assert_eq!(got.len(), want.len());
        for (k, v) in want {
            prop_assert_eq!(got.get(&k), Some(&Value::Long(v)));
        }
    }

    #[test]
    fn merge_with_combines_colliding_keys(
        old in pairs_strategy(),
        new in pairs_strategy(),
    ) {
        let ctx = Context::new(2, 4);
        let dedup = |ps: &[(i64, i64)]| -> Vec<(i64, i64)> {
            let mut m: HashMap<i64, i64> = HashMap::new();
            for &(k, v) in ps {
                m.insert(k, v);
            }
            m.into_iter().collect()
        };
        let old = dedup(&old);
        let new = dedup(&new);
        let d = dataset(&ctx, &old)
            .merge(&dataset(&ctx, &new), Some(|a: &Value, b: &Value| BinOp::Add.apply(a, b)))
            .unwrap();
        let got = rows_to_map(d.collect());
        let mut want: HashMap<i64, i64> = old.iter().copied().collect();
        for &(k, v) in &new {
            *want.entry(k).or_insert(0) += v;
        }
        for (k, v) in want {
            prop_assert_eq!(got.get(&k), Some(&Value::Long(v)), "key {}", k);
        }
    }

    #[test]
    fn reduce_matches_sequential_fold(pairs in pairs_strategy()) {
        let ctx = Context::new(4, 7);
        let d = dataset(&ctx, &pairs);
        let vals = d.map(|r| Ok(key_value(r)?.1)).unwrap();
        let got = vals.reduce(|a, b| BinOp::Add.apply(a, b)).unwrap();
        let want: i64 = pairs.iter().map(|&(_, v)| v).sum();
        if pairs.is_empty() {
            prop_assert_eq!(got, None);
        } else {
            prop_assert_eq!(got, Some(Value::Long(want)));
        }
    }

    #[test]
    fn partitioning_never_changes_results(
        pairs in pairs_strategy(),
        p1 in 1usize..8,
        p2 in 1usize..8,
    ) {
        let a = Context::new(1, p1);
        let b = Context::new(3, p2);
        let ra = dataset(&a, &pairs).reduce_by_key(|x, y| BinOp::Add.apply(x, y)).unwrap().collect_sorted();
        let rb = dataset(&b, &pairs).reduce_by_key(|x, y| BinOp::Add.apply(x, y)).unwrap().collect_sorted();
        prop_assert_eq!(ra, rb);
    }
}
