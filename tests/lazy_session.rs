//! Lazy cross-statement `Session` semantics: results, row order, shuffle
//! counts, and engine statistics must be identical to the eager
//! per-statement reference ([`Session::eager`]), and fused cross-statement
//! stages must stay observable (explain spans) and debuggable (statement
//! tags on deferred errors).

use proptest::prelude::*;

use diablo_core::compile;
use diablo_dataflow::{Context, StatsSnapshot};
use diablo_exec::Session;
use diablo_workloads as wl;

/// Runs a workload through a session; returns the named collection in
/// engine (partition) order plus the run's statistics delta.
fn run_workload(
    w: &wl::Workload,
    lazy: bool,
    out: &str,
) -> (Vec<diablo_runtime::Value>, StatsSnapshot) {
    let ctx = Context::new(3, 6);
    let compiled = compile(w.source).expect("compiles");
    let mut s = if lazy {
        Session::new(ctx.clone())
    } else {
        Session::eager(ctx.clone())
    };
    for (n, v) in &w.scalars {
        s.bind_scalar(n, v.clone());
    }
    for (n, rows) in &w.collections {
        s.bind_input(n, rows.clone());
    }
    let before = ctx.stats().snapshot();
    s.run(&compiled).expect("runs");
    let stats = ctx.stats().snapshot().since(&before);
    let rows = s.dataset(out).expect("output bound").collect();
    (rows, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lazy_word_count_matches_eager_reference(n in 200usize..1500, seed in 1u64..500) {
        let w = wl::word_count(n, seed);
        let (lazy_rows, lazy_stats) = run_workload(&w, true, "C");
        let (eager_rows, eager_stats) = run_workload(&w, false, "C");
        prop_assert_eq!(lazy_rows, eager_rows, "rows/order diverged");
        prop_assert_eq!(lazy_stats.shuffles, eager_stats.shuffles);
        prop_assert_eq!(lazy_stats.shuffled_records, eager_stats.shuffled_records);
        prop_assert_eq!(lazy_stats.broadcasts, eager_stats.broadcasts);
        prop_assert_eq!(lazy_stats.stages, eager_stats.stages, "same logical plan");
        prop_assert!(
            lazy_stats.physical_stages <= eager_stats.physical_stages,
            "laziness must never add stages: {} vs {}",
            lazy_stats.physical_stages,
            eager_stats.physical_stages
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lazy_kmeans_matches_eager_reference(n in 60usize..250, steps in 1usize..3, seed in 1u64..200) {
        let w = wl::kmeans(n, 3, steps, seed);
        let (lazy_rows, lazy_stats) = run_workload(&w, true, "C");
        let (eager_rows, eager_stats) = run_workload(&w, false, "C");
        prop_assert_eq!(lazy_rows, eager_rows, "rows/order diverged");
        prop_assert_eq!(lazy_stats.shuffles, eager_stats.shuffles);
        prop_assert_eq!(lazy_stats.shuffled_records, eager_stats.shuffled_records);
        prop_assert_eq!(lazy_stats.broadcasts, eager_stats.broadcasts);
        prop_assert_eq!(lazy_stats.broadcast_records, eager_stats.broadcast_records);
    }
}

const TWO_STATEMENT_PIPELINE: &str = "
    input V: vector[long];
    var X: vector[long] = vector();
    var Y: vector[long] = vector();
    for i = 0, 9 do X[i] := V[i] * 2;
    for i = 0, 9 do Y[i] := X[i] + 1;
";

fn bound_session(lazy: bool) -> (Context, Session) {
    let ctx = Context::new(2, 4);
    let mut s = if lazy {
        Session::new(ctx.clone())
    } else {
        Session::eager(ctx.clone())
    };
    s.bind_input(
        "V",
        (0..10)
            .map(|i| {
                diablo_runtime::Value::pair(
                    diablo_runtime::Value::Long(i),
                    diablo_runtime::Value::Long(i * 10),
                )
            })
            .collect(),
    );
    (ctx, s)
}

#[test]
fn explain_shows_one_fused_cross_statement_stage() {
    // The acceptance bar: a producer feeding a single consumer fuses
    // across the statement boundary, and the executed-plan trace says so.
    let compiled = compile(TWO_STATEMENT_PIPELINE).unwrap();
    let (_, s) = bound_session(true);
    let plan = s.explain(&compiled).unwrap();
    let spans: Vec<&str> = plan
        .lines()
        .filter(|l| l.contains("[spans stmts:"))
        .collect();
    assert_eq!(
        spans.len(),
        1,
        "exactly one cross-statement fused stage:\n{plan}"
    );
    assert!(
        spans[0].contains("s2:X") && spans[0].contains("s3:Y"),
        "the fused stage names both statements:\n{plan}"
    );
    // The eager reference never fuses across statements.
    let (_, eager) = bound_session(false);
    let eager_plan = eager.explain(&compiled).unwrap();
    assert!(
        !eager_plan.contains("[spans stmts:"),
        "eager sessions must not fuse across statements:\n{eager_plan}"
    );
}

#[test]
fn lazy_pipeline_matches_eager_and_interpreter() {
    let compiled = compile(TWO_STATEMENT_PIPELINE).unwrap();
    let (_, mut lazy) = bound_session(true);
    lazy.run(&compiled).unwrap();
    let (_, mut eager) = bound_session(false);
    eager.run(&compiled).unwrap();
    assert_eq!(lazy.collect("Y"), eager.collect("Y"));
    assert_eq!(lazy.collect("X"), eager.collect("X"));

    // Sequential interpreter as an independent oracle.
    let tp = diablo_lang::typecheck(diablo_lang::parse(TWO_STATEMENT_PIPELINE).unwrap()).unwrap();
    let mut interp = diablo_interp::Interpreter::new();
    interp
        .bind_collection(
            "V",
            (0..10)
                .map(|i| {
                    diablo_runtime::Value::pair(
                        diablo_runtime::Value::Long(i),
                        diablo_runtime::Value::Long(i * 10),
                    )
                })
                .collect(),
        )
        .unwrap();
    interp.run(&tp).unwrap();
    assert_eq!(lazy.collect("Y").unwrap(), interp.collection("Y").unwrap());
}

#[test]
fn deferred_errors_name_their_source_statement() {
    // The producing statement divides by zero for one element; the
    // producer stays lazy and its stage runs fused into the consumer, but
    // the error still names the producer (`s2:X`) and surfaces from run().
    let src = "
        input V: vector[long];
        var X: vector[long] = vector();
        var Y: vector[long] = vector();
        for i = 0, 9 do X[i] := 100 / V[i];
        for i = 0, 9 do Y[i] := X[i] + 1;
    ";
    let compiled = compile(src).unwrap();
    let ctx = Context::new(2, 4);
    let mut s = Session::new(ctx);
    s.bind_input(
        "V",
        (0..10)
            .map(|i| {
                diablo_runtime::Value::pair(
                    diablo_runtime::Value::Long(i),
                    diablo_runtime::Value::Long(i - 4), // V[4] = 0
                )
            })
            .collect(),
    );
    let err = s.run(&compiled).unwrap_err();
    assert!(
        err.message.contains("division by zero"),
        "original cause kept: {err}"
    );
    assert!(
        err.message.contains("s2:X"),
        "statement span attached: {err}"
    );
}

#[test]
fn failed_runs_settle_lazy_bindings_like_the_eager_reference() {
    // After a failed run, every lazy binding is settled: healthy plans
    // materialize (reads work, never panic) and the observable state
    // matches the eager reference, where the failing assignment leaves
    // its variable at the previous (init) value.
    let src = "
        input V: vector[long];
        var W: vector[long] = vector();
        var X: vector[long] = vector();
        var Y: vector[long] = vector();
        for i = 0, 9 do W[i] := V[i] + 1;
        for i = 0, 9 do X[i] := 100 / V[i];
        for i = 0, 9 do Y[i] := X[i] + 1;
    ";
    let compiled = compile(src).unwrap();
    let bind = |s: &mut Session| {
        s.bind_input(
            "V",
            (0..10)
                .map(|i| {
                    diablo_runtime::Value::pair(
                        diablo_runtime::Value::Long(i),
                        diablo_runtime::Value::Long(i - 4), // V[4] = 0
                    )
                })
                .collect(),
        );
    };
    let mut lazy = Session::new(Context::new(2, 4));
    bind(&mut lazy);
    let lazy_err = lazy.run(&compiled).unwrap_err();
    let mut eager = Session::eager(Context::new(2, 4));
    bind(&mut eager);
    let eager_err = eager.run(&compiled).unwrap_err();
    assert!(lazy_err.message.contains("division by zero"), "{lazy_err}");
    assert!(
        eager_err.message.contains("division by zero"),
        "{eager_err}"
    );
    // All reads work (no deferred-error panics) and agree with eager.
    for name in ["W", "X", "Y"] {
        assert_eq!(lazy.collect(name), eager.collect(name), "binding `{name}`");
    }
    assert_eq!(lazy.collect("W").map(|r| r.len()), Some(10));
}

#[test]
fn lazy_and_eager_agree_across_all_figure3_workloads() {
    for w in wl::figure3_workloads(1, 9) {
        let compiled = compile(w.source).expect(w.name);
        let run = |lazy: bool| {
            let ctx = Context::new(2, 4);
            let mut s = if lazy {
                Session::new(ctx.clone())
            } else {
                Session::eager(ctx.clone())
            };
            for (n, v) in &w.scalars {
                s.bind_scalar(n, v.clone());
            }
            for (n, rows) in &w.collections {
                s.bind_input(n, rows.clone());
            }
            s.run(&compiled).expect(w.name);
            let mut outs: Vec<(String, Vec<diablo_runtime::Value>)> = compiled
                .collection_names()
                .into_iter()
                .filter_map(|n| s.collect(&n).map(|rows| (n, rows)))
                .collect();
            outs.sort();
            outs
        };
        assert_eq!(run(true), run(false), "{} diverged", w.name);
    }
}
