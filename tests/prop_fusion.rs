//! Property tests for narrow-stage fusion (alongside `prop_engine.rs`):
//! an arbitrary chain of `map` / `filter` / `flat_map` operators over
//! random rows must produce, under the lazy fused engine, results
//! identical to a reference eager evaluation — and must not shuffle at
//! all, while a chain ending in `reduce_by_key` must shuffle exactly as
//! often as the eager plan (fusion changes stage counts, never exchange
//! counts).

use proptest::prelude::*;

use diablo_dataflow::{Context, Dataset};
use diablo_runtime::{array::key_value, BinOp, Value};

/// One narrow operator, picked by a small integer code.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NarrowOp {
    /// `v ↦ v + c`
    Add(i64),
    /// `v ↦ v * c` (c kept tiny to avoid overflow across deep chains)
    Mul(i64),
    /// keep rows with `v % c != 0`
    DropMultiples(i64),
    /// `v ↦ [v, -v]`
    Mirror,
    /// `v ↦ []` when `v % c == 0`, `[v]` otherwise (flat_map as filter)
    Erase(i64),
}

fn op_strategy() -> impl Strategy<Value = NarrowOp> {
    (0usize..5, 1i64..7).prop_map(|(code, c)| match code {
        0 => NarrowOp::Add(c),
        1 => NarrowOp::Mul(c % 3 + 1),
        2 => NarrowOp::DropMultiples(c + 1),
        3 => NarrowOp::Mirror,
        _ => NarrowOp::Erase(c + 1),
    })
}

/// Applies one op to a dataset (lazy engine path).
fn apply_engine(d: &Dataset, op: NarrowOp) -> Dataset {
    match op {
        NarrowOp::Add(c) => d
            .map(move |v| BinOp::Add.apply(v, &Value::Long(c)))
            .expect("map"),
        NarrowOp::Mul(c) => d
            .map(move |v| BinOp::Mul.apply(v, &Value::Long(c)))
            .expect("map"),
        NarrowOp::DropMultiples(c) => d
            .filter(move |v| Ok(v.as_long().unwrap_or(0) % c != 0))
            .expect("filter"),
        NarrowOp::Mirror => d
            .flat_map(|v| {
                let x = v.as_long().unwrap_or(0);
                Ok(vec![Value::Long(x), Value::Long(-x)])
            })
            .expect("flat_map"),
        NarrowOp::Erase(c) => d
            .flat_map(move |v| {
                let x = v.as_long().unwrap_or(0);
                Ok(if x % c == 0 {
                    vec![]
                } else {
                    vec![Value::Long(x)]
                })
            })
            .expect("flat_map"),
    }
}

/// Applies one op eagerly to an in-memory vector (the reference).
fn apply_reference(rows: &[i64], op: NarrowOp) -> Vec<i64> {
    match op {
        NarrowOp::Add(c) => rows.iter().map(|x| x + c).collect(),
        NarrowOp::Mul(c) => rows.iter().map(|x| x * c).collect(),
        NarrowOp::DropMultiples(c) => rows.iter().filter(|x| *x % c != 0).copied().collect(),
        NarrowOp::Mirror => rows.iter().flat_map(|&x| [x, -x]).collect(),
        NarrowOp::Erase(c) => rows.iter().filter(|x| *x % c != 0).copied().collect(),
    }
}

fn longs(rows: Vec<Value>) -> Vec<i64> {
    rows.into_iter().map(|v| v.as_long().unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_chains_match_eager_reference(
        rows in prop::collection::vec(-1000i64..1000, 0..120),
        ops in prop::collection::vec(op_strategy(), 0..8),
        workers in 1usize..4,
        partitions in 1usize..7,
    ) {
        let ctx = Context::new(workers, partitions);
        let mut d = ctx.from_vec(rows.iter().copied().map(Value::Long).collect());
        let mut want = rows.clone();
        for &op in &ops {
            d = apply_engine(&d, op);
            want = apply_reference(&want, op);
        }
        let before = ctx.stats().snapshot();
        let got = longs(d.collect());
        let after = ctx.stats().snapshot().since(&before);
        // Identical rows in identical order (fusion preserves (partition,
        // position) order exactly).
        prop_assert_eq!(&got, &want);
        // A pure narrow chain never shuffles and fuses to ≤ 1 stage.
        prop_assert_eq!(after.shuffles, 0);
        prop_assert!(
            after.physical_stages <= 1,
            "{} ops ran {} stages",
            ops.len(),
            after.physical_stages
        );
    }

    #[test]
    fn fused_and_stepwise_chains_shuffle_identically(
        pairs in prop::collection::vec((0i64..20, -100i64..100), 0..100),
        ops in prop::collection::vec(op_strategy(), 0..5),
    ) {
        // The same chain ending in reduce_by_key, run (a) fused and
        // (b) with a forced materialization between every operator, must
        // agree on results AND on how many shuffle exchanges happened —
        // fusion removes stages, never data exchanges.
        let key_of = |v: &Value| Value::Long(v.as_long().unwrap_or(0).rem_euclid(5));
        let run = |stepwise: bool| -> (Vec<Value>, u64, u64) {
            let ctx = Context::new(2, 4);
            let mut d = ctx.from_vec(
                pairs.iter().map(|&(_, v)| Value::Long(v)).collect(),
            );
            for &op in &ops {
                d = apply_engine(&d, op);
                if stepwise {
                    d = d.materialize().expect("materialize");
                }
            }
            let keyed = d
                .map(move |v| Ok(Value::pair(key_of(v), v.clone())))
                .expect("key");
            let before = ctx.stats().snapshot();
            let reduced = keyed
                .reduce_by_key(|a, b| BinOp::Add.apply(a, b))
                .expect("rbk");
            let after = ctx.stats().snapshot().since(&before);
            (reduced.collect_sorted(), after.shuffles, after.shuffled_records)
        };
        let (fused_rows, fused_shuffles, fused_moved) = run(false);
        let (eager_rows, eager_shuffles, eager_moved) = run(true);
        prop_assert_eq!(fused_rows, eager_rows);
        prop_assert_eq!(fused_shuffles, eager_shuffles);
        prop_assert_eq!(fused_moved, eager_moved);
    }

    #[test]
    fn chains_over_unions_match_reference(
        left in prop::collection::vec(-500i64..500, 0..60),
        right in prop::collection::vec(-500i64..500, 0..60),
        ops in prop::collection::vec(op_strategy(), 0..4),
    ) {
        let ctx = Context::new(2, 4);
        let l = ctx.from_vec(left.iter().copied().map(Value::Long).collect());
        let r = ctx.from_vec(right.iter().copied().map(Value::Long).collect());
        let mut d = l.union(&r);
        let mut lw = left.clone();
        let mut rw = right.clone();
        for &op in &ops {
            d = apply_engine(&d, op);
            lw = apply_reference(&lw, op);
            rw = apply_reference(&rw, op);
        }
        let mut got = longs(d.collect());
        got.sort_unstable();
        let mut want = lw;
        want.extend(rw);
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn keyed_ops_agree_after_fused_prologues(
        pairs in prop::collection::vec((0i64..12, -50i64..50), 0..80),
    ) {
        // group_by_key over a fused prologue vs over a pre-materialized
        // input: same groups, same members.
        let ctx = Context::new(3, 5);
        let mk = || {
            ctx.from_vec(
                pairs
                    .iter()
                    .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
                    .collect(),
            )
        };
        let prologue = |d: &Dataset| -> Dataset {
            d.filter(|row| Ok(key_value(row).is_ok()))
                .expect("filter")
                .map(|row| {
                    let (k, v) = key_value(row)?;
                    Ok(Value::pair(k, BinOp::Mul.apply(&v, &Value::Long(2))?))
                })
                .expect("map")
        };
        let fused = prologue(&mk()).group_by_key().expect("gbk").collect_sorted();
        let stepwise = prologue(&mk())
            .materialize()
            .expect("materialize")
            .group_by_key()
            .expect("gbk")
            .collect_sorted();
        prop_assert_eq!(fused, stepwise);
    }
}
