//! Serving conformance: `diablod` vs a local single-shot session.
//!
//! The contract (see `diablo-serve`'s crate docs): a program served over
//! the socket returns byte-identical outputs — and byte-identical error
//! messages, statement tags included — to a local run of the same
//! program, no matter how many clients are hammering the server or
//! whether the response came from the result cache.

use std::sync::Arc;
use std::thread;

use diablo_core::compile;
use diablo_dataflow::Context;
use diablo_exec::Session;
use diablo_runtime::Value;
use diablo_serve::{Client, Output, ServeConfig, Server};
use diablo_workloads as wl;

/// Runs a workload locally, producing outputs shaped exactly like a
/// server response: `(name, output)` per visible variable, sorted by
/// name — an independent reimplementation of the response assembly, so
/// the test does not inherit a server-side bug.
fn local_outputs(w: &wl::Workload) -> Result<Vec<(String, Output)>, String> {
    let compiled = compile(w.source).map_err(|e| e.to_string())?;
    let mut session = Session::new(Context::new(2, 4));
    for (name, v) in &w.scalars {
        session.bind_scalar(name, v.clone());
    }
    for (name, rows) in &w.collections {
        session.bind_input(name, rows.clone());
    }
    session.run(&compiled).map_err(|e| e.to_string())?;
    let mut names: Vec<(String, bool)> = compiled
        .var_types
        .iter()
        .filter(|(n, _)| !n.contains('#'))
        .map(|(n, t)| (n.clone(), t.is_collection()))
        .collect();
    names.sort_by(|a, b| a.0.cmp(&b.0));
    let mut outputs = Vec::new();
    for (name, is_collection) in names {
        if is_collection {
            if let Some(rows) = session.collect(&name) {
                outputs.push((name, Output::Rows(rows)));
            }
        } else if let Some(v) = session.scalar(&name) {
            outputs.push((name, Output::Scalar(v)));
        }
    }
    Ok(outputs)
}

type Scalars = Vec<(String, Value)>;
type RowBindings = Vec<(String, Vec<Value>)>;

fn remote_bindings(w: &wl::Workload) -> (Scalars, RowBindings) {
    (
        w.scalars
            .iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect(),
        w.collections
            .iter()
            .map(|(n, r)| (n.to_string(), r.clone()))
            .collect(),
    )
}

#[test]
fn concurrent_clients_match_local_runs_byte_for_byte() {
    let workloads = Arc::new(wl::figure3_workloads(1, 9));
    let expected: Arc<Vec<_>> = Arc::new(
        workloads
            .iter()
            .map(|w| local_outputs(w).expect(w.name))
            .collect(),
    );
    let server =
        Server::start("127.0.0.1:0", Context::new(2, 4), ServeConfig::default()).expect("server");
    let addr = server.addr().to_string();

    const CLIENTS: usize = 4;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let workloads = workloads.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                // Two passes: the first mixes cold runs and stampeding
                // concurrent misses, the second is mostly cache hits.
                // Either way every response must equal the local run.
                for pass in 0..2 {
                    for i in 0..workloads.len() {
                        let idx = (i + c + pass) % workloads.len();
                        let w = &workloads[idx];
                        let (scalars, rows) = remote_bindings(w);
                        let res = client
                            .run(w.source, scalars, rows, false)
                            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
                        assert_eq!(
                            res.outputs, expected[idx],
                            "{} (client {c}, pass {pass})",
                            w.name
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.stop();
}

const DIV_BY_ZERO: &str = "
    input V: vector[long];
    var X: vector[long] = vector();
    for i = 0, 9 do X[i] := 100 / V[i];
";

fn div_rows() -> Vec<Value> {
    (0..10)
        .map(|i| Value::pair(Value::Long(i), Value::Long(i - 4))) // V[4] = 0
        .collect()
}

#[test]
fn error_messages_and_statement_tags_match_local_runs() {
    let server =
        Server::start("127.0.0.1:0", Context::new(2, 4), ServeConfig::default()).expect("server");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Runtime error: the message — statement tag included — must be
    // exactly what the local session reports.
    let compiled = compile(DIV_BY_ZERO).expect("compiles");
    let mut session = Session::new(Context::new(2, 4));
    session.bind_input("V", div_rows());
    let local = session.run(&compiled).unwrap_err().to_string();
    assert!(local.contains(":X"), "tagged locally: {local}");
    let remote = client
        .run(
            DIV_BY_ZERO,
            vec![],
            vec![("V".to_string(), div_rows())],
            false,
        )
        .unwrap_err();
    assert_eq!(remote, local);

    // Errors are never cached: the identical failing request reports the
    // identical error again, not a stale cached success or blank hit.
    let again = client
        .run(
            DIV_BY_ZERO,
            vec![],
            vec![("V".to_string(), div_rows())],
            false,
        )
        .unwrap_err();
    assert_eq!(again, local);

    // Unbound input: same message as Session::run.
    let mut unbound = Session::new(Context::new(2, 4));
    let local_unbound = unbound.run(&compiled).unwrap_err().to_string();
    let remote_unbound = client.run(DIV_BY_ZERO, vec![], vec![], false).unwrap_err();
    assert_eq!(remote_unbound, local_unbound);

    // Compile error: the server reports the compiler's message verbatim.
    let bad = "input V: vector[long]; for i = 1, 8 do V[i] := V[i-1];";
    let local_compile = compile(bad).unwrap_err().to_string();
    let remote_compile = client.run(bad, vec![], vec![], false).unwrap_err();
    assert_eq!(remote_compile, local_compile);

    server.stop();
}

#[test]
fn concurrent_failures_keep_their_own_statement_tags() {
    // Two programs failing at different statements, hammered
    // concurrently: each response must carry the tag of *its* failing
    // statement. This is what Context::fork exists for — a shared
    // statement label would interleave tags across tenants.
    let later_failure = "
        input V: vector[long];
        var W: vector[long] = vector();
        var Y: vector[long] = vector();
        for i = 0, 9 do W[i] := V[i] + 1;
        for i = 0, 9 do Y[i] := 100 / V[i];
    ";
    // The ground truth per program comes from a local session, tag and
    // all — no hardcoded statement numbers.
    let local_err = |src: &str| {
        let compiled = compile(src).expect(src);
        let mut s = Session::new(Context::new(2, 4));
        s.bind_input("V", div_rows());
        s.run(&compiled).unwrap_err().to_string()
    };
    let expect_x = local_err(DIV_BY_ZERO);
    let expect_y = local_err(later_failure);
    assert!(expect_x.contains(":X"), "{expect_x}");
    assert!(expect_y.contains(":Y"), "{expect_y}");
    assert_ne!(expect_x, expect_y);

    let server =
        Server::start("127.0.0.1:0", Context::new(2, 4), ServeConfig::default()).expect("server");
    let addr = server.addr().to_string();
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            let (src, expected) = if c % 2 == 0 {
                (DIV_BY_ZERO, expect_x.clone())
            } else {
                (later_failure, expect_y.clone())
            };
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for _ in 0..5 {
                    let err = client
                        .run(src, vec![], vec![("V".to_string(), div_rows())], true)
                        .unwrap_err();
                    assert_eq!(err, expected, "wrong error for client {c}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.stop();
}

#[test]
fn identical_concurrent_misses_coalesce_into_one_execution() {
    // Request coalescing: a burst of identical cold requests must
    // execute the program ONCE. Whatever the interleaving, every
    // non-leader either waits on the in-flight leader (`coalesced`) or
    // hits the result cache after it settles — it never occupies an
    // admission slot with a duplicate execution. The `admitted` counter
    // is the executed-run count, so it pins the invariant exactly.
    let w = &wl::figure3_workloads(1, 9)[0];
    let expected = local_outputs(w).expect(w.name);
    let server =
        Server::start("127.0.0.1:0", Context::new(2, 4), ServeConfig::default()).expect("server");
    let addr = server.addr().to_string();

    const CLIENTS: usize = 8;
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let barrier = barrier.clone();
            let (scalars, rows) = remote_bindings(w);
            let name = w.name;
            let source = w.source;
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                barrier.wait();
                client
                    .run(source, scalars, rows, false)
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    for res in &results {
        assert_eq!(res.outputs, expected, "coalesced responses match local");
    }
    let leaders = results.iter().filter(|r| !r.stats.cache_hit).count();
    assert_eq!(leaders, 1, "exactly one request executed");

    let mut client = Client::connect(&addr).expect("connect");
    let stats: std::collections::HashMap<String, u64> =
        client.stats().expect("stats").into_iter().collect();
    assert_eq!(stats["admitted"], 1, "duplicates never reached admission");
    // Every non-leader was served by coalescing or by the result cache.
    assert_eq!(
        stats["coalesced"] + stats["cache_hits"],
        (CLIENTS - 1) as u64,
        "{stats:?}"
    );
    server.stop();
}

#[test]
fn coalesced_waiters_share_the_leaders_error_uncached() {
    // A leader that fails must propagate the SAME error to every waiter
    // (re-running an identical failing program per waiter would cost a
    // full execution each) — and never cache it: a fresh request after
    // the burst re-executes.
    let expected = {
        let compiled = compile(DIV_BY_ZERO).expect("compiles");
        let mut s = Session::new(Context::new(2, 4));
        s.bind_input("V", div_rows());
        s.run(&compiled).unwrap_err().to_string()
    };
    let server =
        Server::start("127.0.0.1:0", Context::new(2, 4), ServeConfig::default()).expect("server");
    let addr = server.addr().to_string();
    const CLIENTS: usize = 6;
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let barrier = barrier.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                barrier.wait();
                client
                    .run(
                        DIV_BY_ZERO,
                        vec![],
                        vec![("V".to_string(), div_rows())],
                        false,
                    )
                    .unwrap_err()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("client thread"), expected);
    }
    // Errors are never cached: the next identical request re-executes
    // and fails with the same message again.
    let mut client = Client::connect(&addr).expect("connect");
    let again = client
        .run(
            DIV_BY_ZERO,
            vec![],
            vec![("V".to_string(), div_rows())],
            false,
        )
        .unwrap_err();
    assert_eq!(again, expected);
    let stats: std::collections::HashMap<String, u64> =
        client.stats().expect("stats").into_iter().collect();
    assert_eq!(stats["cache_hits"], 0, "errors are never cached");
    server.stop();
}
