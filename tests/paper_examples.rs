//! The paper's worked examples, end to end: every concrete program and
//! translation the text walks through is checked here against the behavior
//! the paper describes.

use diablo_comp::pretty_cexpr;
use diablo_core::{compile, TStmt};
use diablo_dataflow::Context;
use diablo_exec::Session;
use diablo_runtime::Value;

fn run(src: &str, inputs: &[(&str, Vec<Value>)], scalars: &[(&str, Value)]) -> Session {
    let compiled = compile(src).expect("compiles");
    let mut s = Session::new(Context::new(2, 4));
    for (n, v) in scalars {
        s.bind_scalar(n, v.clone());
    }
    for (n, rows) in inputs {
        s.bind_input(n, rows.clone());
    }
    s.run(&compiled).expect("runs");
    s
}

fn vec_rows(entries: &[(i64, i64)]) -> Vec<Value> {
    entries
        .iter()
        .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
        .collect()
}

/// §1: `for i = 0, 9 do C[A[i].K] += A[i].V` over the example table gives
/// C = {(3, 23), (5, 25)} — "consistent with the outcome of the loop, which
/// can be unrolled to C[3]+=10; C[3]+=13; C[5]+=25".
#[test]
fn intro_table_example() {
    let a = vec![(0, (3, 10)), (1, (5, 25)), (2, (3, 13))]
        .into_iter()
        .map(|(i, (k, v))| {
            Value::pair(
                Value::Long(i),
                Value::record(vec![
                    ("K".into(), Value::Long(k)),
                    ("V".into(), Value::Long(v)),
                ]),
            )
        })
        .collect();
    let s = run(
        "input A: vector[<|K: long, V: long|>];
         var C: vector[long] = vector();
         for i = 0, 9 do C[A[i].K] += A[i].V;",
        &[("A", a)],
        &[],
    );
    assert_eq!(s.collect("C").unwrap(), vec_rows(&[(3, 23), (5, 25)]));
}

/// §3.9 first example: `for i = 1, 10 do V[i] := W[i]` translates to a
/// bounded traversal of W — no range generator, an inRange guard, and a
/// plain (non-combining) merge.
#[test]
fn section_3_9_copy_translation_shape() {
    let compiled = compile(
        "input W: vector[long];
         var V: vector[long] = vector();
         for i = 1, 10 do V[i] := W[i];",
    )
    .unwrap();
    let TStmt::Assign { value, .. } = &compiled.stmts[1] else {
        panic!()
    };
    let printed = pretty_cexpr(value);
    assert!(printed.contains('⊳'), "merge: {printed}");
    assert!(
        !printed.contains("⊳["),
        "plain merge, no combine: {printed}"
    );
    assert!(!printed.contains("range("), "range eliminated: {printed}");
    assert!(printed.contains("inRange"), "guard added: {printed}");
}

/// §3.9 second example: `for i = 1, 10 do W[K[i]] += V[i]` — the
/// translation joins V with K and groups by the indirect destination.
#[test]
fn section_3_9_indirect_increment() {
    let s = run(
        "input K: vector[long];
         input V: vector[long];
         var W: vector[long] = vector();
         for i = 1, 10 do W[K[i]] += V[i];",
        &[
            // K maps positions to destinations; two positions collide at 7.
            ("K", vec_rows(&[(1, 7), (2, 7), (3, 9)])),
            ("V", vec_rows(&[(1, 100), (2, 11), (3, 5)])),
        ],
        &[],
    );
    assert_eq!(s.collect("W").unwrap(), vec_rows(&[(7, 111), (9, 5)]));
}

/// §3.7: the scalar form `n += W[i]` keeps the initial value of n.
#[test]
fn scalar_increment_keeps_initial_value() {
    let s = run(
        "input W: vector[long];
         var n: long = 1000;
         for i = 1, 3 do n += W[i];",
        &[("W", vec_rows(&[(1, 1), (2, 2), (3, 3), (4, 999)]))],
        &[],
    );
    assert_eq!(s.scalar("n"), Some(Value::Long(1006)));
}

/// §4: `M[1, 2] += 1` — constant destination indexes, Rule (16) removes
/// the group-by; the merge still lands on the right cell.
#[test]
fn constant_index_increment() {
    let m = vec![
        Value::pair(Value::pair(Value::Long(1), Value::Long(2)), Value::Long(40)),
        Value::pair(Value::pair(Value::Long(0), Value::Long(0)), Value::Long(7)),
    ];
    let s = run(
        "input M0: matrix[long];
         var M: matrix[long] = matrix();
         for i = 0, 1 do for j = 0, 2 do M[i, j] := M0[i, j];
         M[1, 2] += 2;",
        &[("M0", m)],
        &[],
    );
    let rows = s.collect("M").unwrap();
    assert!(rows.contains(&Value::pair(
        Value::pair(Value::Long(1), Value::Long(2)),
        Value::Long(42)
    )));
}

/// §3.2's increment-then-read example computes inner-loop counts and then
/// copies them: `for i { for j { V[i] += 1 }; W[i] := V[i] }`.
#[test]
fn exception_b_example_computes_counts() {
    let s = run(
        "var V: vector[long] = vector();
         var W: vector[long] = vector();
         for i = 0, 2 do {
             for j = 0, 4 do V[i] += 1;
             W[i] := V[i];
         };",
        &[],
        &[],
    );
    assert_eq!(s.collect("W").unwrap(), vec_rows(&[(0, 5), (1, 5), (2, 5)]));
}

/// The matrix-copy example of §3.5 does one bulk update, not 10×20.
#[test]
fn matrix_copy_is_one_bulk_statement() {
    let compiled = compile(
        "input N: matrix[long];
         var M: matrix[long] = matrix();
         for i = 1, 10 do
             for j = 1, 20 do
                 M[i, j] := N[i, j];",
    )
    .unwrap();
    // decl + a single bulk merge.
    assert_eq!(compiled.stmts.len(), 2);
}

/// Fission (Theorem 3.1): a block of two updates in one loop becomes two
/// bulk statements, and the result matches running them interleaved.
#[test]
fn loop_fission_splits_blocks() {
    let compiled = compile(
        "input V: vector[long];
         var A: vector[long] = vector();
         var B: vector[long] = vector();
         for i = 0, 9 do {
             A[i] := V[i] * 2;
             B[i] := V[i] + 1;
         };",
    )
    .unwrap();
    // 2 decls + 2 bulk updates.
    assert_eq!(compiled.stmts.len(), 4);
    let s = run(
        "input V: vector[long];
         var A: vector[long] = vector();
         var B: vector[long] = vector();
         for i = 0, 9 do {
             A[i] := V[i] * 2;
             B[i] := V[i] + 1;
         };",
        &[("V", vec_rows(&[(0, 10), (5, 50)]))],
        &[],
    );
    assert_eq!(s.collect("A").unwrap(), vec_rows(&[(0, 20), (5, 100)]));
    assert_eq!(s.collect("B").unwrap(), vec_rows(&[(0, 11), (5, 51)]));
}

/// The group-by plan survives when a lifted variable is used outside an
/// aggregation (the groupByKey fallback): collect per-key bags and count
/// them through a nested comprehension.
#[test]
fn group_by_key_fallback_path() {
    use diablo_comp::ir::{CExpr, Comprehension, Pattern, Qual};
    use diablo_runtime::{AggOp, BinOp};
    // { (k, +/{ w * w | w <- v }) | (i, v) ← V, group by k : i % 2 } — the
    // inner comprehension forces bags to materialize (no pushdown).
    let comp = Comprehension::new(
        CExpr::pair(
            CExpr::var("k"),
            CExpr::Agg(
                AggOp::new(BinOp::Add).unwrap(),
                Box::new(CExpr::Comp(Comprehension::new(
                    CExpr::Bin(
                        BinOp::Mul,
                        Box::new(CExpr::var("w")),
                        Box::new(CExpr::var("w")),
                    ),
                    vec![Qual::Gen(Pattern::var("w"), CExpr::var("v"))],
                ))),
            ),
        ),
        vec![
            Qual::Gen(
                Pattern::pair(Pattern::var("i"), Pattern::var("v")),
                CExpr::var("V"),
            ),
            Qual::GroupBy(
                Pattern::var("k"),
                CExpr::Bin(
                    BinOp::Mod,
                    Box::new(CExpr::var("i")),
                    Box::new(CExpr::long(2)),
                ),
            ),
        ],
    );
    let mut s = Session::new(Context::new(2, 4));
    s.bind_input("V", vec_rows(&[(0, 2), (1, 3), (2, 4), (3, 5)]));
    let out = diablo_exec::run_comp(&comp, &s).expect("runs");
    let mut rows = out.collect_sorted();
    rows.sort();
    assert_eq!(
        rows,
        vec![
            Value::pair(Value::Long(0), Value::Long(4 + 16)),
            Value::pair(Value::Long(1), Value::Long(9 + 25)),
        ]
    );
}

/// Programs the paper rejects are rejected (with restriction names).
#[test]
fn rejected_program_catalogue() {
    let cases = [
        (
            "input V: vector[double]; input n: long;
             for i = 1, n-2 do V[i] := (V[i-1] + V[i+1]) / 2.0;",
            "restriction 2",
        ),
        (
            "input V: vector[double];
             var n: double = 0.0;
             var W: vector[double] = vector();
             for i = 0, 9 do { n := V[i]; W[i] := n + 1.0; };",
            "restriction 1",
        ),
        (
            "input V: vector[long];
             var W: vector[long] = vector();
             for v in V do W[v] := 1;",
            "restriction 1",
        ),
        (
            "var V: vector[long] = vector();
             var M: matrix[long] = matrix();
             for i = 0, 9 do
                 for j = 0, 9 do { V[i] += 1; M[i, j] := V[i]; };",
            "restriction 2",
        ),
    ];
    for (src, marker) in cases {
        let err = compile(src).expect_err(src);
        assert!(
            err.message.contains(marker),
            "expected `{marker}` in: {err}"
        );
    }
}

/// The running example: matrix multiplication matches a naive reference.
#[test]
fn matrix_multiplication_against_naive() {
    let d = 6usize;
    let w = diablo_workloads::matrix_multiplication(d, 99);
    let compiled = compile(w.source).unwrap();
    let mut s = Session::new(Context::new(3, 6));
    for (n, v) in &w.scalars {
        s.bind_scalar(n, v.clone());
    }
    for (n, rows) in &w.collections {
        s.bind_input(n, rows.clone());
    }
    s.run(&compiled).unwrap();
    // Naive reference.
    let fetch = |rows: &[Value]| -> std::collections::HashMap<(i64, i64), f64> {
        rows.iter()
            .map(|r| {
                let (k, v) = diablo_runtime::array::key_value(r).unwrap();
                let ij = k.as_tuple().unwrap();
                (
                    (ij[0].as_long().unwrap(), ij[1].as_long().unwrap()),
                    v.as_double().unwrap(),
                )
            })
            .collect()
    };
    let m = fetch(&w.collections[0].1);
    let n = fetch(&w.collections[1].1);
    let r = fetch(&s.collect("R").unwrap());
    for i in 0..d as i64 {
        for j in 0..d as i64 {
            let want: f64 = (0..d as i64)
                .map(|k| m.get(&(i, k)).unwrap_or(&0.0) * n.get(&(k, j)).unwrap_or(&0.0))
                .sum();
            let got = r.get(&(i, j)).copied().unwrap_or(0.0);
            assert!((got - want).abs() < 1e-9, "({i},{j}): {got} vs {want}");
        }
    }
}
