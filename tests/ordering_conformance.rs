//! Ordering conformance for the sort-based shuffle path: for **every
//! backend × budget (unbounded, 64 MiB, 0)**, the sorted keyed operators
//! (`sorted_reduce_by_key`, `sorted_group_by_key`, `sorted_merge`,
//! `sorted_cogroup`) must produce output that is
//!
//! 1. **globally key-ordered** — keys ascend across the whole collect,
//!    partition by partition (range buckets are contiguous);
//! 2. **multiset-equal to the hash path** — the same rows as
//!    `reduce_by_key`/`group_by_key`/`merge`/`cogroup`, reordered only;
//! 3. **byte-identical across backends and budgets** — local, tile, and
//!    spill agree row for row, whether the exchange stayed in memory or
//!    went through disk runs (spill counters in the budget-0 runs prove
//!    the sorted runs really were merged back from disk).
//!
//! Property tests drive the same invariants through adversarial key
//! distributions: zipf-ish skew, all-equal, pre-sorted, reverse-sorted.

use std::sync::Arc;

use proptest::prelude::*;

use diablo_dataflow::{
    ColumnarExecutor, Context, Dataset, Executor, LocalExecutor, MorselExecutor, Partitioner,
    RangePartitioner, SpillExecutor, TileExecutor,
};
use diablo_runtime::{array::key_value, BinOp, RuntimeError, Value};

/// The combiner-closure result type, for turbofishing `None` combiners.
type RtResult = std::result::Result<Value, RuntimeError>;

/// The backend × budget grid every invariant runs over. The tile backend
/// uses a deliberately tiny batch so multi-tile paths are exercised; the
/// spill backend always budgets its exchanges (context budget wins when
/// set, so the `Some(0)` leg forces every chunk through disk there too);
/// the columnar backend runs with a tiny batch so its per-stage layout
/// decision happens many times per partition.
fn backends() -> Vec<Arc<dyn Executor>> {
    vec![
        Arc::new(LocalExecutor),
        Arc::new(TileExecutor::new(4)),
        Arc::new(SpillExecutor::default()),
        Arc::new(MorselExecutor),
        Arc::new(ColumnarExecutor::new(16)),
    ]
}

const BUDGETS: [Option<u64>; 3] = [None, Some(64 << 20), Some(0)];

fn ctx_for(exec: Arc<dyn Executor>, budget: Option<u64>) -> Context {
    // Tiny morsels keep the work-stealing splitter active on these small
    // fixtures; ordering invariants must hold at any granularity.
    let ctx = Context::new(3, 5).with_executor(exec).with_morsel_size(16);
    ctx.set_memory_budget(budget);
    ctx
}

fn pairs(ctx: &Context, entries: &[(i64, i64)]) -> Dataset {
    ctx.from_vec(
        entries
            .iter()
            .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
            .collect(),
    )
}

/// Asserts keys ascend (non-strictly) across the rows of a full collect.
fn assert_key_ordered(rows: &[Value], what: &str) {
    for w in rows.windows(2) {
        let (a, _) = key_value(&w[0]).expect("pair row");
        let (b, _) = key_value(&w[1]).expect("pair row");
        assert!(
            a <= b,
            "{what}: key {a} precedes {b} — output not globally key-ordered"
        );
    }
}

fn sorted_copy(rows: &[Value]) -> Vec<Value> {
    let mut s = rows.to_vec();
    s.sort();
    s
}

/// A mixed-shape keyed input: duplicate keys, negative keys, value
/// variety — enough rows that a zero budget forces several spill runs.
fn entries(n: i64) -> Vec<(i64, i64)> {
    (0..n).map(|i| ((i * 37 % 61) - 13, i)).collect()
}

#[test]
fn sorted_ops_conform_across_backends_and_budgets() {
    // Hash-path references (order-insensitive): the sorted ops must emit
    // exactly these multisets.
    let reference_ctx = ctx_for(Arc::new(LocalExecutor), None);
    let a = pairs(&reference_ctx, &entries(400));
    let b = pairs(
        &reference_ctx,
        &(0..150)
            .map(|i| (i * 11 % 40, 1000 + i))
            .collect::<Vec<_>>(),
    );
    let hash_reduce = sorted_copy(
        &a.reduce_by_key(|x, y| BinOp::Add.apply(x, y))
            .unwrap()
            .collect(),
    );
    let hash_group = sorted_copy(&a.group_by_key().unwrap().collect());
    let hash_merge = sorted_copy(
        &a.merge(&b, Some(|x: &Value, y: &Value| BinOp::Add.apply(x, y)))
            .unwrap()
            .collect(),
    );
    let hash_cogroup = sorted_copy(&a.cogroup(&b).unwrap().collect());

    // Byte-for-byte references from the first grid cell.
    let mut sorted_refs: Option<[Vec<Value>; 4]> = None;

    for exec in backends() {
        for budget in BUDGETS {
            let name = format!("{} @ budget {:?}", exec.name(), budget);
            let ctx = ctx_for(exec.clone(), budget);
            let a = pairs(&ctx, &entries(400));
            let b = pairs(
                &ctx,
                &(0..150)
                    .map(|i| (i * 11 % 40, 1000 + i))
                    .collect::<Vec<_>>(),
            );
            let before = ctx.stats().snapshot();
            let reduce = a
                .sorted_reduce_by_key(|x, y| BinOp::Add.apply(x, y))
                .unwrap()
                .collect();
            let group = a.sorted_group_by_key().unwrap().collect();
            let merge = a
                .sorted_merge(&b, Some(|x: &Value, y: &Value| BinOp::Add.apply(x, y)))
                .unwrap()
                .collect();
            let cogroup = a.sorted_cogroup(&b).unwrap().collect();
            let stats = ctx.stats().snapshot().since(&before);

            for (rows, what) in [
                (&reduce, "reduce"),
                (&group, "group"),
                (&merge, "merge"),
                (&cogroup, "cogroup"),
            ] {
                assert_key_ordered(rows, &format!("{name} {what}"));
            }
            assert_eq!(sorted_copy(&reduce), hash_reduce, "{name}: reduce multiset");
            assert_eq!(sorted_copy(&group), hash_group, "{name}: group multiset");
            assert_eq!(sorted_copy(&merge), hash_merge, "{name}: merge multiset");
            assert_eq!(
                sorted_copy(&cogroup),
                hash_cogroup,
                "{name}: cogroup multiset"
            );
            assert!(
                stats.sorted_shuffles >= 4,
                "{name}: every sorted op runs a key-ordered exchange: {stats:?}"
            );
            if budget == Some(0) {
                assert!(
                    stats.spill_files > 0 && stats.spilled_records > 0,
                    "{name}: budget 0 must merge sorted runs from disk: {stats:?}"
                );
            }

            let outputs = [reduce, group, merge, cogroup];
            match &sorted_refs {
                None => sorted_refs = Some(outputs),
                Some(reference) => {
                    for (got, want) in outputs.iter().zip(reference.iter()) {
                        assert_eq!(got, want, "{name}: diverged byte-for-byte from reference");
                    }
                }
            }
        }
    }
}

#[test]
fn ordered_context_routes_keyed_operators_to_the_sorted_path() {
    // `Context::with_ordered` (the engine side of `diabloc --ordered` /
    // `DIABLO_ORDERED`) makes the plain keyed operators sort-based: same
    // multisets, key-ordered output, sorted shuffles in the stats.
    let plain = ctx_for(Arc::new(LocalExecutor), None);
    let ordered = ctx_for(Arc::new(LocalExecutor), None).with_ordered(true);
    let d_plain = pairs(&plain, &entries(300));
    let d_ordered = pairs(&ordered, &entries(300));
    let before = ordered.stats().snapshot();
    let rows = d_ordered
        .reduce_by_key(|x, y| BinOp::Add.apply(x, y))
        .unwrap()
        .collect();
    let after = ordered.stats().snapshot().since(&before);
    assert!(
        after.sorted_shuffles > 0,
        "ordered mode re-routes: {after:?}"
    );
    assert_key_ordered(&rows, "ordered-mode reduce_by_key");
    assert_eq!(
        sorted_copy(&rows),
        sorted_copy(
            &d_plain
                .reduce_by_key(|x, y| BinOp::Add.apply(x, y))
                .unwrap()
                .collect()
        )
    );
    // join builds on cogroup, so it becomes key-ordered too.
    let u_ordered = pairs(&ordered, &[(3, 30), (1, 10), (2, 20)]);
    let v_ordered = pairs(&ordered, &[(2, 200), (3, 300), (1, 100)]);
    let joined = u_ordered.join(&v_ordered).unwrap().collect();
    assert_key_ordered(&joined, "ordered-mode join");
}

#[test]
fn range_partitioner_coalesces_bounds_for_degenerate_samples() {
    // Regression: a sample with fewer distinct keys than partitions used
    // to keep the maximum key as a bound, reserving the final bucket for
    // keys above every sampled key — a guaranteed-empty tail partition.
    // Bounds now coalesce: strictly ascending, never the sampled maximum.
    let all_equal = RangePartitioner::from_sample(vec![Value::Long(7); 100], 8);
    assert!(
        all_equal.bounds().is_empty(),
        "an all-equal sample needs no bounds (one bucket), got {:?}",
        all_equal.bounds()
    );
    assert_eq!(all_equal.partition(&Value::Long(7), 8).unwrap(), 0);

    let two = RangePartitioner::from_sample(vec![Value::Long(1), Value::Long(2)], 8);
    assert_eq!(two.bounds(), [Value::Long(1)], "max key never bounds");
    assert_eq!(two.partition(&Value::Long(1), 8).unwrap(), 0);
    assert_eq!(two.partition(&Value::Long(2), 8).unwrap(), 1);

    // d distinct keys, d <= partitions: every sampled key gets a bucket
    // and no sampled key maps past the last bound's bucket + 1 — no
    // guaranteed-empty tail between occupied buckets.
    for d in 1..=6i64 {
        let sample: Vec<Value> = (0..d).map(Value::Long).collect();
        let p = RangePartitioner::from_sample(sample, 6);
        let buckets: Vec<usize> = (0..d)
            .map(|k| p.partition(&Value::Long(k), 6).unwrap())
            .collect();
        assert_eq!(
            buckets,
            (0..d as usize).collect::<Vec<_>>(),
            "{d} distinct keys occupy buckets 0..{d} contiguously"
        );
        for w in p.bounds().windows(2) {
            assert!(w[0] < w[1], "bounds strictly ascending: {:?}", p.bounds());
        }
    }
}

/// Deterministic adversarial key distributions for the property tests.
fn keyed_rows(dist: usize, n: usize, seed: u64) -> Vec<(i64, i64)> {
    let n = n as i64;
    (0..n)
        .map(|i| {
            let k = match dist {
                // zipf-ish skew: low keys vastly more common.
                0 => {
                    let r = (i.wrapping_mul(seed as i64 | 1).wrapping_add(i * i)) % 1024;
                    (1024 / (r.abs() + 1)) % 64
                }
                // all-equal.
                1 => 42,
                // pre-sorted (many duplicates).
                2 => i / 3,
                // reverse-sorted.
                _ => (n - i) / 2,
            };
            (k, i)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn adversarial_distributions_stay_ordered_under_budget_zero(
        dist in 0usize..4,
        n in 100usize..700,
        seed in 1u64..1000,
    ) {
        let rows = keyed_rows(dist, n, seed);

        // The sampled partitioner keeps bounds contiguous (strictly
        // ascending) and its bucket function monotone over sorted keys.
        let mut keys: Vec<Value> = rows.iter().map(|&(k, _)| Value::Long(k)).collect();
        let part = RangePartitioner::from_sample(keys.clone(), 5);
        for w in part.bounds().windows(2) {
            prop_assert!(w[0] < w[1], "bounds not strictly ascending: {:?}", part.bounds());
        }
        keys.sort();
        let buckets: Vec<usize> = keys
            .iter()
            .map(|k| part.partition(k, 5).unwrap())
            .collect();
        for w in buckets.windows(2) {
            prop_assert!(w[0] <= w[1], "bucket function not monotone: {buckets:?}");
        }

        // Budget 0: the whole sorted exchange goes through disk runs on
        // every backend, and the output must still be totally ordered and
        // multiset-equal to the hash path.
        let hash_ctx = ctx_for(Arc::new(LocalExecutor), None);
        let hash = sorted_copy(
            &pairs(&hash_ctx, &rows)
                .reduce_by_key(|x, y| BinOp::Add.apply(x, y))
                .unwrap()
                .collect(),
        );
        let hash_group = sorted_copy(&pairs(&hash_ctx, &rows).group_by_key().unwrap().collect());
        let mut reference: Option<(Vec<Value>, Vec<Value>)> = None;
        for exec in backends() {
            let name = exec.name();
            let ctx = ctx_for(exec, Some(0));
            let d = pairs(&ctx, &rows);
            let before = ctx.stats().snapshot();
            let reduced = d
                .sorted_reduce_by_key(|x, y| BinOp::Add.apply(x, y))
                .unwrap()
                .collect();
            let grouped = d.sorted_group_by_key().unwrap().collect();
            let stats = ctx.stats().snapshot().since(&before);
            assert_key_ordered(&reduced, "proptest reduce");
            assert_key_ordered(&grouped, "proptest group");
            prop_assert_eq!(sorted_copy(&reduced), hash.clone(), "{} reduce multiset", name);
            prop_assert_eq!(sorted_copy(&grouped), hash_group.clone(), "{} group multiset", name);
            prop_assert!(
                stats.spill_files > 0,
                "{} @ budget 0 must spill sorted runs: {:?}", name, stats
            );
            match &reference {
                None => reference = Some((reduced, grouped)),
                Some((r, g)) => {
                    prop_assert_eq!(&reduced, r, "{} reduce diverged byte-for-byte", name);
                    prop_assert_eq!(&grouped, g, "{} group diverged byte-for-byte", name);
                }
            }
        }
    }
}

#[test]
fn sorted_group_bags_match_hash_bag_order() {
    // Not just multisets: within one key, the sorted path's bag must list
    // values in exactly the hash path's order (source partition order,
    // then emission order) — equal keys ride the ordered exchange in
    // (source, sequence, emission) order.
    let ctx = ctx_for(Arc::new(LocalExecutor), None);
    let rows: Vec<(i64, i64)> = (0..240).map(|i| (i % 7, i)).collect();
    let d = pairs(&ctx, &rows);
    let hash: std::collections::HashMap<Value, Value> = d
        .group_by_key()
        .unwrap()
        .collect()
        .into_iter()
        .map(|r| key_value(&r).unwrap())
        .collect();
    for budget in BUDGETS {
        let ctx = ctx_for(Arc::new(LocalExecutor), budget);
        let d = pairs(&ctx, &rows);
        for row in d.sorted_group_by_key().unwrap().collect() {
            let (k, bag) = key_value(&row).unwrap();
            assert_eq!(
                Some(&bag),
                hash.get(&k),
                "budget {budget:?}: bag for key {k} diverged from the hash path"
            );
        }
    }
}

#[test]
fn sorted_merge_matches_hash_merge_semantics() {
    // Replace (None) and combine (Some) forms, duplicate update keys
    // included — per-key values must equal the hash path exactly.
    let make = |ctx: &Context| {
        (
            pairs(ctx, &[(1, 10), (2, 20), (5, 50)]),
            pairs(ctx, &[(2, 1), (2, 2), (3, 30), (0, 5)]),
        )
    };
    let hash_ctx = ctx_for(Arc::new(LocalExecutor), None);
    let (old, upd) = make(&hash_ctx);
    let hash_replace = sorted_copy(
        &old.merge(&upd, None::<fn(&Value, &Value) -> RtResult>)
            .unwrap()
            .collect(),
    );
    let hash_combine = sorted_copy(
        &old.merge(&upd, Some(|a: &Value, b: &Value| BinOp::Add.apply(a, b)))
            .unwrap()
            .collect(),
    );
    for budget in BUDGETS {
        let ctx = ctx_for(Arc::new(LocalExecutor), budget);
        let (old, upd) = make(&ctx);
        let replace = old
            .sorted_merge(&upd, None::<fn(&Value, &Value) -> RtResult>)
            .unwrap()
            .collect();
        let combine = old
            .sorted_merge(&upd, Some(|a: &Value, b: &Value| BinOp::Add.apply(a, b)))
            .unwrap()
            .collect();
        assert_key_ordered(&replace, "sorted merge (replace)");
        assert_key_ordered(&combine, "sorted merge (combine)");
        assert_eq!(sorted_copy(&replace), hash_replace, "budget {budget:?}");
        assert_eq!(sorted_copy(&combine), hash_combine, "budget {budget:?}");
    }
}
