//! Plan-hash canonicalization and result-cache identity.
//!
//! The serving layer's cache key is `fold(plan_hash, input fingerprints)`
//! over the *compiled* program, so everything the compiler erases —
//! whitespace, comments, the spelling of never-reassigned input names —
//! must vanish from the hash, while anything that changes semantics must
//! change it. The final test closes the loop end to end: a cache hit
//! served by `diablod` is byte-identical to the cold run that populated
//! it.

use diablo_core::compile;
use diablo_dataflow::Context;
use diablo_runtime::Value;
use diablo_serve::{plan_hash, rows_hash, Client, ServeConfig, Server};

fn hash(src: &str) -> u64 {
    plan_hash(&compile(src).expect(src))
}

const SUM: &str = "
    input V: vector[double];
    var sum: double = 0.0;
    for v in V do sum += v;
";

#[test]
fn identical_programs_hash_equal() {
    assert_eq!(hash(SUM), hash(SUM));
}

#[test]
fn whitespace_and_comments_do_not_split_the_cache() {
    let noisy = "
        // accumulate every element
        input V: vector[double];

        var sum: double = 0.0;   /* running total */
        for v in V
            do sum += v;
    ";
    assert_eq!(hash(SUM), hash(noisy));
}

#[test]
fn rebound_input_names_hash_equal() {
    // The input is never reassigned, so its name is pure spelling: the
    // same request against `V` or `measurements` must share a cache line.
    let renamed = "
        input measurements: vector[double];
        var sum: double = 0.0;
        for v in measurements do sum += v;
    ";
    assert_eq!(hash(SUM), hash(renamed));
}

#[test]
fn reassigned_input_names_are_not_renamed() {
    // An input that is also written is an output addressed by name in
    // responses — renaming it would conflate observably different
    // programs.
    let a = "
        input V: vector[double];
        for i = 0, 4 do V[i] := 0.0;
    ";
    let b = "
        input W: vector[double];
        for i = 0, 4 do W[i] := 0.0;
    ";
    assert_ne!(hash(a), hash(b));
}

#[test]
fn semantic_differences_change_the_hash() {
    let doubled = "
        input V: vector[double];
        var sum: double = 0.0;
        for v in V do sum += v * 2.0;
    ";
    let seeded = "
        input V: vector[double];
        var sum: double = 1.0;
        for v in V do sum += v;
    ";
    let typed = "
        input V: vector[long];
        var sum: long = 0;
        for v in V do sum += v;
    ";
    let renamed_output = "
        input V: vector[double];
        var total: double = 0.0;
        for v in V do total += v;
    ";
    for (name, other) in [
        ("loop body", doubled),
        ("initializer", seeded),
        ("input type", typed),
        ("output name", renamed_output),
    ] {
        assert_ne!(hash(SUM), hash(other), "{name} must change the hash");
    }
}

fn rows(n: i64, shift: i64) -> Vec<Value> {
    (0..n)
        .map(|i| Value::pair(Value::Long(i), Value::Double((i + shift) as f64)))
        .collect()
}

#[test]
fn input_content_versions_the_cache_key() {
    // Same plan, different rows → different fingerprints; identical rows
    // (independently built) → the same fingerprint.
    assert_eq!(rows_hash(&rows(10, 0)), rows_hash(&rows(10, 0)));
    assert_ne!(rows_hash(&rows(10, 0)), rows_hash(&rows(10, 1)));
    assert_ne!(rows_hash(&rows(10, 0)), rows_hash(&rows(9, 0)));
}

#[test]
fn cache_hit_is_byte_identical_to_the_cold_run() {
    let server =
        Server::start("127.0.0.1:0", Context::new(2, 4), ServeConfig::default()).expect("server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let bindings = || (vec![], vec![("V".to_string(), rows(100, 0))]);

    let (s, r) = bindings();
    let cold = client.run(SUM, s, r, false).expect("cold run");
    assert!(!cold.stats.cache_hit);

    // Same program, same rows, fresh request → served from the cache,
    // outputs identical down to the encoded bytes.
    let (s, r) = bindings();
    let warm = client.run(SUM, s, r, false).expect("warm run");
    assert!(warm.stats.cache_hit, "second identical run must hit");
    assert_eq!(warm.outputs, cold.outputs);
    assert_eq!(warm.stats.plan_hash, cold.stats.plan_hash);

    // Whitespace/comment noise still hits the same entry…
    let noisy = "
        input V: vector[double]; // noise
        var sum: double = 0.0;
        for v in V do sum += v;
    ";
    let (s, r) = bindings();
    let res = client.run(noisy, s, r, false).expect("noisy run");
    assert!(res.stats.cache_hit, "formatting must not split the cache");
    assert_eq!(res.outputs, cold.outputs);

    // …while different input content misses and recomputes.
    let res = client
        .run(SUM, vec![], vec![("V".to_string(), rows(100, 7))], false)
        .expect("shifted run");
    assert!(!res.stats.cache_hit, "new input content must miss");
    assert_ne!(res.outputs, cold.outputs);

    server.stop();
}
