//! Property tests for the comprehension calculus: normalization and
//! optimization must be meaning-preserving on randomly generated
//! comprehensions, the array merge must satisfy its algebraic laws, and
//! pack/unpack must be mutually inverse.

use proptest::prelude::*;

use diablo_comp::ir::{CExpr, Comprehension, NameGen, Pattern, Qual};
use diablo_comp::{eval, normalize, optimize, Env};
use diablo_runtime::{merge_pairs, AggOp, BinOp, TiledMatrix, Value};

fn bag_of_pairs(entries: &[(i64, i64)]) -> Value {
    Value::bag(
        entries
            .iter()
            .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
            .collect(),
    )
}

fn canon(v: &Value) -> Value {
    match v.as_bag() {
        Some(items) => {
            let mut s: Vec<Value> = items.iter().map(canon).collect();
            s.sort();
            Value::bag(s)
        }
        None => v.clone(),
    }
}

/// A random comprehension over datasets `X` and `Y` built from a small
/// grammar: an X traversal, optionally a join with Y, optionally a filter,
/// a let, and optionally a group-by with a sum aggregation.
#[derive(Debug, Clone)]
struct RandComp {
    join: bool,
    filter: Option<i64>,
    offset: i64,
    group: bool,
}

fn rand_comp_strategy() -> impl Strategy<Value = RandComp> {
    (
        any::<bool>(),
        prop::option::of(-50i64..50),
        -10i64..10,
        any::<bool>(),
    )
        .prop_map(|(join, filter, offset, group)| RandComp {
            join,
            filter,
            offset,
            group,
        })
}

fn build(rc: &RandComp) -> CExpr {
    let mut quals = vec![Qual::Gen(
        Pattern::pair(Pattern::var("i"), Pattern::var("x")),
        CExpr::var("X"),
    )];
    let mut value = CExpr::var("x");
    if rc.join {
        quals.push(Qual::Gen(
            Pattern::pair(Pattern::var("j"), Pattern::var("y")),
            CExpr::var("Y"),
        ));
        quals.push(Qual::Pred(CExpr::eq(CExpr::var("j"), CExpr::var("i"))));
        value = CExpr::Bin(BinOp::Add, Box::new(value), Box::new(CExpr::var("y")));
    }
    if let Some(c) = rc.filter {
        quals.push(Qual::Pred(CExpr::Bin(
            BinOp::Lt,
            Box::new(CExpr::var("x")),
            Box::new(CExpr::long(c)),
        )));
    }
    quals.push(Qual::Let(
        Pattern::var("w"),
        CExpr::Bin(
            BinOp::Add,
            Box::new(value),
            Box::new(CExpr::long(rc.offset)),
        ),
    ));
    if rc.group {
        quals.push(Qual::GroupBy(
            Pattern::var("k"),
            CExpr::Bin(
                BinOp::Mod,
                Box::new(CExpr::var("i")),
                Box::new(CExpr::long(3)),
            ),
        ));
        CExpr::Comp(Comprehension::new(
            CExpr::pair(
                CExpr::var("k"),
                CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("w"))),
            ),
            quals,
        ))
    } else {
        CExpr::Comp(Comprehension::new(
            CExpr::pair(CExpr::var("i"), CExpr::var("w")),
            quals,
        ))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn normalization_preserves_meaning(
        rc in rand_comp_strategy(),
        xs in prop::collection::vec((0i64..15, -100i64..100), 0..40),
        ys in prop::collection::vec((0i64..15, -100i64..100), 0..40),
    ) {
        let e = build(&rc);
        let mut env = Env::new();
        env.insert("X".into(), bag_of_pairs(&xs));
        env.insert("Y".into(), bag_of_pairs(&ys));
        let mut ng = NameGen::new();
        let n = normalize(&e, &mut ng);
        prop_assert_eq!(
            canon(&eval(&e, &env).unwrap()),
            canon(&eval(&n, &env).unwrap())
        );
    }

    #[test]
    fn optimization_preserves_meaning(
        rc in rand_comp_strategy(),
        xs in prop::collection::vec((0i64..15, -100i64..100), 0..40),
        ys in prop::collection::vec((0i64..15, -100i64..100), 0..40),
    ) {
        let e = build(&rc);
        let mut env = Env::new();
        env.insert("X".into(), bag_of_pairs(&xs));
        env.insert("Y".into(), bag_of_pairs(&ys));
        let mut ng = NameGen::new();
        let o = optimize(&e, &mut ng);
        prop_assert_eq!(
            canon(&eval(&e, &env).unwrap()),
            canon(&eval(&o, &env).unwrap())
        );
    }

    #[test]
    fn merge_laws(
        xs in prop::collection::hash_map(0i64..20, -100i64..100, 0..20),
        ys in prop::collection::hash_map(0i64..20, -100i64..100, 0..20),
        zs in prop::collection::hash_map(0i64..20, -100i64..100, 0..20),
    ) {
        let to_rows = |m: &std::collections::HashMap<i64, i64>| -> Vec<Value> {
            let mut ks: Vec<_> = m.keys().copied().collect();
            ks.sort_unstable();
            ks.iter().map(|k| Value::pair(Value::Long(*k), Value::Long(m[k]))).collect()
        };
        let (x, y, z) = (to_rows(&xs), to_rows(&ys), to_rows(&zs));
        let sorted = |mut v: Vec<Value>| { v.sort(); v };

        // Identity: X ⊳ ∅ = X and ∅ ⊳ X = X.
        prop_assert_eq!(sorted(merge_pairs(&x, &[]).unwrap()), sorted(x.clone()));
        prop_assert_eq!(sorted(merge_pairs(&[], &x).unwrap()), sorted(x.clone()));
        // Idempotence: X ⊳ X = X.
        prop_assert_eq!(sorted(merge_pairs(&x, &x).unwrap()), sorted(x.clone()));
        // Associativity: (X ⊳ Y) ⊳ Z = X ⊳ (Y ⊳ Z).
        let left = merge_pairs(&merge_pairs(&x, &y).unwrap(), &z).unwrap();
        let right = merge_pairs(&x, &merge_pairs(&y, &z).unwrap()).unwrap();
        prop_assert_eq!(sorted(left), sorted(right));
        // Right bias: keys of Y take Y's value.
        let m = merge_pairs(&x, &y).unwrap();
        for row in &m {
            let (k, v) = diablo_runtime::array::key_value(row).unwrap();
            let kk = k.as_long().unwrap();
            if let Some(&yv) = ys.get(&kk) {
                prop_assert_eq!(v, Value::Long(yv));
            }
        }
    }

    #[test]
    fn pack_unpack_inverse(
        entries in prop::collection::hash_map((0i64..64, 0i64..64), 1.0f64..100.0, 0..80),
        tr in 1usize..9,
        tc in 1usize..9,
    ) {
        let list: Vec<(i64, i64, f64)> = entries.iter().map(|(&(i, j), &v)| (i, j, v)).collect();
        let m = TiledMatrix::pack(tr, tc, list.clone());
        let mut back = m.unpack();
        back.sort_by_key(|a| (a.0, a.1));
        let mut want = list;
        want.sort_by_key(|a| (a.0, a.1));
        prop_assert_eq!(back, want);
    }

    #[test]
    fn tiled_multiply_matches_naive(
        a in prop::collection::hash_map((0i64..8, 0i64..8), -4i64..4, 0..24),
        b in prop::collection::hash_map((0i64..8, 0i64..8), -4i64..4, 0..24),
        tile in 1usize..5,
    ) {
        let al: Vec<(i64, i64, f64)> = a.iter().map(|(&(i, j), &v)| (i, j, v as f64)).collect();
        let bl: Vec<(i64, i64, f64)> = b.iter().map(|(&(i, j), &v)| (i, j, v as f64)).collect();
        let ta = TiledMatrix::pack(tile, tile, al.clone());
        let tb = TiledMatrix::pack(tile, tile, bl.clone());
        let tc = ta.multiply(&tb);
        for i in 0..8i64 {
            for j in 0..8i64 {
                let mut want = 0.0;
                for k in 0..8i64 {
                    let av = a.get(&(i, k)).copied().unwrap_or(0) as f64;
                    let bv = b.get(&(k, j)).copied().unwrap_or(0) as f64;
                    want += av * bv;
                }
                prop_assert!((tc.get(i, j) - want).abs() < 1e-9, "({}, {})", i, j);
            }
        }
    }
}
