//! Property tests for the end-to-end translation: randomly generated loop
//! programs from the affine families of §3 must produce identical results
//! on the engine and in the sequential interpreter.

use proptest::prelude::*;

use diablo_dataflow::Context;
use diablo_exec::Session;
use diablo_interp::Interpreter;
use diablo_runtime::Value;

fn long_pairs(entries: &[(i64, i64)]) -> Vec<Value> {
    entries
        .iter()
        .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
        .collect()
}

/// Runs a program both ways with the given vector inputs; returns
/// (engine, interpreter) results for `out`.
#[allow(clippy::type_complexity)]
fn both_ways(
    src: &str,
    inputs: &[(&str, Vec<Value>)],
    scalars: &[(&str, i64)],
    out: &str,
) -> (
    Option<Vec<Value>>,
    Option<Vec<Value>>,
    Option<Value>,
    Option<Value>,
) {
    let compiled = diablo_core::compile(src).expect("compiles");
    let mut session = Session::new(Context::new(2, 5));
    let tp = diablo_lang::typecheck(diablo_lang::parse(src).unwrap()).unwrap();
    let mut interp = Interpreter::new();
    for (name, rows) in inputs {
        session.bind_input(name, rows.clone());
        interp.bind_collection(name, rows.clone()).unwrap();
    }
    for (name, v) in scalars {
        session.bind_scalar(name, Value::Long(*v));
        interp.bind_scalar(name, Value::Long(*v));
    }
    session.run(&compiled).expect("engine runs");
    interp.run(&tp).expect("interpreter runs");
    (
        session.collect(out),
        interp.collection(out),
        session.scalar(out),
        interp.scalar(out),
    )
}

/// Unique-key vectors: arrays are key-value maps.
fn vector_strategy(max_key: i64) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::hash_map(0..max_key, -50i64..50, 0..40).prop_map(|m| m.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `for i = lo, hi do sum += V[i] * c` — total aggregation.
    #[test]
    fn random_scalar_aggregation(
        v in vector_strategy(60),
        lo in 0i64..20,
        span in 0i64..50,
        c in -3i64..4,
    ) {
        let src = format!(
            "input V: vector[long];
             var sum: long = 0;
             for i = {lo}, {} do sum += V[i] * {c};",
            lo + span
        );
        let (_, _, es, is) = both_ways(&src, &[("V", long_pairs(&v))], &[], "sum");
        prop_assert_eq!(es, is);
    }

    /// `for i do C[K[i]] += V[i]` — the group-by increment family.
    #[test]
    fn random_indirect_group_by(
        data in prop::collection::hash_map(0i64..40, (0i64..8, -50i64..50), 0..40),
    ) {
        let k: Vec<(i64, i64)> = data.iter().map(|(&i, &(key, _))| (i, key)).collect();
        let v: Vec<(i64, i64)> = data.iter().map(|(&i, &(_, val))| (i, val)).collect();
        let src = "input K: vector[long];
                   input V: vector[long];
                   var C: vector[long] = vector();
                   for i = 0, 39 do C[K[i]] += V[i];";
        let (ec, ic, _, _) = both_ways(
            src,
            &[("K", long_pairs(&k)), ("V", long_pairs(&v))],
            &[],
            "C",
        );
        prop_assert_eq!(ec, ic);
    }

    /// `for i do V[i] := W[i + c]` — affine copy with an offset (exercises
    /// the §3.6 index inversion).
    #[test]
    fn random_affine_copy(
        w in vector_strategy(80),
        c in -5i64..6,
        hi in 0i64..40,
    ) {
        let src = format!(
            "input W: vector[long];
             var V: vector[long] = vector();
             for i = 0, {hi} do V[i] := W[i + {c}];"
        );
        let (ec, ic, _, _) = both_ways(&src, &[("W", long_pairs(&w))], &[], "V");
        prop_assert_eq!(ec, ic);
    }

    /// `for i do V[i] += W[i]` — the unique-key Rule (17) family.
    #[test]
    fn random_elementwise_increment(
        v in vector_strategy(40),
        w in vector_strategy(40),
    ) {
        let src = "input W: vector[long];
                   input V0: vector[long];
                   var V: vector[long] = vector();
                   for i = 0, 39 do V[i] := V0[i];
                   for i = 0, 39 do V[i] += W[i];";
        let (ec, ic, _, _) = both_ways(
            src,
            &[("W", long_pairs(&w)), ("V0", long_pairs(&v))],
            &[],
            "V",
        );
        prop_assert_eq!(ec, ic);
    }

    /// Conditional increments under if/else split into two bulk updates.
    #[test]
    fn random_conditional_split(
        v in vector_strategy(50),
        threshold in -40i64..40,
    ) {
        let src = format!(
            "input V: vector[long];
             var a: long = 0;
             var b: long = 0;
             for x in V do
                 if (x < {threshold}) a += x; else b += x;"
        );
        let (_, _, ea, ia) = both_ways(&src, &[("V", long_pairs(&v))], &[], "a");
        prop_assert_eq!(ea, ia);
        let (_, _, eb, ib) = both_ways(&src, &[("V", long_pairs(&v))], &[], "b");
        prop_assert_eq!(eb, ib);
    }

    /// Matrix row sums: `for i, j do S[i] += M[i, j]`.
    #[test]
    fn random_matrix_row_sums(
        m in prop::collection::hash_map((0i64..10, 0i64..10), -50i64..50, 0..60),
    ) {
        let rows: Vec<Value> = m
            .iter()
            .map(|(&(i, j), &v)| {
                Value::pair(Value::pair(Value::Long(i), Value::Long(j)), Value::Long(v))
            })
            .collect();
        let src = "input M: matrix[long];
                   var S: vector[long] = vector();
                   for i = 0, 9 do
                       for j = 0, 9 do
                           S[i] += M[i, j];";
        let compiled = diablo_core::compile(src).expect("compiles");
        let mut session = Session::new(Context::new(2, 5));
        session.bind_input("M", rows.clone());
        session.run(&compiled).expect("engine runs");
        let tp = diablo_lang::typecheck(diablo_lang::parse(src).unwrap()).unwrap();
        let mut interp = Interpreter::new();
        interp.bind_collection("M", rows).unwrap();
        interp.run(&tp).expect("interpreter runs");
        prop_assert_eq!(session.collect("S"), interp.collection("S"));
    }
}
