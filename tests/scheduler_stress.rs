//! Scheduler stress suite: the morsel-driven work-stealing scheduler must
//! be invisible in results. Every Figure 3 workload is run under a grid of
//! scheduler configurations — worker counts {1, 2, 7, all}, morsel sizes
//! {1 row, 64 rows, default}, the static self-scheduling pool, and the
//! local / spill / morsel / columnar backends — on both the hash and the `--ordered`
//! keyed paths, and every output must be *byte-identical* (exact `Value`
//! equality, not approximate) to a one-worker reference run. Separately,
//! injected mid-morsel failures must surface the same first error and
//! statement tag no matter how morsels were split, stolen, or cancelled.

use std::sync::Arc;

use diablo_dataflow::{executor_named, Context, MorselExecutor};
use diablo_exec::Session;
use diablo_runtime::{RuntimeError, Value};
use diablo_workloads::Workload;

/// Partition count is pinned across every configuration: partitioning is
/// semantics (it decides chunk boundaries and shuffle fan-in), while
/// workers, morsel size, and scheduler are pure execution policy and must
/// not show through.
const PARTITIONS: usize = 5;

/// One scheduler configuration under test.
struct Cfg {
    label: String,
    backend: &'static str,
    workers: usize,
    morsel_size: Option<usize>,
    static_scheduler: bool,
}

impl Cfg {
    fn context(&self, ordered: bool) -> Context {
        let exec = executor_named(self.backend)
            .unwrap_or_else(|| panic!("unknown backend `{}`", self.backend));
        let ctx = Context::new(self.workers, PARTITIONS).with_executor(exec);
        if let Some(rows) = self.morsel_size {
            ctx.set_morsel_size(rows);
        }
        ctx.set_static_scheduler(self.static_scheduler);
        ctx.set_memory_budget(None);
        ctx.set_ordered(ordered);
        ctx
    }
}

fn all_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// The grid. Morsel sizes only matter on the morsel backend (the others
/// never split), so the {1, 64, default} axis runs there; the local and
/// spill backends cover the unsplit schedules, and one leg pins the
/// retained static pool so both schedulers are compared on every workload.
fn scheduler_grid() -> Vec<Cfg> {
    let mut grid = vec![
        Cfg {
            label: "local w2".into(),
            backend: "local",
            workers: 2,
            morsel_size: None,
            static_scheduler: false,
        },
        Cfg {
            label: "local w7".into(),
            backend: "local",
            workers: 7,
            morsel_size: None,
            static_scheduler: false,
        },
        Cfg {
            label: "local w7 static-scheduler".into(),
            backend: "local",
            workers: 7,
            morsel_size: None,
            static_scheduler: true,
        },
        Cfg {
            label: "spill w2".into(),
            backend: "spill",
            workers: 2,
            morsel_size: None,
            static_scheduler: false,
        },
        Cfg {
            label: "columnar w2".into(),
            backend: "columnar",
            workers: 2,
            morsel_size: None,
            static_scheduler: false,
        },
        Cfg {
            label: "columnar w7".into(),
            backend: "columnar",
            workers: 7,
            morsel_size: None,
            static_scheduler: false,
        },
    ];
    for workers in [2, 7, all_workers()] {
        for (tag, morsel) in [("m1", Some(1)), ("m64", Some(64)), ("mdefault", None)] {
            grid.push(Cfg {
                label: format!("morsel w{workers} {tag}"),
                backend: "morsel",
                workers,
                morsel_size: morsel,
                static_scheduler: false,
            });
        }
    }
    grid
}

/// Compiles and runs a workload on the given context, returning every
/// declared output as `(name, scalar, rows)`.
type Outputs = Vec<(String, Option<Value>, Option<Vec<Value>>)>;

fn run_workload(w: &Workload, ctx: Context) -> Outputs {
    let compiled =
        diablo_core::compile(w.source).unwrap_or_else(|e| panic!("{}: compile: {e}", w.name));
    let mut session = Session::new(ctx);
    for (name, v) in &w.scalars {
        session.bind_scalar(name, v.clone());
    }
    for (name, rows) in &w.collections {
        session.bind_input(name, rows.clone());
    }
    session
        .run(&compiled)
        .unwrap_or_else(|e| panic!("{}: run: {e}", w.name));
    w.outputs
        .iter()
        .map(|out| {
            (
                (*out).to_string(),
                session.scalar(out),
                session.collect(out),
            )
        })
        .collect()
}

fn check_fig3_identity(ordered: bool) {
    let mode = if ordered { "ordered" } else { "hash" };
    let reference_cfg = Cfg {
        label: "local w1 reference".into(),
        backend: "local",
        workers: 1,
        morsel_size: None,
        static_scheduler: false,
    };
    for w in diablo_workloads::figure3_workloads(1, 42) {
        let reference = run_workload(&w, reference_cfg.context(ordered));
        for cfg in scheduler_grid() {
            let got = run_workload(&w, cfg.context(ordered));
            assert_eq!(
                got, reference,
                "{}/{mode}: `{}` is not byte-identical to the one-worker reference",
                w.name, cfg.label
            );
        }
    }
}

#[test]
fn fig3_outputs_are_byte_identical_across_scheduler_configs_hash() {
    check_fig3_identity(false);
}

#[test]
fn fig3_outputs_are_byte_identical_across_scheduler_configs_ordered() {
    check_fig3_identity(true);
}

/// A heavily skewed three-partition input: the middle partition holds
/// ~98% of the rows, so the morsel scheduler splits it into many spans
/// that race across workers while the edges finish instantly.
fn skewed_parts() -> Vec<Vec<Value>> {
    vec![
        (0..10).map(Value::Long).collect(),
        (10_000..15_000).map(Value::Long).collect(),
        (20_000..20_010).map(Value::Long).collect(),
    ]
}

/// Runs a poisoned map over the skewed input and returns the surfaced
/// error. Three rows fail — 11_000 and 14_000 deep inside the skewed
/// partition (different morsels, so work stealing races them) and
/// 20_005 in the last partition — and only the canonically-first one
/// (row 11_000) may ever surface, with its statement tag intact.
fn poisoned_run(ctx: Context) -> RuntimeError {
    ctx.set_memory_budget(None);
    ctx.set_statement_label(Some("s7: C := poisoned morsel map"));
    let d = ctx
        .from_partitions(skewed_parts())
        .map(|v| match v.as_long() {
            Some(11_000) => Err(RuntimeError::new("boom at the first poisoned row")),
            Some(14_000) => Err(RuntimeError::new("boom at a later morsel")),
            Some(20_005) => Err(RuntimeError::new("boom in the last partition")),
            _ => Ok(v.clone()),
        })
        .unwrap();
    ctx.set_statement_label(None);
    d.try_collect().unwrap_err()
}

#[test]
fn midmorsel_failures_surface_the_same_first_error_everywhere() {
    let reference =
        poisoned_run(Context::new(1, PARTITIONS).with_executor(executor_named("local").unwrap()));
    assert!(
        reference.message.contains("boom at the first poisoned row"),
        "reference picked the wrong row: {reference}"
    );
    assert!(
        reference.message.contains("s7: C := poisoned morsel map"),
        "reference lost the statement tag: {reference}"
    );
    for cfg in scheduler_grid() {
        let got = poisoned_run(cfg.context(false));
        assert_eq!(
            got.message, reference.message,
            "`{}` surfaced a different first error",
            cfg.label
        );
    }
}

#[test]
fn statement_tags_survive_stolen_and_cancelled_morsels() {
    // Single-row morsels on a wide pool maximize steal traffic and the
    // number of in-flight morsels the poison flag must cancel; the tagged
    // error must still come out whole every time.
    for trial in 0..5 {
        let ctx = Context::new(7, PARTITIONS)
            .with_executor(Arc::new(MorselExecutor))
            .with_morsel_size(1 + trial % 3);
        let err = poisoned_run(ctx);
        assert!(
            err.message.contains("boom at the first poisoned row")
                && err.message.contains("s7: C := poisoned morsel map"),
            "trial {trial}: first error or tag lost under stealing: {err}"
        );
    }
}
