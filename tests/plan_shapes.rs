//! Plan-shape tests: the engine statistics expose how each translated
//! program executes (shuffles, broadcasts, rows moved), so the claims the
//! paper makes about *plans* — not just results — are checkable.

use diablo_core::compile;
use diablo_dataflow::{Context, StatsSnapshot};
use diablo_exec::Session;
use diablo_runtime::Value;
use diablo_workloads as wl;

/// Runs a workload and returns the statistics delta for the run.
fn stats_of(w: &wl::Workload, ctx: &Context) -> StatsSnapshot {
    let compiled = compile(w.source).expect("compiles");
    let mut s = Session::new(ctx.clone());
    for (n, v) in &w.scalars {
        s.bind_scalar(n, v.clone());
    }
    for (n, rows) in &w.collections {
        s.bind_input(n, rows.clone());
    }
    let before = ctx.stats().snapshot();
    s.run(&compiled).expect("runs");
    ctx.stats().snapshot().since(&before)
}

#[test]
fn scalar_aggregations_do_not_shuffle() {
    // Rule (16) turns `sum += v` into a distributed reduce with partial
    // aggregation — no shuffle at all.
    let ctx = Context::new(2, 8);
    let stats = stats_of(&wl::sum(5_000, 1), &ctx);
    assert_eq!(stats.shuffles, 0, "{stats:?}");
}

#[test]
fn word_count_shuffles_only_combined_partials() {
    // Map-side combining bounds the shuffle by partitions × distinct keys,
    // not by input size.
    let ctx = Context::new(2, 8);
    let n = 20_000;
    let distinct = 1_000;
    let stats = stats_of(&wl::word_count(n, 2), &ctx);
    assert!(stats.shuffles >= 1);
    assert!(
        stats.shuffled_records <= (8 * distinct + distinct) as u64 * 2,
        "combiner failed: {stats:?}"
    );
}

#[test]
fn elementwise_increment_uses_no_group_by_shuffle() {
    // Rule (17): `V[i] += W[i]` needs only the merge's exchange, not a
    // group-by — the update bag is W itself.
    let ctx = Context::new(2, 4);
    let src = "input W: vector[long];
               var V: vector[long] = vector();
               for i = 0, 999 do V[i] += W[i];";
    let compiled = compile(src).unwrap();
    let mut s = Session::new(ctx.clone());
    s.bind_input(
        "W",
        (0..1000)
            .map(|i| Value::pair(Value::Long(i), Value::Long(i)))
            .collect(),
    );
    let before = ctx.stats().snapshot();
    s.run(&compiled).unwrap();
    let stats = ctx.stats().snapshot().since(&before);
    // One merge exchanges both sides (two recorded shuffles); a surviving
    // group-by would add a third full shuffle of W.
    assert!(stats.shuffles <= 2, "{stats:?}");
}

#[test]
fn diablo_kmeans_shuffles_orders_of_magnitude_more_than_handwritten() {
    // The Fig. 3K story, as a hard assertion.
    let ctx = Context::new(2, 4);
    let w = wl::kmeans(500, 3, 1, 5);
    let diablo = stats_of(&w, &ctx);

    let points = ctx.from_vec(w.collections[0].1.clone());
    let initial: Vec<(f64, f64)> = w.collections[1]
        .1
        .iter()
        .map(|row| {
            let (_, xy) = diablo_runtime::array::key_value(row).unwrap();
            let f = xy.as_tuple().unwrap();
            (f[0].as_double().unwrap(), f[1].as_double().unwrap())
        })
        .collect();
    let before = ctx.stats().snapshot();
    diablo_baselines::handwritten::kmeans(&points, &initial, 1).unwrap();
    let hand = ctx.stats().snapshot().since(&before);

    assert!(
        diablo.shuffled_records > 10 * hand.shuffled_records.max(1),
        "diablo {diablo:?} vs hand-written {hand:?}"
    );
    assert!(diablo.broadcasts >= 1, "centroid array is broadcast: {diablo:?}");
}

#[test]
fn matrix_multiplication_plans_share_the_join_group_shape() {
    // DIABLO's generated plan and the hand-written plan both shuffle for
    // one join and one reduceByKey over the same data; rows moved should
    // be within a small factor.
    let ctx = Context::new(2, 4);
    let w = wl::matrix_multiplication(12, 6);
    let diablo = stats_of(&w, &ctx);

    let m = ctx.from_vec(w.collections[0].1.clone());
    let n = ctx.from_vec(w.collections[1].1.clone());
    let before = ctx.stats().snapshot();
    diablo_baselines::handwritten::matrix_multiplication(&m, &n).unwrap();
    let hand = ctx.stats().snapshot().since(&before);

    assert!(diablo.shuffles >= hand.shuffles, "{diablo:?} vs {hand:?}");
    assert!(
        diablo.shuffled_records <= hand.shuffled_records * 8,
        "same asymptotic movement: {diablo:?} vs {hand:?}"
    );
}

#[test]
fn broadcast_only_for_unlinked_generators() {
    // A pure join program must not broadcast anything.
    let ctx = Context::new(2, 4);
    let stats = stats_of(&wl::matrix_addition(12, 3), &ctx);
    assert_eq!(stats.broadcasts, 0, "{stats:?}");
}

#[test]
fn stage_counts_grow_with_program_complexity() {
    let ctx = Context::new(2, 4);
    let simple = stats_of(&wl::sum(1_000, 1), &ctx);
    let complex = stats_of(&wl::matrix_factorization(8, 2, 1, 2), &ctx);
    assert!(
        complex.stages > simple.stages * 3,
        "MF ({}) should dwarf Sum ({})",
        complex.stages,
        simple.stages
    );
}
