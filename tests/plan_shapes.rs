//! Plan-shape tests: the engine statistics expose how each translated
//! program executes (shuffles, broadcasts, rows moved), so the claims the
//! paper makes about *plans* — not just results — are checkable.

use diablo_core::compile;
use diablo_dataflow::{Context, StatsSnapshot};
use diablo_exec::Session;
use diablo_runtime::Value;
use diablo_workloads as wl;

/// Runs a workload and returns the statistics delta for the run.
fn stats_of(w: &wl::Workload, ctx: &Context) -> StatsSnapshot {
    let compiled = compile(w.source).expect("compiles");
    let mut s = Session::new(ctx.clone());
    for (n, v) in &w.scalars {
        s.bind_scalar(n, v.clone());
    }
    for (n, rows) in &w.collections {
        s.bind_input(n, rows.clone());
    }
    let before = ctx.stats().snapshot();
    s.run(&compiled).expect("runs");
    ctx.stats().snapshot().since(&before)
}

#[test]
fn scalar_aggregations_do_not_shuffle() {
    // Rule (16) turns `sum += v` into a distributed reduce with partial
    // aggregation — no shuffle at all.
    let ctx = Context::new(2, 8);
    let stats = stats_of(&wl::sum(5_000, 1), &ctx);
    assert_eq!(stats.shuffles, 0, "{stats:?}");
}

#[test]
fn word_count_shuffles_only_combined_partials() {
    // Map-side combining bounds the shuffle by partitions × distinct keys,
    // not by input size.
    let ctx = Context::new(2, 8);
    let n = 20_000;
    let distinct = 1_000;
    let stats = stats_of(&wl::word_count(n, 2), &ctx);
    assert!(stats.shuffles >= 1);
    assert!(
        stats.shuffled_records <= (8 * distinct + distinct) as u64 * 2,
        "combiner failed: {stats:?}"
    );
}

#[test]
fn elementwise_increment_uses_no_group_by_shuffle() {
    // Rule (17): `V[i] += W[i]` needs only the merge's exchange, not a
    // group-by — the update bag is W itself.
    let ctx = Context::new(2, 4);
    let src = "input W: vector[long];
               var V: vector[long] = vector();
               for i = 0, 999 do V[i] += W[i];";
    let compiled = compile(src).unwrap();
    let mut s = Session::new(ctx.clone());
    s.bind_input(
        "W",
        (0..1000)
            .map(|i| Value::pair(Value::Long(i), Value::Long(i)))
            .collect(),
    );
    let before = ctx.stats().snapshot();
    s.run(&compiled).unwrap();
    let stats = ctx.stats().snapshot().since(&before);
    // One merge exchanges both sides (two recorded shuffles); a surviving
    // group-by would add a third full shuffle of W.
    assert!(stats.shuffles <= 2, "{stats:?}");
}

#[test]
fn diablo_kmeans_shuffles_orders_of_magnitude_more_than_handwritten() {
    // The Fig. 3K story, as a hard assertion.
    let ctx = Context::new(2, 4);
    let w = wl::kmeans(500, 3, 1, 5);
    let diablo = stats_of(&w, &ctx);

    let points = ctx.from_vec(w.collections[0].1.clone());
    let initial: Vec<(f64, f64)> = w.collections[1]
        .1
        .iter()
        .map(|row| {
            let (_, xy) = diablo_runtime::array::key_value(row).unwrap();
            let f = xy.as_tuple().unwrap();
            (f[0].as_double().unwrap(), f[1].as_double().unwrap())
        })
        .collect();
    let before = ctx.stats().snapshot();
    diablo_baselines::handwritten::kmeans(&points, &initial, 1).unwrap();
    let hand = ctx.stats().snapshot().since(&before);

    assert!(
        diablo.shuffled_records > 10 * hand.shuffled_records.max(1),
        "diablo {diablo:?} vs hand-written {hand:?}"
    );
    assert!(
        diablo.broadcasts >= 1,
        "centroid array is broadcast: {diablo:?}"
    );
}

#[test]
fn matrix_multiplication_plans_share_the_join_group_shape() {
    // DIABLO's generated plan and the hand-written plan both shuffle for
    // one join and one reduceByKey over the same data; rows moved should
    // be within a small factor.
    let ctx = Context::new(2, 4);
    let w = wl::matrix_multiplication(12, 6);
    let diablo = stats_of(&w, &ctx);

    let m = ctx.from_vec(w.collections[0].1.clone());
    let n = ctx.from_vec(w.collections[1].1.clone());
    let before = ctx.stats().snapshot();
    diablo_baselines::handwritten::matrix_multiplication(&m, &n).unwrap();
    let hand = ctx.stats().snapshot().since(&before);

    assert!(diablo.shuffles >= hand.shuffles, "{diablo:?} vs {hand:?}");
    assert!(
        diablo.shuffled_records <= hand.shuffled_records * 8,
        "same asymptotic movement: {diablo:?} vs {hand:?}"
    );
}

#[test]
fn broadcast_only_for_unlinked_generators() {
    // A pure join program must not broadcast anything.
    let ctx = Context::new(2, 4);
    let stats = stats_of(&wl::matrix_addition(12, 3), &ctx);
    assert_eq!(stats.broadcasts, 0, "{stats:?}");
}

#[test]
fn narrow_chain_of_three_ops_is_one_physical_stage() {
    // The acceptance bar for the lazy plan layer: a chain of ≥ 3 narrow
    // operators must execute as exactly 1 fused per-partition stage.
    let ctx = Context::new(2, 4);
    let d = ctx.from_vec(
        (0..1000)
            .map(|i| Value::pair(Value::Long(i), Value::Long(i % 7)))
            .collect(),
    );
    let chained = d
        .map(|row| Ok(diablo_runtime::array::key_value(row)?.1))
        .expect("map")
        .filter(|v| Ok(v.as_long().unwrap_or(0) != 3))
        .expect("filter")
        .flat_map(|v| Ok(vec![v.clone(), v.clone()]))
        .expect("flat_map");
    let before = ctx.stats().snapshot();
    let rows = chained.collect();
    let after = ctx.stats().snapshot().since(&before);
    assert_eq!(after.physical_stages, 1, "3 narrow ops, 1 stage: {after:?}");
    assert_eq!(after.shuffles, 0, "{after:?}");
    assert_eq!(rows.len(), 2000 - 2 * (1000_usize.div_ceil(7)));
}

#[test]
fn translated_word_count_fuses_its_narrow_prologue() {
    // Word Count's pre-shuffle pipeline (scan → bind → let → key) must run
    // as one fused stage feeding the reduceByKey combiner: 2 physical
    // stages for the aggregation, plus 3 for the final merge `⊳`.
    let ctx = Context::new(2, 4);
    let stats = stats_of(&wl::word_count(5_000, 2), &ctx);
    assert!(
        stats.physical_stages <= 5,
        "narrow prologue must fuse: {stats:?}"
    );
    // The same plan touched many more logical operators than stages.
    assert!(stats.stages > stats.physical_stages, "{stats:?}");
}

#[test]
fn sorted_reduce_then_map_then_collect_is_two_stages() {
    // Shuffle-read fusion survives on the sorted path: the combine+sort
    // pass is stage one, and the merge-reduce is a lazy plan node that
    // fuses with the map and the collect into stage two.
    let ctx = Context::new(2, 4);
    let d = ctx.from_vec(
        (0..600)
            .map(|i| Value::pair(Value::Long(i % 23), Value::Long(1)))
            .collect(),
    );
    let before = ctx.stats().snapshot();
    let rows = d
        .sorted_reduce_by_key(|a, b| diablo_runtime::BinOp::Add.apply(a, b))
        .expect("sorted reduce")
        .map(|row| {
            let (k, v) = diablo_runtime::array::key_value(row)?;
            Ok(Value::pair(k, v))
        })
        .expect("map")
        .collect();
    let after = ctx.stats().snapshot().since(&before);
    assert_eq!(
        after.physical_stages, 2,
        "combine+sort, then merge-reduce+map fused with collect: {after:?}"
    );
    assert_eq!(after.sorted_shuffles, 1, "{after:?}");
    assert_eq!(rows.len(), 23);
    // The output is globally key-ordered — the point of the sorted path.
    let keys: Vec<Value> = rows
        .iter()
        .map(|r| diablo_runtime::array::key_value(r).unwrap().0)
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn sorted_path_explain_names_partitioner_and_sorted_stage() {
    // Both explain surfaces name the sort-based path: the executed-plan
    // trace carries the partitioner name, and the pending-plan render
    // marks the merge-reduce stage as sorted.
    let ctx = Context::new(2, 4);
    let d = ctx.from_vec(
        (0..200)
            .map(|i| Value::pair(Value::Long(i % 11), Value::Long(i)))
            .collect(),
    );
    let pending = d
        .sorted_reduce_by_key(|a, b| diablo_runtime::BinOp::Add.apply(a, b))
        .expect("sorted reduce");
    let render = pending.explain();
    assert!(render.contains("sorted_reduce_by_key"), "{render}");
    assert!(render.contains("range"), "{render}");

    ctx.start_plan_trace();
    let _ = d.sorted_group_by_key().expect("sorted group").collect();
    let trace = ctx.take_plan_trace().join("\n");
    assert!(
        trace.contains("range partitioner"),
        "trace must name the partitioner: {trace}"
    );
    assert!(
        trace.contains("sorted"),
        "trace must note the sorted exchange: {trace}"
    );
    assert!(
        trace.contains("merged by key"),
        "trace must note the run merge: {trace}"
    );
}

#[test]
fn session_explain_renders_fused_plan() {
    let compiled = compile(wl::word_count(100, 1).source).expect("compiles");
    let w = wl::word_count(100, 1);
    let ctx = Context::new(2, 4);
    let mut s = Session::new(ctx.clone());
    for (n, rows) in &w.collections {
        s.bind_input(n, rows.clone());
    }
    let plan = s.explain(&compiled).expect("explains");
    assert!(plan.contains("fused"), "{plan}");
    assert!(plan.contains("reduce_by_key"), "{plan}");
    assert!(plan.contains("shuffle"), "{plan}");
}

#[test]
fn plan_trace_notes_the_layout_per_stage_under_the_columnar_backend() {
    // Satellite of the columnar engine: the executed-plan trace (the same
    // lines `Session::explain` renders) carries a per-stage layout note —
    // `layout: columnar` for a transparent chain, `layout: row (…)`
    // naming the opaque step when a UDF forces the tuple path.
    use diablo_dataflow::{ColumnarExecutor, RowExpr};
    use std::sync::Arc;

    let ctx = Context::new(2, 4).with_executor(Arc::new(ColumnarExecutor::new(64)));
    let d = ctx.from_vec((0..200).map(Value::Long).collect());

    ctx.start_plan_trace();
    let _ = d
        .map_expr(RowExpr::Bin(
            diablo_runtime::BinOp::Mul,
            Box::new(RowExpr::Input),
            Box::new(RowExpr::Const(Value::Long(3))),
        ))
        .expect("map_expr")
        .collect();
    let trace = ctx.take_plan_trace().join("\n");
    assert!(
        trace.contains("layout: columnar"),
        "transparent chain must be noted columnar: {trace}"
    );

    ctx.start_plan_trace();
    let _ = d.map(|v| Ok(v.clone())).expect("map").collect();
    let trace = ctx.take_plan_trace().join("\n");
    assert!(
        trace.contains("layout: row ("),
        "opaque chain must name its row-path reason: {trace}"
    );
}

#[test]
fn stage_counts_grow_with_program_complexity() {
    let ctx = Context::new(2, 4);
    let simple = stats_of(&wl::sum(1_000, 1), &ctx);
    let complex = stats_of(&wl::matrix_factorization(8, 2, 1, 2), &ctx);
    assert!(
        complex.stages > simple.stages * 3,
        "MF ({}) should dwarf Sum ({})",
        complex.stages,
        simple.stages
    );
}
