//! The plan-invariant verifier end to end: a deliberately malformed plan
//! (injected through the test-only hook) is caught with a structured
//! `plan verifier:` error when `DIABLO_VERIFY_PLAN=1`, healthy plans
//! across backends and shuffle paths pass verified, and the gate rejects
//! typos loudly.
//!
//! `DIABLO_VERIFY_PLAN` is process-global, so every test that touches it
//! serializes on one mutex and restores the prior value before releasing
//! it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use diablo_dataflow::{Context, Dataset};
use diablo_runtime::Value;

/// Serializes env-flipping tests; restores `DIABLO_VERIFY_PLAN` on drop.
struct EnvGuard {
    prior: Option<String>,
    _lock: MutexGuard<'static, ()>,
}

fn set_verify(value: Option<&str>) -> EnvGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let prior = std::env::var("DIABLO_VERIFY_PLAN").ok();
    match value {
        Some(v) => std::env::set_var("DIABLO_VERIFY_PLAN", v),
        None => std::env::remove_var("DIABLO_VERIFY_PLAN"),
    }
    EnvGuard { prior, _lock: lock }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match self.prior.take() {
            Some(v) => std::env::set_var("DIABLO_VERIFY_PLAN", v),
            None => std::env::remove_var("DIABLO_VERIFY_PLAN"),
        }
    }
}

#[test]
fn verifier_catches_injected_malformed_plan_with_structured_error() {
    let _env = set_verify(Some("1"));
    let ctx = Context::new(2, 2);
    let bad = Dataset::malformed_zero_partition_scan_for_tests(ctx);
    let err = bad.try_collect().unwrap_err();
    assert!(
        err.message.starts_with("plan verifier:"),
        "verifier errors are structured and attributable: {err}"
    );
    assert!(err.message.contains("zero partitions"), "{err}");
}

#[test]
fn disabled_verifier_lets_the_malformed_plan_through() {
    let _env = set_verify(Some("0"));
    let ctx = Context::new(2, 2);
    let bad = Dataset::malformed_zero_partition_scan_for_tests(ctx);
    // Unverified, the zero-partition scan does not error — it just
    // produces nothing, which is exactly the kind of silent wrongness
    // the verifier exists to catch.
    assert_eq!(bad.try_collect().unwrap(), Vec::<Value>::new());
}

#[test]
fn healthy_plans_pass_verified_on_every_backend_and_shuffle_path() {
    let _env = set_verify(Some("1"));
    for backend in diablo_dataflow::BACKEND_NAMES {
        for ordered in [false, true] {
            let ctx = Context::new(2, 3)
                .with_executor(diablo_dataflow::executor_named(backend).unwrap())
                .with_ordered(ordered);
            let d = ctx.range(1, 100);
            let pairs = d
                .map(|v| {
                    let n = v.as_long().unwrap();
                    Ok(Value::pair(Value::Long(n % 7), Value::Long(n)))
                })
                .unwrap();
            let reduced = pairs
                .reduce_by_key(|a, b| Ok(Value::Long(a.as_long().unwrap() + b.as_long().unwrap())))
                .unwrap();
            let mut rows = reduced.try_collect().unwrap();
            rows.sort();
            assert_eq!(rows.len(), 7, "backend {backend} ordered={ordered}");
        }
    }
}

#[test]
fn verifier_covers_spilling_exchanges_too() {
    let _env = set_verify(Some("1"));
    // Budget 0 forces every chunk through spill runs; the conservation
    // and sortedness checks must hold for merged disk chunks as well.
    let ctx = Context::new(2, 3).with_memory_budget(0).with_ordered(true);
    let d = ctx.range(1, 500);
    let grouped = d
        .map(|v| {
            Ok(Value::pair(
                Value::Long(v.as_long().unwrap() % 11),
                v.clone(),
            ))
        })
        .unwrap()
        .group_by_key()
        .unwrap();
    assert_eq!(grouped.try_collect().unwrap().len(), 11);
}

#[test]
fn verify_plan_env_typo_panics_loudly() {
    let _env = set_verify(Some("yes please"));
    let ctx = Context::new(1, 1);
    // A derived (still-lazy) dataset: a pre-materialized scan would be
    // served straight from its cache without ever consulting the verifier.
    let d = ctx.range(1, 10).map(|v| Ok(v.clone())).unwrap();
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.try_collect()));
    let msg = match panicked {
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default(),
        Ok(_) => String::new(),
    };
    assert!(
        msg.contains("DIABLO_VERIFY_PLAN"),
        "a typo'd gate value must fail loudly, got: {msg:?}"
    );
}
