//! Lint sweep over every Fig. 3 workload program.
//!
//! `diabloc lint` must stay quiet on the paper's own benchmark
//! programs, except for the documented allow-list below: workloads
//! that group by *data* (word counts, histograms, key join products)
//! genuinely shuffle on every run, and the D020 shuffle forecast is
//! supposed to say so. Anything else — a new warning code, or D020 on
//! a workload that used to compile shuffle-free — fails this test so
//! the change gets looked at instead of silently regressing the lints.

use std::collections::BTreeSet;

/// Workloads whose updates are keyed by data rather than by the loop
/// indexes, so Rule (17) cannot eliminate their group-by: the D020
/// shuffle forecast is correct and expected for them.
const ALLOWED_D020: &[&str] = &[
    "Equal Frequency",
    "Word Count",
    "Histogram",
    "Matrix Multiplication",
    "KMeans",
    "PageRank",
    "Matrix Factorization",
    "Group By",
];

#[test]
fn fig3_workloads_lint_clean_or_allow_listed() {
    let mut violations = Vec::new();
    let mut warned = BTreeSet::new();
    for (name, src) in diablo_workloads::programs::all_programs() {
        let mut diags = diablo_diag::Diagnostics::new();
        let Some((tp, compiled)) = diablo_core::compile_multi(src, &mut diags) else {
            violations.push(format!("{name}: failed to compile"));
            continue;
        };
        for d in diablo_core::lint_program(&tp, &compiled) {
            let allowed = d.code == diablo_diag::codes::SHUFFLE && ALLOWED_D020.contains(&name);
            if allowed {
                warned.insert(name);
            } else {
                violations.push(format!("{name}: unexpected {}", d.one_line()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "fig-3 lint sweep found unexpected diagnostics:\n  {}",
        violations.join("\n  ")
    );
    // The allow-list must also stay honest: every entry still warns, so
    // stale names can't accumulate after a workload is rewritten.
    for name in ALLOWED_D020 {
        assert!(
            warned.contains(name),
            "allow-list entry `{name}` no longer emits D020; remove it"
        );
    }
}
