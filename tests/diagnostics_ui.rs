//! Golden-file UI tests for the diagnostics engine.
//!
//! Every `tests/ui/*.dbl` program is run through the full front end
//! (`compile_multi`; lints are appended when the program is clean) and
//! its rendered diagnostics are compared byte-for-byte against the
//! sibling `*.stderr` golden file. The `to_json` document is compared
//! against `*.json` and checked for well-formedness with a small
//! hand-rolled JSON reader (the workspace has no serde).
//!
//! To regenerate the goldens after an intentional rendering change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test diagnostics_ui
//! ```
//!
//! then review the diff like any other code change.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use diablo_diag::{render_all, to_json, Diagnostics};

fn ui_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/ui")
}

/// Runs the complete front end the way `diabloc check` + `diabloc lint`
/// do: parse, typecheck, restriction analysis; when all of that passes,
/// the lint passes run over the typed and compiled program.
fn diagnose(source: &str) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if let Some((tp, compiled)) = diablo_core::compile_multi(source, &mut diags) {
        diags.extend(diablo_core::lint_program(&tp, &compiled));
    }
    diags
}

fn ui_cases() -> Vec<PathBuf> {
    let mut cases: Vec<PathBuf> = fs::read_dir(ui_dir())
        .expect("tests/ui directory")
        .map(|e| e.expect("read tests/ui entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "dbl"))
        .collect();
    cases.sort();
    assert!(
        cases.len() >= 16,
        "expected the full UI corpus, found {} programs",
        cases.len()
    );
    cases
}

fn compare_or_update(path: &Path, actual: &str, update: bool) {
    if update {
        fs::write(path, actual).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; run `UPDATE_GOLDEN=1 cargo test --test diagnostics_ui`",
            path.display()
        )
    });
    assert_eq!(
        actual,
        golden,
        "rendered diagnostics changed for {}; if intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test diagnostics_ui` and review the diff",
        path.display()
    );
}

/// The corpus, rendered and compared against the goldens — both the
/// human caret rendering and the machine `--json` document.
#[test]
fn ui_corpus_matches_goldens() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    for case in ui_cases() {
        let source = fs::read_to_string(&case).expect("read .dbl");
        let name = case.file_name().unwrap().to_str().unwrap().to_string();
        let diags = diagnose(&source);

        let rendered = render_all(&diags, &source, &name);
        compare_or_update(&case.with_extension("stderr"), &rendered, update);

        let json = to_json(&diags);
        assert_parseable_json(&json, &name);
        compare_or_update(&case.with_extension("json"), &json, update);
    }
}

/// Every stable code in the table has at least one UI case that
/// actually emits it, so a regression that silences a pass cannot slip
/// through with all goldens still matching empty output.
#[test]
fn every_diagnostic_code_is_exercised() {
    let mut seen = BTreeSet::new();
    for case in ui_cases() {
        let source = fs::read_to_string(&case).expect("read .dbl");
        for d in diagnose(&source).iter() {
            seen.insert(d.code);
        }
    }
    let expected = [
        "D001", "D002", "D010", "D011", "D012", "D013", "D014", "D015", "D016", "D020", "D021",
        "D022", "D023", "D024", "D025",
    ];
    for code in expected {
        assert!(seen.contains(code), "no UI case emits {code}");
    }
}

/// The acceptance-criterion program: three independent faults, all
/// reported in a single front-end run with stable codes and real spans.
#[test]
fn multi_error_program_reports_every_fault() {
    let source = fs::read_to_string(ui_dir().join("multi_error.dbl")).expect("read");
    let diags = diagnose(&source);
    assert!(
        diags.error_count() >= 3,
        "expected at least 3 errors, got {}:\n{}",
        diags.error_count(),
        render_all(&diags, &source, "multi_error.dbl")
    );
    for d in diags.iter() {
        assert!(
            !d.span.is_synth(),
            "{}: every fault must carry a span",
            d.code
        );
    }
}

/// The JSON form is stable under re-rendering and carries one entry per
/// diagnostic, in emission order.
#[test]
fn json_is_deterministic_and_complete() {
    let source = fs::read_to_string(ui_dir().join("multi_error.dbl")).expect("read");
    let diags = diagnose(&source);
    let a = to_json(&diags);
    let b = to_json(&diags);
    assert_eq!(a, b, "to_json must be deterministic");
    assert_eq!(
        a.matches("\"code\":").count(),
        diags.len(),
        "one JSON entry per diagnostic"
    );
}

// --- minimal JSON reader -------------------------------------------------
//
// Enough of RFC 8259 to prove our hand-rolled encoder produces a
// well-formed document: objects, arrays, strings with escapes, numbers.

fn assert_parseable_json(text: &str, who: &str) {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)
        .unwrap_or_else(|e| panic!("{who}: malformed JSON at byte {pos}: {e}"));
    skip_ws(bytes, &mut pos);
    assert_eq!(
        pos,
        bytes.len(),
        "{who}: trailing garbage after JSON document"
    );
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        other => Err(format!("unexpected {other:?}")),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err("expected ':' in object".into());
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // [
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err("expected string".into());
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                let esc = b.get(*pos + 1).ok_or("dangling escape")?;
                match esc {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *pos += 2,
                    b'u' => {
                        for i in 2..6 {
                            if !b.get(*pos + i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err("bad \\u escape".into());
                            }
                        }
                        *pos += 6;
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
            }
            0x00..=0x1f => return Err("raw control character in string".into()),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if *pos == start {
        return Err("expected number".into());
    }
    Ok(())
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}`"))
    }
}
