//! Integration tests for the `diabloc` command-line compiler and the
//! `diablod` serving daemon.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

fn diabloc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_diabloc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("diabloc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn check_accepts_valid_programs() {
    let p = write_temp(
        "ok.dbl",
        "input V: vector[double];
         var sum: double = 0.0;
         for v in V do sum += v;",
    );
    let out = diabloc().arg("check").arg(&p).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok"));
}

#[test]
fn check_rejects_recurrences_with_diagnostics() {
    let p = write_temp(
        "bad.dbl",
        "input V: vector[double];
         input n: long;
         for i = 1, n-2 do V[i] := (V[i-1] + V[i+1]) / 2.0;",
    );
    let out = diabloc().arg("check").arg(&p).output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("dependence"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn show_prints_bulk_statements() {
    let p = write_temp(
        "show.dbl",
        "input words: vector[string];
         var C: map[string, long] = map();
         for w in words do C[w] += 1;",
    );
    let out = diabloc().arg("show").arg(&p).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("group by"), "{text}");
    assert!(text.contains("⊳[+]"), "{text}");
}

#[test]
fn run_and_interp_agree_on_csv_inputs() {
    let program = write_temp(
        "gb.dbl",
        "input V: vector[long];
         var C: vector[long] = vector();
         var total: long = 0;
         for i = 0, 9 do C[V[i]] += 1;
         for i = 0, 9 do total += V[i];",
    );
    let data = write_temp("v.csv", "0,5\n1,5\n2,7\n3,5\n4,7\n");
    let run = |cmd: &str| -> String {
        let out = diabloc()
            .arg(cmd)
            .arg(&program)
            .arg(format!("V=@{}", data.display()))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let engine = run("run");
    let interp = run("interp");
    for text in [&engine, &interp] {
        assert!(text.contains("total = 29"), "{text}");
        assert!(text.contains("(5, 3)"), "{text}");
        assert!(text.contains("(7, 2)"), "{text}");
    }
}

#[test]
fn scalar_bindings_parse_types() {
    let program = write_temp(
        "scalars.dbl",
        "input n: long;
         input a: double;
         var x: double = 0.0;
         x := a * n;",
    );
    let out = diabloc()
        .arg("run")
        .arg(&program)
        .arg("n=4")
        .arg("a=2.5")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("x = 10"));
}

#[test]
fn explain_renders_fused_plan_for_word_count() {
    let p = write_temp(
        "wc_explain.dbl",
        "input words: vector[string];
         var C: map[string, long] = map();
         for w in words do C[w] += 1;",
    );
    // No bindings: inputs are synthesized from their declared types.
    for args in [vec!["explain"], vec!["run", "--explain"]] {
        let mut cmd = diabloc();
        for a in args {
            cmd.arg(a);
        }
        let out = cmd.arg(&p).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("physical plan"), "{text}");
        assert!(text.contains("fused"), "{text}");
        assert!(text.contains("reduce_by_key"), "{text}");
        assert!(text.contains("shuffle"), "{text}");
    }
}

#[test]
fn explain_renders_fused_plan_for_kmeans() {
    let p = write_temp("kmeans_explain.dbl", diablo_workloads::programs::KMEANS);
    let out = diabloc()
        .arg("explain")
        .arg(&p)
        .arg("K=2")
        .arg("N=6")
        .arg("num_steps=1")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("physical plan"), "{text}");
    assert!(text.contains("fused"), "{text}");
    assert!(text.contains("broadcast"), "{text}");
    assert!(text.contains("while"), "{text}");
}

#[test]
fn usage_errors_are_reported() {
    let out = diabloc()
        .arg("frobnicate")
        .arg("/nonexistent")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = diabloc().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn backend_flag_selects_executor_and_outputs_match() {
    let p = write_temp(
        "wc_backend.dbl",
        "input words: vector[string];
         var C: map[string, long] = map();
         for w in words do C[w] += 1;",
    );
    let csv = write_temp("wc_backend.csv", "0,a\n1,b\n2,a\n3,c\n4,a\n");
    let run = |args: &[&str]| {
        let mut cmd = diabloc();
        for a in args {
            cmd.arg(a);
        }
        let out = cmd
            .arg(&p)
            .arg(format!("words=@{}", csv.display()))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let local = run(&["run"]);
    let tile = run(&["run", "--backend", "tile"]);
    let tile_eq = run(&["run", "--backend=tile"]);
    assert_eq!(local, tile, "backends must produce byte-identical output");
    assert_eq!(tile, tile_eq);
    let spill = run(&["run", "--backend", "spill"]);
    assert_eq!(local, spill, "spill backend must match local byte-for-byte");
    // Even with a zero budget — every exchanged bucket through disk.
    let spill0 = run(&["run", "--backend", "spill", "--memory-budget", "0"]);
    assert_eq!(local, spill0, "fully spilled run must match local");
    // explain names the backend it executed on.
    let out = diabloc()
        .arg("explain")
        .arg("--backend")
        .arg("tile")
        .arg(&p)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("`tile` backend"), "{text}");
}

#[test]
fn ordered_flag_runs_sorted_shuffles() {
    let p = write_temp(
        "wc_ordered.dbl",
        "input words: vector[string];
         var C: map[string, long] = map();
         for w in words do C[w] += 1;",
    );
    let csv = write_temp("wc_ordered.csv", "0,b\n1,a\n2,c\n3,a\n4,b\n5,a\n");
    let run = |args: &[&str]| {
        let mut cmd = diabloc();
        for a in args {
            cmd.arg(a);
        }
        let out = cmd
            .arg(&p)
            .arg(format!("words=@{}", csv.display()))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    // Same rows either way — the ordered run just emits them key-sorted.
    let plain = run(&["run"]);
    let ordered = run(&["run", "--ordered"]);
    let sorted_lines = |s: &str| {
        let mut v: Vec<&str> = s.lines().collect();
        v.sort();
        v.join("\n")
    };
    assert_eq!(
        sorted_lines(&plain),
        sorted_lines(&ordered),
        "--ordered must not change the result multiset"
    );
    // The ordered explain shows the range-partitioned sorted exchange.
    let out = diabloc()
        .arg("explain")
        .arg("--ordered")
        .arg(&p)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sorted"), "{text}");
    assert!(text.contains("range partitioner"), "{text}");
    // Rejected for commands that run no engine, like the other flags.
    let out = diabloc()
        .arg("check")
        .arg("--ordered")
        .arg(&p)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("only apply to `run` and `explain`"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn backend_flag_rejects_unknown_names_and_wrong_commands() {
    let p = write_temp("backend_err.dbl", "var k: long = 0;");
    let out = diabloc()
        .arg("run")
        .arg("--backend")
        .arg("spark")
        .arg(&p)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("unknown backend"), "{stderr}");
    assert!(
        stderr.contains("local, tile, spill"),
        "the error must list every valid backend: {stderr}"
    );
    let out = diabloc()
        .arg("check")
        .arg("--backend")
        .arg("tile")
        .arg(&p)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("only apply to `run` and `explain`"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn engine_shape_flags_apply_to_run_and_are_rejected_elsewhere() {
    let p = write_temp(
        "shape.dbl",
        "input V: vector[long];
         var C: vector[long] = vector();
         for i = 0, 9 do C[V[i]] += 1;",
    );
    let csv = write_temp("shape.csv", "0,5\n1,5\n2,7\n3,5\n4,7\n");
    let run = |args: &[&str]| {
        let mut cmd = diabloc();
        for a in args {
            cmd.arg(a);
        }
        cmd.arg(&p).arg(format!("V=@{}", csv.display()));
        cmd.output().unwrap()
    };
    let base = run(&["run"]);
    assert!(base.status.success());
    let shaped = run(&[
        "run",
        "--workers",
        "2",
        "--partitions",
        "3",
        "--memory-budget=0",
    ]);
    assert!(
        shaped.status.success(),
        "{}",
        String::from_utf8_lossy(&shaped.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&base.stdout),
        String::from_utf8_lossy(&shaped.stdout),
        "context shape and spilling must not change results"
    );
    // Engine flags are rejected for commands that run no engine, exactly
    // like --backend.
    for (cmd, flag) in [
        ("check", "--workers=2"),
        ("show", "--partitions=4"),
        ("interp", "--memory-budget=1024"),
    ] {
        let out = diabloc().arg(cmd).arg(flag).arg(&p).output().unwrap();
        assert!(!out.status.success(), "{cmd} must reject {flag}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("only apply to `run` and `explain`"),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Invalid values fail loudly.
    let out = diabloc()
        .arg("run")
        .arg("--workers")
        .arg("0")
        .arg(&p)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not a positive count"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Spawns `diablod` on an ephemeral port and returns the child plus the
/// resolved address parsed from its single readiness line.
fn spawn_diablod(extra: &[&str]) -> (std::process::Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_diablod"))
        .arg("--listen")
        .arg("127.0.0.1:0")
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("diablod: listening on ")
        .unwrap_or_else(|| panic!("unexpected readiness line: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn diablod_serves_runs_identical_to_local_diabloc() {
    let program = write_temp(
        "served.dbl",
        "input V: vector[long];
         var C: vector[long] = vector();
         var total: long = 0;
         for i = 0, 9 do C[V[i]] += 1;
         for i = 0, 9 do total += V[i];",
    );
    let data = write_temp("served.csv", "0,5\n1,5\n2,7\n3,5\n4,7\n");
    let (mut child, addr) = spawn_diablod(&[]);

    let run = |args: &[&str]| {
        let mut cmd = diabloc();
        cmd.arg("run");
        for a in args {
            cmd.arg(a);
        }
        let out = cmd
            .arg(&program)
            .arg(format!("V=@{}", data.display()))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let local = run(&[]);
    let remote = run(&["--connect", &addr]);
    assert_eq!(remote, local, "served output must match a local run");
    // A repeat of the same request is a cache hit — still byte-identical.
    let cached = run(&["--connect", &addr]);
    assert_eq!(cached, local);

    // Errors travel back verbatim, statement tags included.
    let bad = write_temp(
        "served_err.dbl",
        "input V: vector[long];
         var X: vector[long] = vector();
         for i = 0, 9 do X[i] := 100 / (V[i] - 5);",
    );
    let run_err = |args: &[&str]| {
        let mut cmd = diabloc();
        cmd.arg("run");
        for a in args {
            cmd.arg(a);
        }
        let out = cmd
            .arg(&bad)
            .arg(format!("V=@{}", data.display()))
            .output()
            .unwrap();
        assert!(!out.status.success());
        String::from_utf8_lossy(&out.stderr).into_owned()
    };
    let local_err = run_err(&[]);
    let remote_err = run_err(&["--connect", &addr]);
    assert_eq!(remote_err, local_err);
    assert!(local_err.contains("division by zero"), "{local_err}");

    // Engine flags belong to the daemon, not to a connected client.
    let out = diabloc()
        .arg("run")
        .arg("--connect")
        .arg(&addr)
        .arg("--backend")
        .arg("tile")
        .arg(&program)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--connect"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    child.kill().unwrap();
    child.wait().unwrap();
}

#[test]
fn diablod_rejects_bad_flags_before_binding() {
    let out = Command::new(env!("CARGO_BIN_EXE_diablod"))
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--frobnicate")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("usage"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = Command::new(env!("CARGO_BIN_EXE_diablod"))
        .arg("--backend")
        .arg("spark")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown backend"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn csv_tuple_values_bind_point_vectors() {
    let p = write_temp(
        "tuple_csv.dbl",
        "input P: vector[(double, double)];
         var sx: double = 0.0;
         for p in P do sx += p._1;",
    );
    let csv = write_temp("points.csv", "0,(1.5 2.0)\n1,(2.5 3.0)\n");
    let out = diabloc()
        .arg("run")
        .arg(&p)
        .arg(format!("P=@{}", csv.display()))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sx = 4"), "{text}");
}
