//! K-Means clustering: the paper's hardest translation case.
//!
//! ```sh
//! cargo run --release --example kmeans
//! ```
//!
//! The DIABLO K-Means uses two commutative monoids beyond `+`: the argmin
//! monoid `^` over `(index, distance)` pairs to track the nearest centroid,
//! and element-wise tuple addition to accumulate `(sum_x, sum_y, count)`.
//! The paper reports (Fig. 3K) that the generated plan is much slower than
//! the hand-written broadcast plan because it correlates points with
//! centroids through joins — this example shows both plans computing the
//! same centroids and prints the shuffle counts that explain the gap.

use diablo::prelude::*;
use diablo_baselines::handwritten;
use diablo_workloads as wl;

fn main() {
    let n_points = 5_000;
    let grid = 3; // 9 true centroids
    let steps = 3;
    let w = wl::kmeans(n_points, grid, steps, 7);

    let ctx = Context::default_parallel();

    // DIABLO path.
    let compiled = compile(w.source).expect("K-Means satisfies the restrictions");
    let mut session = Session::new(ctx.clone());
    for (name, v) in &w.scalars {
        session.bind_scalar(name, v.clone());
    }
    for (name, rows) in &w.collections {
        session.bind_input(name, rows.clone());
    }
    let before = ctx.stats().snapshot();
    session.run(&compiled).expect("runs");
    let dstats = ctx.stats().snapshot().since(&before);

    let mut diablo_centroids: Vec<(f64, f64)> = session
        .collect("C")
        .unwrap()
        .into_iter()
        .map(|row| {
            let (_, xy) = diablo::runtime::array::key_value(&row).unwrap();
            let f = xy.as_tuple().unwrap();
            (f[0].as_double().unwrap(), f[1].as_double().unwrap())
        })
        .collect();

    // Hand-written path (broadcast + reduceByKey).
    let points = ctx.from_vec(w.collections[0].1.clone());
    let initial: Vec<(f64, f64)> = w.collections[1]
        .1
        .iter()
        .map(|row| {
            let (_, xy) = diablo::runtime::array::key_value(row).unwrap();
            let f = xy.as_tuple().unwrap();
            (f[0].as_double().unwrap(), f[1].as_double().unwrap())
        })
        .collect();
    let before = ctx.stats().snapshot();
    let mut hand_centroids = handwritten::kmeans(&points, &initial, steps).expect("runs");
    let hstats = ctx.stats().snapshot().since(&before);

    diablo_centroids.sort_by(|a, b| a.partial_cmp(b).unwrap());
    hand_centroids.sort_by(|a, b| a.partial_cmp(b).unwrap());

    println!("centroids after {steps} steps:");
    println!("{:>24} {:>24}", "DIABLO", "hand-written");
    for (d, h) in diablo_centroids.iter().zip(&hand_centroids) {
        println!(
            "({:>8.4}, {:>8.4})    ({:>8.4}, {:>8.4})",
            d.0, d.1, h.0, h.1
        );
        assert!(
            (d.0 - h.0).abs() < 1e-6 && (d.1 - h.1).abs() < 1e-6,
            "plans must agree"
        );
    }

    println!("\nwhy the paper's Fig. 3K gap exists (same effect here):");
    println!(
        "  DIABLO:       {:>4} shuffles, {:>9} rows shuffled",
        dstats.shuffles, dstats.shuffled_records
    );
    println!(
        "  hand-written: {:>4} shuffles, {:>9} rows shuffled (broadcast keeps the",
        hstats.shuffles, hstats.shuffled_records
    );
    println!("                centroids local; only per-centroid partial sums move)");
}
