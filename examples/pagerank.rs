//! PageRank from an imperative loop nest, end to end.
//!
//! ```sh
//! cargo run --release --example pagerank
//! ```
//!
//! The paper's Appendix B PageRank is an imperative program over an edge
//! matrix `E[i, j]`, out-degree counts `C`, and a rank vector `P`, iterated
//! with a `while` loop. DIABLO translates the for-loops to joins and
//! reduce-by-keys; the `while` stays sequential on the driver (§3.8). The
//! example also runs the hand-written engine program (links/join/flatMap/
//! reduceByKey) and compares the top-ranked vertices.

use diablo::prelude::*;
use diablo_baselines::handwritten;
use diablo_workloads as wl;

fn main() {
    let vertices = 200;
    let steps = 3;
    let w = wl::pagerank(vertices, steps, 42);

    // DIABLO path: compile the loop program and run it.
    let compiled = compile(w.source).expect("PageRank satisfies the restrictions");
    let ctx = Context::default_parallel();
    let mut session = Session::new(ctx.clone());
    for (name, v) in &w.scalars {
        session.bind_scalar(name, v.clone());
    }
    for (name, rows) in &w.collections {
        session.bind_input(name, rows.clone());
    }
    let stats_before = ctx.stats().snapshot();
    session.run(&compiled).expect("runs");
    let stats = ctx.stats().snapshot().since(&stats_before);
    println!(
        "DIABLO plan: {} stages, {} shuffles, {} rows shuffled",
        stats.stages, stats.shuffles, stats.shuffled_records
    );

    let mut diablo_ranks: Vec<(i64, f64)> = session
        .collect("P")
        .unwrap()
        .into_iter()
        .map(|row| {
            let (k, v) = diablo::runtime::array::key_value(&row).unwrap();
            (k.as_long().unwrap(), v.as_double().unwrap())
        })
        .collect();
    diablo_ranks.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Hand-written path (Appendix B).
    let e = ctx.from_vec(w.collections[0].1.clone());
    let hand = handwritten::pagerank(&e, vertices as i64, steps).expect("hand-written runs");
    let mut hand_ranks: Vec<(i64, f64)> = hand
        .collect()
        .into_iter()
        .map(|row| {
            let (k, v) = diablo::runtime::array::key_value(&row).unwrap();
            (k.as_long().unwrap(), v.as_double().unwrap())
        })
        .collect();
    hand_ranks.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("\ntop 5 vertices (DIABLO)       top 5 vertices (hand-written)");
    for i in 0..5 {
        let (dv, dr) = diablo_ranks[i];
        let (hv, hr) = hand_ranks[i];
        println!("  v{dv:<6} rank {dr:.6}        v{hv:<6} rank {hr:.6}");
    }

    // The two programs agree on who matters (the hand-written version
    // drops vertices with no in-links, so compare the head of the list).
    let d_top: Vec<i64> = diablo_ranks.iter().take(5).map(|(v, _)| *v).collect();
    let h_top: Vec<i64> = hand_ranks.iter().take(5).map(|(v, _)| *v).collect();
    assert_eq!(d_top, h_top, "both plans rank the same top vertices");
    println!("\ntop-5 agreement between DIABLO and hand-written ✓");
}
