//! What DIABLO rejects, and how to fix it — the diagnostics tour of §3.2.
//!
//! ```sh
//! cargo run --release --example rejected_programs
//! ```
//!
//! The translator only parallelizes *affine* for-loops (Definition 3.1).
//! This example walks through the paper's rejected programs, shows the
//! diagnostic each produces, and then compiles the paper's suggested
//! rewrite of each.

use diablo::prelude::*;

fn show(title: &str, source: &str) {
    println!("--- {title}");
    match compile(source) {
        Ok(p) => println!("    accepted ({} bulk statements)\n", p.stmts.len()),
        Err(e) => println!("    rejected: {e}\n"),
    }
}

fn main() {
    println!("== programs the paper rejects (§3.2) ==\n");

    // A stencil: V is read and written in the same loop.
    show(
        "stencil V[i] := (V[i-1] + V[i+1]) / 2",
        r#"
        input V: vector[double];
        input n: long;
        for i = 1, n-2 do
            V[i] := (V[i-1] + V[i+1]) / 2.0;
        "#,
    );

    // The paper's fix: copy first, then read the copy. (Note the paper
    // points out this computes something *different* from the original
    // sequential recurrence — it uses the previous values of V.)
    show(
        "two-pass stencil rewrite",
        r#"
        input V: vector[double];
        input n: long;
        var V2: vector[double] = vector();
        for i = 0, n-1 do V2[i] := V[i];
        for i = 1, n-2 do V[i] := (V2[i-1] + V2[i+1]) / 2.0;
        "#,
    );

    // A scalar temporary inside a loop: n is not affine.
    show(
        "scalar temporary n := V[i]",
        r#"
        input V: vector[double];
        var n: double = 0.0;
        var W: vector[double] = vector();
        for i = 0, 9 do {
            n := V[i];
            W[i] := n + 1.0;
        };
        "#,
    );

    // The paper's fix: give the temporary an array dimension.
    show(
        "vectorized temporary n[i] := V[i]",
        r#"
        input V: vector[double];
        var n: vector[double] = vector();
        var W: vector[double] = vector();
        for i = 0, 9 do {
            n[i] := V[i];
            W[i] := n[i] + 1.0;
        };
        "#,
    );

    // Exception (b) violated: the increment of V[i] is read at a context
    // whose intersection is not indexes(V[i]).
    show(
        "increment/read violating exception (b)",
        r#"
        var V: vector[long] = vector();
        var M: matrix[long] = matrix();
        for i = 0, 9 do
            for j = 0, 9 do {
                V[i] += 1;
                M[i, j] := V[i];
            };
        "#,
    );

    // The same increment/read pattern the paper accepts: the read sits
    // outside the j-loop, so context(s1) ∩ context(s2) = indexes(V[i]).
    show(
        "increment/read satisfying exception (b)",
        r#"
        var V: vector[long] = vector();
        var W: vector[long] = vector();
        for i = 0, 9 do {
            for j = 0, 9 do V[i] += 1;
            W[i] := V[i];
        };
        "#,
    );

    // Bubble-sort style element swaps are out of scope entirely (§3.2:
    // "some real-world programs that contain irregular loops ... are
    // rejected").
    show(
        "bubble-sort inner swap",
        r#"
        input V: vector[long];
        input n: long;
        var t: long = 0;
        for i = 0, n-2 do {
            t := V[i];
            V[i] := V[i+1];
            V[i+1] := t;
        };
        "#,
    );
}
