//! Quickstart: compile an array-based loop program and run it on the
//! dataflow engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's introductory example (§1): counting values per key
//! with an incremental update `C[A[i].K] += A[i].V`, which DIABLO turns
//! into a group-by with a sum aggregation.

use diablo::prelude::*;

fn main() {
    // An imperative loop program over a sparse vector of ⟨K, V⟩ records.
    let source = r#"
        input A: vector[<|K: long, V: long|>];
        var C: vector[long] = vector();
        for i = 0, 9 do
            C[A[i].K] += A[i].V;
    "#;

    // 1. Compile: parse → type check → restriction check (Definition 3.1)
    //    → translate (Fig. 2) → optimize (Rules 2/16/17, §3.6).
    let compiled = compile(source).expect("the program satisfies the restrictions");
    println!("translated to {} bulk statement(s)", compiled.stmts.len());
    for stmt in &compiled.stmts {
        if let diablo::core::TStmt::Assign { name, value, .. } = stmt {
            println!("  {name} := {}", diablo::comp::pretty_cexpr(value));
        }
    }

    // 2. Bind inputs: the table A of the paper, {(3,10), (5,25), (3,13)}.
    let ctx = Context::new(4, 8);
    let mut session = Session::new(ctx);
    let a = vec![(0, (3, 10)), (1, (5, 25)), (2, (3, 13))]
        .into_iter()
        .map(|(i, (k, v))| {
            Value::pair(
                Value::Long(i),
                Value::record(vec![
                    ("K".to_string(), Value::Long(k)),
                    ("V".to_string(), Value::Long(v)),
                ]),
            )
        })
        .collect();
    session.bind_input("A", a);

    // 3. Run in bulk on the engine.
    session.run(&compiled).expect("runs");

    // 4. Read the result: C = {(3, 23), (5, 25)} (the paper's table).
    println!("C = {:?}", session.collect("C").unwrap());

    // 5. Cross-check against the sequential reference interpreter.
    let tp = diablo::lang::typecheck(diablo::lang::parse(source).unwrap()).unwrap();
    let mut interp = Interpreter::new();
    interp
        .bind_collection(
            "A",
            vec![(0, (3, 10)), (1, (5, 25)), (2, (3, 13))]
                .into_iter()
                .map(|(i, (k, v))| {
                    Value::pair(
                        Value::Long(i),
                        Value::record(vec![
                            ("K".to_string(), Value::Long(k)),
                            ("V".to_string(), Value::Long(v)),
                        ]),
                    )
                })
                .collect(),
        )
        .unwrap();
    interp.run(&tp).unwrap();
    assert_eq!(session.collect("C"), interp.collection("C"));
    println!("engine result matches the sequential interpreter ✓");
}
