//! Dependence analysis and the parallelization restrictions of §3.2.
//!
//! For every statement `s` inside a for-loop the analysis computes the
//! readers R⟦s⟧, writers W⟦s⟧, and aggregators A⟦s⟧ (the L-values read,
//! written, and incremented). A for-loop is *affine* (Definition 3.1), and
//! therefore parallelizable, when:
//!
//! 1. the destination of every non-incremental update is affine — its
//!    indexes are affine expressions covering all enclosing loop indexes,
//!    so each iteration writes a distinct location;
//! 2. no two statements have overlapping aggregate/write → read
//!    dependencies, except
//!    * (a) a write followed by a read of the *same* L-value, and
//!    * (b) an increment followed by a read of the same L-value, provided
//!      the read destination is affine and
//!      `context(s1) ∩ context(s2) = indexes(d)`.
//!
//! Two soundness patches beyond the paper's text (documented in DESIGN.md):
//! write/aggregate and aggregate/aggregate conflicts on the *same array at
//! different locations* are also rejected (loop fission would reorder
//! them), and reads of a sub-location (`d.A` after writing `d`) are treated
//! as reads of `d` for the exceptions.

use std::collections::HashSet;

use diablo_diag::{codes, Diagnostic, Diagnostics};
use diablo_lang::ast::{Expr, Lhs, Stmt};
use diablo_lang::lexer::Span;
use diablo_lang::pretty::pretty_lhs;
use diablo_lang::types::TypedProgram;
use diablo_lang::LangError;
use diablo_runtime::BinOp;

/// Result alias: analysis failures are front-end errors with spans.
pub type Result<T> = std::result::Result<T, LangError>;

/// What a leaf statement does to its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Write,
    Aggregate(BinOp),
}

/// One leaf update event collected from a loop body.
#[derive(Debug, Clone)]
struct Event {
    /// Traversal order within the loop.
    order: usize,
    /// Enclosing loop indexes, outermost first.
    context: Vec<String>,
    /// The destination L-value.
    dest: Lhs,
    /// Write or aggregate.
    kind: Kind,
    /// Everything the statement reads: RHS destinations, destination index
    /// expressions, and enclosing if-conditions.
    reads: Vec<Lhs>,
    /// Source location for diagnostics.
    span: Span,
}

/// Checks the whole program: every maximal for-loop must satisfy
/// Definition 3.1. Returns `Ok(())` or the first violation.
///
/// This is the fail-fast wrapper around [`check_restrictions_multi`]; the
/// error it returns is the first diagnostic the multi-error pass emits.
pub fn check_restrictions(tp: &TypedProgram) -> Result<()> {
    let mut diags = Diagnostics::new();
    check_restrictions_multi(tp, &mut diags);
    match diags.first_error() {
        None => Ok(()),
        Some(d) => Err(LangError::new(d.message.clone(), d.span)),
    }
}

/// Checks the whole program, accumulating *every* §3.2 violation into
/// `diags` — each conflicting statement pair is reported with both spans
/// (the primary on the later statement, a secondary label on the earlier).
pub fn check_restrictions_multi(tp: &TypedProgram, diags: &mut Diagnostics) {
    for s in &tp.program.body {
        check_stmt(s, tp, diags);
    }
}

fn check_stmt(s: &Stmt, tp: &TypedProgram, diags: &mut Diagnostics) {
    match s {
        Stmt::For { .. } | Stmt::ForIn { .. } => check_loop(s, tp, diags),
        Stmt::While { body, .. } => check_stmt(body, tp, diags),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            check_stmt(then_branch, tp, diags);
            if let Some(e) = else_branch {
                check_stmt(e, tp, diags);
            }
        }
        Stmt::Block(ss) => {
            for s in ss {
                check_stmt(s, tp, diags);
            }
        }
        _ => {}
    }
}

fn kind_verb(kind: Kind) -> &'static str {
    match kind {
        Kind::Write => "written",
        Kind::Aggregate(_) => "incremented",
    }
}

/// Checks one maximal for-loop, emitting every violation.
fn check_loop(loop_stmt: &Stmt, tp: &TypedProgram, diags: &mut Diagnostics) {
    let mut events = Vec::new();
    let mut order = 0usize;
    collect_events(
        loop_stmt,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut events,
        &mut order,
        tp,
        diags,
    );

    // Restriction 1: non-incremental destinations must be affine.
    for ev in &events {
        if ev.kind == Kind::Write && !affine(&ev.dest, &ev.context, tp) {
            diags.emit(
                Diagnostic::error(
                    codes::NOT_AFFINE,
                    format!(
                        "destination `{}` of a non-incremental update is not affine: its indexes \
                         must be affine expressions covering all enclosing loop indexes {:?} \
                         (Definition 3.1, restriction 1)",
                        pretty_lhs(&ev.dest),
                        ev.context
                    ),
                    ev.span,
                )
                .with_help(
                    "index the destination by every enclosing loop variable, or use an \
                     incremental update (`+=`, `*=`, ...) which may target any location",
                ),
            );
        }
    }

    // Restriction 2: dependence pairs. Each conflicting (s1, s2) pair is
    // reported once, on its first offending read.
    let mut reported: HashSet<(usize, usize)> = HashSet::new();
    for s1 in &events {
        for s2 in &events {
            // (A ∪ W)(s1) × R(s2)
            for d2 in &s2.reads {
                if !overlap(&s1.dest, d2) {
                    continue;
                }
                let precedes = s1.order < s2.order;
                let same_loc = contains(&s1.dest, d2);
                let ok = match s1.kind {
                    // Exception (a): write then read of the same location.
                    Kind::Write => same_loc && precedes,
                    // Exception (b): increment then read of the same
                    // location, affine, with the context condition.
                    Kind::Aggregate(_) => {
                        let ctx1: HashSet<&String> = s1.context.iter().collect();
                        let ctx2: HashSet<&String> = s2.context.iter().collect();
                        let inter: HashSet<&String> = ctx1.intersection(&ctx2).copied().collect();
                        let idx = indexes(&s1.dest, tp);
                        let idx: HashSet<&String> = idx.iter().collect();
                        same_loc && precedes && affine(d2, &s2.context, tp) && inter == idx
                    }
                };
                if !ok && reported.insert((s1.order, s2.order)) {
                    diags.emit(
                        Diagnostic::error(
                            codes::DEPENDENCE,
                            format!(
                                "loop-carried dependence: `{}` is {} and `{}` is read in the same \
                                 loop (Definition 3.1, restriction 2)",
                                pretty_lhs(&s1.dest),
                                kind_verb(s1.kind),
                                pretty_lhs(d2),
                            ),
                            s2.span,
                        )
                        .with_label(
                            s1.span,
                            format!("`{}` is {} here", pretty_lhs(&s1.dest), kind_verb(s1.kind)),
                        ),
                    );
                }
            }
        }
    }

    // Soundness patch: write/aggregate and mixed-operator aggregate pairs
    // on the same array must target the same location.
    let mut reported: HashSet<(usize, usize)> = HashSet::new();
    for s1 in &events {
        for s2 in &events {
            if s1.order >= s2.order
                || !overlap(&s1.dest, &s2.dest)
                || reported.contains(&(s1.order, s2.order))
            {
                continue;
            }
            let diag = match (s1.kind, s2.kind) {
                (Kind::Write, Kind::Write) => {
                    // Both affine by restriction 1; distinct statements
                    // writing overlapping arrays at different locations
                    // would be order-dependent.
                    (s1.dest != s2.dest).then(|| {
                        Diagnostic::error(
                            codes::WRITE_WRITE,
                            format!(
                                "two non-incremental updates write the array `{}` at \
                                 different locations in the same loop",
                                s1.dest.base_var()
                            ),
                            s2.span,
                        )
                        .with_label(
                            s1.span,
                            format!("`{}` is also written here", pretty_lhs(&s1.dest)),
                        )
                    })
                }
                (Kind::Write, Kind::Aggregate(_)) | (Kind::Aggregate(_), Kind::Write) => {
                    (s1.dest != s2.dest).then(|| {
                        Diagnostic::error(
                            codes::WRITE_AGGREGATE,
                            format!(
                                "array `{}` is both written and incremented at different \
                                 locations in the same loop",
                                s1.dest.base_var()
                            ),
                            s2.span,
                        )
                        .with_label(
                            s1.span,
                            format!("`{}` is {} here", pretty_lhs(&s1.dest), kind_verb(s1.kind)),
                        )
                    })
                }
                (Kind::Aggregate(op1), Kind::Aggregate(op2)) => (op1 != op2 && s1.dest != s2.dest)
                    .then(|| {
                        Diagnostic::error(
                            codes::AGGREGATE_AGGREGATE,
                            format!(
                                "array `{}` is incremented with different operators at \
                                 different locations in the same loop (first increment at \
                                 {}:{})",
                                s1.dest.base_var(),
                                s1.span.line,
                                s1.span.col
                            ),
                            s2.span,
                        )
                        .with_label(
                            s1.span,
                            format!("`{}` is incremented here", pretty_lhs(&s1.dest)),
                        )
                    }),
            };
            if let Some(diag) = diag {
                reported.insert((s1.order, s2.order));
                diags.emit(diag);
            }
        }
    }
}

/// Collects leaf update events from a loop body.
///
/// `context` accumulates loop indexes; `conds` accumulates enclosing
/// if-conditions (their reads belong to every nested statement).
#[allow(clippy::only_used_in_recursion)]
fn collect_events(
    s: &Stmt,
    context: &mut Vec<String>,
    conds: &mut Vec<Expr>,
    events: &mut Vec<Event>,
    order: &mut usize,
    tp: &TypedProgram,
    diags: &mut Diagnostics,
) {
    match s {
        Stmt::Assign { dest, value, span }
        | Stmt::Incr {
            dest, value, span, ..
        } => {
            let kind = match s {
                Stmt::Incr { op, .. } => Kind::Aggregate(*op),
                _ => Kind::Write,
            };
            let mut reads = Vec::new();
            value.destinations(&mut reads);
            for e in dest.index_exprs() {
                e.destinations(&mut reads);
            }
            for c in conds.iter() {
                c.destinations(&mut reads);
            }
            events.push(Event {
                order: *order,
                context: context.clone(),
                dest: dest.clone(),
                kind,
                reads,
                span: *span,
            });
            *order += 1;
        }
        Stmt::Decl { name, span, .. } => diags.emit(Diagnostic::error(
            codes::DECL_IN_LOOP,
            format!("`var {name}` declarations cannot appear inside for-loops"),
            *span,
        )),
        Stmt::For {
            var,
            lo,
            hi,
            body,
            span,
        } => {
            // Bound expressions are evaluated per enclosing iteration; their
            // reads matter for the dependence pairs, so record them as a
            // pseudo-read via the condition mechanism.
            let _ = span;
            let bound_reads = Expr::Bin(
                diablo_runtime::BinOp::Add,
                Box::new(lo.clone()),
                Box::new(hi.clone()),
            );
            conds.push(bound_reads);
            context.push(var.clone());
            collect_events(body, context, conds, events, order, tp, diags);
            context.pop();
            conds.pop();
        }
        Stmt::ForIn {
            var,
            source,
            body,
            span,
        } => {
            let _ = span;
            conds.push(source.clone());
            // The element variable is a value, not a position: it cannot
            // serve as an affine index. Push a synthetic index name that no
            // destination can mention, so non-incremental updates inside
            // for-in loops are rejected unless they do not depend on the
            // iteration at all.
            context.push(format!("{var}@pos"));
            collect_events(body, context, conds, events, order, tp, diags);
            context.pop();
            conds.pop();
        }
        Stmt::While { span, .. } => diags.emit(Diagnostic::error(
            codes::WHILE_IN_FOR,
            "while-loops inside for-loops make the loop sequential, which this \
             implementation does not support (the paper sequentializes such loops)",
            *span,
        )),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            conds.push(cond.clone());
            collect_events(then_branch, context, conds, events, order, tp, diags);
            if let Some(e) = else_branch {
                collect_events(e, context, conds, events, order, tp, diags);
            }
            conds.pop();
        }
        Stmt::Block(ss) => {
            for s in ss {
                collect_events(s, context, conds, events, order, tp, diags);
            }
        }
    }
}

/// Two L-values overlap when they may denote the same memory (§3.2).
pub fn overlap(d1: &Lhs, d2: &Lhs) -> bool {
    match (d1, d2) {
        (Lhs::Var(a), Lhs::Var(b)) => a == b,
        (Lhs::Proj(a, f), Lhs::Proj(b, g)) => f == g && overlap(a, b),
        (Lhs::Index(a, _), Lhs::Index(b, _)) => a == b,
        // Mixed shapes: conservative — same base variable overlaps.
        _ => d1.base_var() == d2.base_var(),
    }
}

/// `d2` reads the same location as `d1` when it is `d1` itself or a
/// projection out of it.
fn contains(d1: &Lhs, d2: &Lhs) -> bool {
    if d1 == d2 {
        return true;
    }
    match d2 {
        Lhs::Proj(base, _) => contains(d1, base),
        _ => false,
    }
}

/// The loop indexes appearing anywhere in the destination's indexes.
pub fn indexes(d: &Lhs, tp: &TypedProgram) -> HashSet<String> {
    let mut out = HashSet::new();
    for e in d.index_exprs() {
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        for v in vars {
            if tp.is_loop_var(&v) {
                out.insert(v);
            }
        }
    }
    out
}

/// `affine(d, s)` of §3.2: the destination denotes a distinct location for
/// each combination of the enclosing loop indexes.
pub fn affine(d: &Lhs, context: &[String], tp: &TypedProgram) -> bool {
    match d {
        Lhs::Var(_) => context.is_empty(),
        Lhs::Proj(base, _) => affine(base, context, tp),
        Lhs::Index(_, idxs) => {
            let mut used: HashSet<String> = HashSet::new();
            for e in idxs {
                match affine_expr(e, tp) {
                    Some(vars) => used.extend(vars),
                    None => return false,
                }
            }
            context.iter().all(|c| used.contains(c))
        }
    }
}

/// If `e` is an affine expression `c0 + c1*i1 + ... + ck*ik` over loop
/// indexes, returns the set of loop indexes it uses; otherwise `None`.
/// Loop-invariant scalar variables count as constants.
pub fn affine_expr(e: &Expr, tp: &TypedProgram) -> Option<HashSet<String>> {
    use diablo_runtime::BinOp::*;
    match e {
        Expr::Const(_) => Some(HashSet::new()),
        Expr::Dest(Lhs::Var(v)) => {
            if tp.is_loop_var(v) {
                Some(HashSet::from([v.clone()]))
            } else if tp.is_collection(v) {
                None
            } else {
                Some(HashSet::new()) // loop-invariant scalar
            }
        }
        Expr::Dest(_) => None, // array reads / projections are not affine
        Expr::Un(diablo_runtime::UnOp::Neg, a) => affine_expr(a, tp),
        Expr::Bin(Add | Sub, a, b) => {
            let x = affine_expr(a, tp)?;
            let y = affine_expr(b, tp)?;
            Some(x.union(&y).cloned().collect())
        }
        Expr::Bin(Mul, a, b) => {
            let x = affine_expr(a, tp)?;
            let y = affine_expr(b, tp)?;
            // Linear only if one factor is index-free.
            if x.is_empty() {
                Some(y)
            } else if y.is_empty() {
                Some(x)
            } else {
                None
            }
        }
        Expr::Bin(Div | Mod, a, b) => {
            // i / c and i % c are not injective; only index-free divisions
            // count as constants.
            let x = affine_expr(a, tp)?;
            let y = affine_expr(b, tp)?;
            (x.is_empty() && y.is_empty()).then(HashSet::new)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_lang::{parse, typecheck};

    fn analyzed(src: &str) -> Result<()> {
        let tp = typecheck(parse(src)?)?;
        check_restrictions(&tp)
    }

    #[test]
    fn accepts_matrix_multiplication() {
        let src = r#"
            input M: matrix[double];
            input N: matrix[double];
            input d: long;
            var R: matrix[double] = matrix();
            for i = 0, d-1 do
              for j = 0, d-1 do {
                R[i, j] := 0.0;
                for k = 0, d-1 do
                  R[i, j] += M[i, k] * N[k, j];
              };
        "#;
        analyzed(src).unwrap();
    }

    #[test]
    fn rejects_stencil_recurrence() {
        // for i do V[i] := (V[i-1] + V[i+1]) / 2 — V read and written (§3.2).
        let src = r#"
            input V: vector[double];
            input n: long;
            for i = 1, n-2 do
              V[i] := (V[i-1] + V[i+1]) / 2.0;
        "#;
        let err = analyzed(src).unwrap_err();
        assert!(err.message.contains("dependence"), "{err}");
    }

    #[test]
    fn accepts_two_pass_stencil_rewrite() {
        // The paper's rewrite: copy into V2 first, then read V2.
        let src = r#"
            input V: vector[double];
            input n: long;
            var V2: vector[double] = vector();
            for i = 0, n-1 do V2[i] := V[i];
            for i = 1, n-2 do V[i] := (V2[i-1] + V2[i+1]) / 2.0;
        "#;
        analyzed(src).unwrap();
    }

    #[test]
    fn rejects_scalar_temporary_in_loop() {
        // for i do { n := V[i]; W[i] := n } — n is not affine (§3.2).
        let src = r#"
            input V: vector[double];
            var n: double = 0.0;
            var W: vector[double] = vector();
            for i = 0, 9 do {
                n := V[i];
                W[i] := n + 1.0;
            };
        "#;
        let err = analyzed(src).unwrap_err();
        assert!(err.message.contains("not affine"), "{err}");
    }

    #[test]
    fn accepts_vectorized_temporary() {
        // The paper's fix: n becomes a vector n[i].
        let src = r#"
            input V: vector[double];
            var n: vector[double] = vector();
            var W: vector[double] = vector();
            for i = 0, 9 do {
                n[i] := V[i];
                W[i] := n[i] + 1.0;
            };
        "#;
        analyzed(src).unwrap();
    }

    #[test]
    fn accepts_increment_then_read_per_paper_example() {
        // for i { for j { V[i] += 1 }; W[i] := V[i] } — exception (b).
        let src = r#"
            var V: vector[long] = vector();
            var W: vector[long] = vector();
            for i = 0, 9 do {
                for j = 0, 9 do V[i] += 1;
                W[i] := V[i];
            };
        "#;
        analyzed(src).unwrap();
    }

    #[test]
    fn rejects_increment_read_violating_context_condition() {
        // M[i, j] := V[i] inside the j-loop: contexts intersect at {i, j}
        // but indexes(V[i]) = {i} — violates exception (b).
        let src = r#"
            var V: vector[long] = vector();
            var M: matrix[long] = matrix();
            for i = 0, 9 do
                for j = 0, 9 do {
                    V[i] += 1;
                    M[i, j] := V[i];
                };
        "#;
        let err = analyzed(src).unwrap_err();
        assert!(err.message.contains("dependence"), "{err}");
    }

    #[test]
    fn rejects_scalar_destination_under_loop() {
        // pq := 0.0 inside the loops of matrix factorization (§3.2).
        let src = r#"
            input R: matrix[double];
            var pq: double = 0.0;
            for i = 0, 9 do
              for j = 0, 9 do
                pq := 0.0;
        "#;
        let err = analyzed(src).unwrap_err();
        assert!(err.message.contains("not affine"), "{err}");
    }

    #[test]
    fn accepts_group_by_style_increment() {
        // Arbitrary destination index is fine for increments.
        let src = r#"
            input V: vector[<|K: long, D: long|>];
            var C: vector[long] = vector();
            for i = 0, 99 do C[V[i].K] += V[i].D;
        "#;
        analyzed(src).unwrap();
    }

    #[test]
    fn rejects_increment_of_array_read_in_same_loop() {
        // V[W[i]] += V[i]: V is both incremented (at an arbitrary index)
        // and read.
        let src = r#"
            input W: vector[long];
            var V: vector[long] = vector();
            for i = 0, 9 do V[W[i]] += V[i];
        "#;
        let err = analyzed(src).unwrap_err();
        assert!(err.message.contains("dependence"), "{err}");
    }

    #[test]
    fn rejects_write_and_increment_at_different_locations() {
        let src = r#"
            var V: vector[long] = vector();
            for i = 0, 9 do {
                V[i] := 0;
                V[i+1] += 1;
            };
        "#;
        let err = analyzed(src).unwrap_err();
        assert!(err.message.contains("different locations"), "{err}");
    }

    #[test]
    fn accepts_zero_then_accumulate() {
        let src = r#"
            var V: vector[long] = vector();
            for i = 0, 9 do {
                V[i] := 0;
                V[i] += 1;
            };
        "#;
        analyzed(src).unwrap();
    }

    #[test]
    fn rejects_while_inside_for() {
        let src = r#"
            var V: vector[long] = vector();
            var k: long = 0;
            for i = 0, 9 do
                while (k < 3) k += 1;
        "#;
        let err = analyzed(src).unwrap_err();
        assert!(err.message.contains("while"), "{err}");
    }

    #[test]
    fn affine_expressions() {
        let src = r#"
            input n: long;
            input V: vector[long];
            var W: vector[long] = vector();
            for i = 0, 9 do W[2*i + n] := V[i];
        "#;
        analyzed(src).unwrap();
        // i*i is not affine.
        let bad = r#"
            input V: vector[long];
            var W: vector[long] = vector();
            for i = 0, 9 do W[i*i] := V[i];
        "#;
        assert!(analyzed(bad).is_err());
    }

    #[test]
    fn rejects_non_affine_write_in_for_in() {
        // A non-incremental update keyed on the element value may collide.
        let src = r#"
            input V: vector[long];
            var W: vector[long] = vector();
            for v in V do W[v] := 1;
        "#;
        let err = analyzed(src).unwrap_err();
        assert!(err.message.contains("not affine"), "{err}");
    }

    #[test]
    fn accepts_increment_in_for_in() {
        let src = r#"
            input V: vector[long];
            var W: vector[long] = vector();
            for v in V do W[v] += 1;
        "#;
        analyzed(src).unwrap();
    }

    #[test]
    fn multi_reports_every_violation_with_pair_spans() {
        // Three independent faults: a non-affine write (restriction 1), a
        // stencil dependence (restriction 2), and a write/increment pair at
        // different locations (soundness patch).
        let src = r#"
            input V: vector[double];
            var s: double = 0.0;
            var W: vector[double] = vector();
            for i = 0, 9 do s := V[i];
            for i = 0, 9 do V[i] := V[i-1];
            for i = 0, 9 do {
                W[i] := 0.0;
                W[i+1] += 1.0;
            };
        "#;
        let tp = typecheck(parse(src).unwrap()).unwrap();
        let mut diags = diablo_diag::Diagnostics::new();
        check_restrictions_multi(&tp, &mut diags);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&diablo_diag::codes::NOT_AFFINE), "{codes:?}");
        assert!(codes.contains(&diablo_diag::codes::DEPENDENCE), "{codes:?}");
        assert!(
            codes.contains(&diablo_diag::codes::WRITE_AGGREGATE),
            "{codes:?}"
        );
        assert_eq!(diags.error_count(), 3, "{:?}", diags.into_vec());
    }

    #[test]
    fn multi_conflict_pairs_carry_both_spans() {
        let src = r#"
            var V: vector[long] = vector();
            for i = 0, 9 do {
                V[i] := 0;
                V[i+1] += 1;
            };
        "#;
        let tp = typecheck(parse(src).unwrap()).unwrap();
        let mut diags = diablo_diag::Diagnostics::new();
        check_restrictions_multi(&tp, &mut diags);
        let d = diags
            .iter()
            .find(|d| d.code == diablo_diag::codes::WRITE_AGGREGATE)
            .expect("write/aggregate conflict");
        assert_eq!(d.span.line, 5, "primary on the later statement: {d:?}");
        assert_eq!(
            d.labels.len(),
            1,
            "secondary on the earlier statement: {d:?}"
        );
        assert_eq!(d.labels[0].0.line, 4, "{d:?}");
    }

    #[test]
    fn multi_first_error_matches_fail_fast() {
        let src = r#"
            input V: vector[double];
            var s: double = 0.0;
            for i = 0, 9 do s := V[i];
            for i = 0, 9 do V[i] := V[i-1];
        "#;
        let tp = typecheck(parse(src).unwrap()).unwrap();
        let err = check_restrictions(&tp).unwrap_err();
        let mut diags = diablo_diag::Diagnostics::new();
        check_restrictions_multi(&tp, &mut diags);
        let first = diags.first_error().unwrap();
        assert_eq!(first.message, err.message);
        assert_eq!(
            (first.span.line, first.span.col),
            (err.span.line, err.span.col)
        );
    }

    #[test]
    fn aggregate_aggregate_conflict_names_both_locations() {
        let src = r#"
            var V: vector[long] = vector();
            for i = 0, 9 do {
                V[i] += 1;
                V[i+1] *= 2;
            };
        "#;
        let tp = typecheck(parse(src).unwrap()).unwrap();
        let err = check_restrictions(&tp).unwrap_err();
        assert!(err.message.contains("different locations"), "{err}");
        assert!(err.message.contains("first increment at 4:"), "{err}");
    }

    #[test]
    fn accepts_matrix_factorization_shape() {
        // The rectified §3.2 program with pq and error as matrices.
        let src = r#"
            input R: matrix[double];
            input P0: matrix[double];
            input Q0: matrix[double];
            input n: long; input m: long; input l: long;
            input a: double; input b: double;
            var P: matrix[double] = matrix();
            var Q: matrix[double] = matrix();
            var pq: matrix[double] = matrix();
            var err: matrix[double] = matrix();
            for i = 0, n-1 do
              for j = 0, m-1 do {
                pq[i, j] := 0.0;
                for k = 0, l-1 do
                  pq[i, j] += P0[i, k] * Q0[k, j];
                err[i, j] := R[i, j] - pq[i, j];
                for k = 0, l-1 do {
                  P[i, k] += a * (2.0 * err[i, j] * Q0[k, j] - b * P0[i, k]);
                  Q[k, j] += a * (2.0 * err[i, j] * P0[i, k] - b * Q0[k, j]);
                };
              };
        "#;
        analyzed(src).unwrap();
    }
}
