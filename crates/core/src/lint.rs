//! Program lints: warnings for *accepted* programs.
//!
//! The §3.2 analysis ([`crate::analysis`]) decides whether a loop is
//! parallelizable at all; these passes explain what the accepted program
//! will *cost* and flag likely mistakes:
//!
//! * **D020 shuffle forecast** — an incremental update whose compiled form
//!   still carries a group-by after optimization. Rule (17) eliminates the
//!   group-by when the key is the unique affine destination subscript;
//!   whatever survives re-partitions values by key on every execution.
//! * **D021 non-monoid aggregation** — a self-assignment `x := x - e` /
//!   `x := x / e` whose merge is not associative/commutative, so it can
//!   never become a parallel aggregation.
//! * **D022 unused** — a declared variable or bound input dataset never
//!   referenced by any statement.
//! * **D023 dead store** — a whole-variable assignment overwritten before
//!   the value is ever read.
//! * **D024 bounds** — an affine subscript over a constant-range loop that
//!   provably goes negative.
//! * **D025 row fallback** — a fused chain that is columnar-eligible
//!   except for one opaque expression (a record constructor, bag
//!   aggregation, nested comprehension, …), so the columnar backend
//!   demotes the whole stage to tuple-at-a-time.
//!
//! Lints only run on programs that already passed the restriction checks,
//! so patterns the analysis rejects (e.g. non-monoid updates *inside*
//! for-loops) never reach them.

use std::collections::HashSet;

use diablo_comp::ir::{CExpr, Comprehension, Qual};
use diablo_diag::{codes, Diagnostic, Span};
use diablo_lang::ast::{Const, DeclInit, Expr, Lhs, Stmt};
use diablo_lang::pretty::{pretty_expr, pretty_lhs};
use diablo_lang::types::TypedProgram;
use diablo_runtime::BinOp;

use crate::target::{CompiledProgram, TStmt};

/// Runs every lint pass over an accepted program. `compiled` must be the
/// result of translating `tp`. Diagnostics come back ordered by pass
/// (shuffle forecast, non-monoid, unused, dead store, bounds, row
/// fallback).
pub fn lint_program(tp: &TypedProgram, compiled: &CompiledProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    shuffle_forecast(tp, compiled, &mut out);
    non_monoid(tp, &mut out);
    unused(tp, &mut out);
    dead_stores(tp, &mut out);
    bounds(tp, &mut out);
    row_fallback(tp, compiled, &mut out);
    out
}

// ------------------------------------------------------------- D020

fn shuffle_forecast(tp: &TypedProgram, compiled: &CompiledProgram, out: &mut Vec<Diagnostic>) {
    let mut shuffling: Vec<String> = Vec::new();
    collect_shuffling(&compiled.stmts, &mut shuffling);
    for name in shuffling {
        let incr = find_incr(&tp.program.body, &name);
        let (span, subscript) = match &incr {
            Some((dest, span)) => {
                let idxs: Vec<String> = dest.index_exprs().iter().map(|e| pretty_expr(e)).collect();
                let subscript = if idxs.is_empty() {
                    format!("`{}`", pretty_lhs(dest))
                } else {
                    format!("`[{}]`", idxs.join(", "))
                };
                (*span, subscript)
            }
            None => (Span::SYNTH, "its subscript".to_string()),
        };
        out.push(
            Diagnostic::warning(
                codes::SHUFFLE,
                format!(
                    "update of `{name}` compiles to a group-by shuffle: subscript {subscript} \
                     is not the unique affine key of the enclosing loop, so Rule (17) cannot \
                     eliminate the group-by"
                ),
                span,
            )
            .with_help(
                "every execution re-partitions the aggregated values by key; this is \
                 inherent when grouping by data (word count, histograms) but worth a look \
                 when the subscript could be rewritten to cover the loop indexes",
            ),
        );
    }
}

fn collect_shuffling(stmts: &[TStmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            TStmt::Assign { name, value, .. } => {
                if value.contains_group_by() && !out.contains(name) {
                    out.push(name.clone());
                }
            }
            TStmt::While { cond, body } => {
                if cond.contains_group_by() {
                    out.push("<while condition>".to_string());
                }
                collect_shuffling(body, out);
            }
        }
    }
}

/// Finds the first incremental update of `name` (recursing into loop and
/// branch bodies) so the warning lands on the source statement.
fn find_incr<'a>(stmts: &'a [Stmt], name: &str) -> Option<(&'a Lhs, Span)> {
    for s in stmts {
        let found = match s {
            Stmt::Incr { dest, span, .. } if dest.base_var() == name => Some((dest, *span)),
            Stmt::For { body, .. } | Stmt::ForIn { body, .. } | Stmt::While { body, .. } => {
                find_incr(std::slice::from_ref(body), name)
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => find_incr(std::slice::from_ref(then_branch), name).or_else(|| {
                else_branch
                    .as_deref()
                    .and_then(|e| find_incr(std::slice::from_ref(e), name))
            }),
            Stmt::Block(ss) => find_incr(ss, name),
            _ => None,
        };
        if found.is_some() {
            return found;
        }
    }
    None
}

// ------------------------------------------------------------- D021

fn non_monoid(tp: &TypedProgram, out: &mut Vec<Diagnostic>) {
    visit_stmts(&tp.program.body, &mut |s| {
        let Stmt::Assign { dest, value, span } = s else {
            return;
        };
        let Expr::Bin(op, lhs, rhs) = value else {
            return;
        };
        if !matches!(op, BinOp::Sub | BinOp::Div | BinOp::Mod) {
            return;
        }
        let self_ref = |e: &Expr| matches!(e, Expr::Dest(d) if d == dest);
        if !self_ref(lhs) && !self_ref(rhs) {
            return;
        }
        let d = pretty_lhs(dest);
        let sym = match op {
            BinOp::Sub => "-",
            BinOp::Div => "/",
            _ => "%",
        };
        let mut diag = Diagnostic::warning(
            codes::NON_MONOID,
            format!(
                "`{d} := {d} {sym} ...`-style update: `{sym}` is not \
                 associative/commutative, so this cannot become a parallel aggregation"
            ),
            *span,
        );
        if *op == BinOp::Sub {
            diag = diag.with_help(format!(
                "rewrite as `{d} += -(...)` so the merge is a commutative sum"
            ));
        }
        out.push(diag);
    });
}

// ------------------------------------------------------------- D022

fn unused(tp: &TypedProgram, out: &mut Vec<Diagnostic>) {
    // A name is used when any statement reads it or writes it (writing an
    // output *is* its use — results are read by the driver).
    let mut used: HashSet<String> = HashSet::new();
    let mut decl_of: Vec<(String, Span, bool)> = tp
        .program
        .inputs
        .iter()
        .map(|(n, _)| (n.clone(), Span::SYNTH, true))
        .collect();
    visit_stmts(&tp.program.body, &mut |s| {
        match s {
            Stmt::Decl {
                name, span, init, ..
            } => {
                decl_of.push((name.clone(), *span, false));
                if let DeclInit::Expr(e) = init {
                    mark_expr(e, &mut used);
                }
            }
            Stmt::Assign { dest, value, .. } | Stmt::Incr { dest, value, .. } => {
                used.insert(dest.base_var().to_string());
                for e in dest.index_exprs() {
                    mark_expr(e, &mut used);
                }
                mark_expr(value, &mut used);
            }
            Stmt::For { lo, hi, .. } => {
                mark_expr(lo, &mut used);
                mark_expr(hi, &mut used);
            }
            Stmt::ForIn { source, .. } => mark_expr(source, &mut used),
            Stmt::While { cond, .. } | Stmt::If { cond, .. } => mark_expr(cond, &mut used),
            Stmt::Block(_) => {}
        };
    });
    for (name, span, is_input) in decl_of {
        if !used.contains(&name) {
            let what = if is_input {
                "input dataset"
            } else {
                "variable"
            };
            out.push(
                Diagnostic::warning(
                    codes::UNUSED,
                    format!("{what} `{name}` is never used"),
                    span,
                )
                .with_help("remove the declaration, or wire it into the computation"),
            );
        }
    }
}

fn mark_expr(e: &Expr, used: &mut HashSet<String>) {
    let mut vars = Vec::new();
    e.free_vars(&mut vars);
    used.extend(vars);
    let mut dests = Vec::new();
    e.destinations(&mut dests);
    for d in dests {
        used.insert(d.base_var().to_string());
    }
}

// ------------------------------------------------------------- D023

fn dead_stores(tp: &TypedProgram, out: &mut Vec<Diagnostic>) {
    dead_stores_seq(&tp.program.body, out);
    // Straight-line sequences also occur inside blocks; control-flow bodies
    // are scanned as their own sequences.
    visit_blocks(&tp.program.body, &mut |ss| dead_stores_seq(ss, out));
}

fn dead_stores_seq(stmts: &[Stmt], out: &mut Vec<Diagnostic>) {
    for (i, s) in stmts.iter().enumerate() {
        let (name, span) = match s {
            Stmt::Assign {
                dest: Lhs::Var(v),
                span,
                ..
            } => (v, *span),
            _ => continue,
        };
        for later in &stmts[i + 1..] {
            match later {
                // A later whole-variable overwrite whose value doesn't read
                // the variable: the earlier store is dead.
                Stmt::Assign {
                    dest: Lhs::Var(v),
                    value,
                    span: kill_span,
                    ..
                } if v == name => {
                    if !reads_var(value, name) {
                        out.push(
                            Diagnostic::warning(
                                codes::DEAD_STORE,
                                format!(
                                    "value assigned to `{name}` is overwritten before it is \
                                     ever read"
                                ),
                                span,
                            )
                            .with_label(*kill_span, format!("`{name}` is overwritten here")),
                        );
                    }
                    break;
                }
                // Any other statement that might read the variable — or any
                // control flow, treated conservatively as a read — keeps the
                // store alive.
                other => {
                    if stmt_may_read(other, name) {
                        break;
                    }
                }
            }
        }
    }
}

fn stmt_may_read(s: &Stmt, name: &str) -> bool {
    match s {
        Stmt::Assign { dest, value, .. } | Stmt::Incr { dest, value, .. } => {
            reads_var(value, name)
                || dest.index_exprs().iter().any(|e| reads_var(e, name))
                || (dest.base_var() == name && !matches!(dest, Lhs::Var(_)))
                || matches!(s, Stmt::Incr { .. }) && dest.base_var() == name
        }
        Stmt::Decl {
            init: DeclInit::Expr(e),
            ..
        } => reads_var(e, name),
        Stmt::Decl { .. } => false,
        // Control flow: conservatively a read (the body may use it any
        // number of iterations later).
        Stmt::For { .. } | Stmt::ForIn { .. } | Stmt::While { .. } | Stmt::If { .. } => true,
        Stmt::Block(_) => true,
    }
}

fn reads_var(e: &Expr, name: &str) -> bool {
    let mut vars = Vec::new();
    e.free_vars(&mut vars);
    if vars.iter().any(|v| v == name) {
        return true;
    }
    let mut dests = Vec::new();
    e.destinations(&mut dests);
    dests.iter().any(|d| d.base_var() == name)
}

// ------------------------------------------------------------- D024

#[derive(Clone, Copy)]
struct Interval {
    lo: i64,
    hi: i64,
}

fn bounds(tp: &TypedProgram, out: &mut Vec<Diagnostic>) {
    bounds_walk(&tp.program.body, &mut Vec::new(), out);
}

/// `ranges` holds `(loop var, interval)` for enclosing constant-range
/// for-loops.
fn bounds_walk(stmts: &[Stmt], ranges: &mut Vec<(String, Interval)>, out: &mut Vec<Diagnostic>) {
    for s in stmts {
        match s {
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                let range = match (const_long(lo), const_long(hi)) {
                    (Some(lo), Some(hi)) if lo <= hi => Some(Interval { lo, hi }),
                    _ => None,
                };
                let pushed = range.is_some();
                if let Some(r) = range {
                    ranges.push((var.clone(), r));
                }
                bounds_walk(std::slice::from_ref(body), ranges, out);
                if pushed {
                    ranges.pop();
                }
            }
            Stmt::ForIn { body, .. } | Stmt::While { body, .. } => {
                bounds_walk(std::slice::from_ref(body), ranges, out);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                bounds_walk(std::slice::from_ref(then_branch), ranges, out);
                if let Some(e) = else_branch {
                    bounds_walk(std::slice::from_ref(e), ranges, out);
                }
            }
            Stmt::Block(ss) => bounds_walk(ss, ranges, out),
            Stmt::Assign { dest, span, .. } | Stmt::Incr { dest, span, .. } => {
                for idx in dest.index_exprs() {
                    let Some(iv) = interval_of(idx, ranges) else {
                        continue;
                    };
                    if iv.hi < 0 {
                        out.push(Diagnostic::warning(
                            codes::BOUNDS,
                            format!(
                                "subscript `{}` of `{}` is always negative (range [{}, {}])",
                                pretty_expr(idx),
                                dest.base_var(),
                                iv.lo,
                                iv.hi
                            ),
                            *span,
                        ));
                    } else if iv.lo < 0 {
                        out.push(Diagnostic::warning(
                            codes::BOUNDS,
                            format!(
                                "subscript `{}` of `{}` can be negative (range [{}, {}]) for \
                                 some iterations of the enclosing constant-range loop",
                                pretty_expr(idx),
                                dest.base_var(),
                                iv.lo,
                                iv.hi
                            ),
                            *span,
                        ));
                    }
                }
            }
            Stmt::Decl { .. } => {}
        }
    }
}

fn const_long(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(Const::Long(n)) => Some(*n),
        Expr::Un(diablo_runtime::UnOp::Neg, a) => const_long(a).map(|n| -n),
        Expr::Bin(op, a, b) => {
            let (a, b) = (const_long(a)?, const_long(b)?);
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Interval-evaluates an affine subscript over the constant loop ranges.
/// Returns `None` when the expression mentions anything with an unknown
/// range.
fn interval_of(e: &Expr, ranges: &[(String, Interval)]) -> Option<Interval> {
    match e {
        Expr::Const(Const::Long(n)) => Some(Interval { lo: *n, hi: *n }),
        Expr::Dest(Lhs::Var(v)) => ranges.iter().find(|(n, _)| n == v).map(|(_, iv)| *iv),
        Expr::Un(diablo_runtime::UnOp::Neg, a) => {
            let iv = interval_of(a, ranges)?;
            Some(Interval {
                lo: iv.hi.checked_neg()?,
                hi: iv.lo.checked_neg()?,
            })
        }
        Expr::Bin(BinOp::Add, a, b) => {
            let (a, b) = (interval_of(a, ranges)?, interval_of(b, ranges)?);
            Some(Interval {
                lo: a.lo.checked_add(b.lo)?,
                hi: a.hi.checked_add(b.hi)?,
            })
        }
        Expr::Bin(BinOp::Sub, a, b) => {
            let (a, b) = (interval_of(a, ranges)?, interval_of(b, ranges)?);
            Some(Interval {
                lo: a.lo.checked_sub(b.hi)?,
                hi: a.hi.checked_sub(b.lo)?,
            })
        }
        Expr::Bin(BinOp::Mul, a, b) => {
            let (a, b) = (interval_of(a, ranges)?, interval_of(b, ranges)?);
            let corners = [
                a.lo.checked_mul(b.lo)?,
                a.lo.checked_mul(b.hi)?,
                a.hi.checked_mul(b.lo)?,
                a.hi.checked_mul(b.hi)?,
            ];
            Some(Interval {
                lo: *corners.iter().min().expect("non-empty"),
                hi: *corners.iter().max().expect("non-empty"),
            })
        }
        _ => None,
    }
}

// ------------------------------------------------------------- D025

/// True when a comprehension-calculus expression lowers to the engine's
/// transparent `RowExpr` IR (mirrors the exec crate's `to_row_expr`):
/// arithmetic, comparisons, builtin calls, tuples, and projections over
/// variables and constants. Record construction, bag aggregations, nested
/// comprehensions, merges, and ranges stay opaque closures.
fn columnar_convertible(e: &CExpr) -> bool {
    match e {
        CExpr::Var(_) | CExpr::Const(_) => true,
        CExpr::Bin(_, a, b) => columnar_convertible(a) && columnar_convertible(b),
        CExpr::Un(_, a) | CExpr::Proj(a, _) => columnar_convertible(a),
        CExpr::Call(_, args) | CExpr::Tuple(args) => args.iter().all(columnar_convertible),
        CExpr::Record(_)
        | CExpr::Agg(_, _)
        | CExpr::Comp(_)
        | CExpr::Merge { .. }
        | CExpr::Range(_, _) => false,
    }
}

/// Names the first opaque construct inside a non-convertible expression,
/// for the warning text.
fn opaque_kind(e: &CExpr) -> &'static str {
    match e {
        CExpr::Record(_) => "a record constructor",
        CExpr::Agg(_, _) => "a bag aggregation",
        CExpr::Comp(_) => "a nested comprehension",
        CExpr::Merge { .. } => "an array merge",
        CExpr::Range(_, _) => "a range expression",
        CExpr::Bin(_, a, b) => {
            if columnar_convertible(a) {
                opaque_kind(b)
            } else {
                opaque_kind(a)
            }
        }
        CExpr::Un(_, a) | CExpr::Proj(a, _) => opaque_kind(a),
        CExpr::Call(_, args) | CExpr::Tuple(args) => args
            .iter()
            .find(|a| !columnar_convertible(a))
            .map(opaque_kind)
            .unwrap_or("an opaque expression"),
        CExpr::Var(_) | CExpr::Const(_) => "an opaque expression",
    }
}

/// The row-position stages of a comprehension, as the pipeline builder
/// fuses them: conditions, let bindings, and — when no group-by ends the
/// narrow chain — the head map. Aggregation heads behind a group-by are
/// pushed down to a reduce, not run as row stages, so they are excluded.
fn comp_row_stages(c: &Comprehension) -> Vec<(&CExpr, &'static str)> {
    let mut stages = Vec::new();
    for q in &c.quals {
        match q {
            Qual::Pred(e) => stages.push((e, "a condition")),
            Qual::Let(_, e) => stages.push((e, "a let binding")),
            Qual::GroupBy(_, _) => return stages,
            Qual::Gen(_, _) => {}
        }
    }
    stages.push((&*c.head, "the head"));
    stages
}

/// Visits every comprehension inside an expression, outermost first.
fn visit_comps(e: &CExpr, f: &mut dyn FnMut(&Comprehension)) {
    match e {
        CExpr::Comp(c) => {
            f(c);
            for q in &c.quals {
                match q {
                    Qual::Gen(_, d) | Qual::Let(_, d) | Qual::Pred(d) | Qual::GroupBy(_, d) => {
                        visit_comps(d, f)
                    }
                }
            }
            visit_comps(&c.head, f);
        }
        CExpr::Bin(_, a, b) | CExpr::Range(a, b) => {
            visit_comps(a, f);
            visit_comps(b, f);
        }
        CExpr::Un(_, a) | CExpr::Proj(a, _) | CExpr::Agg(_, a) => visit_comps(a, f),
        CExpr::Call(_, args) | CExpr::Tuple(args) => {
            for a in args {
                visit_comps(a, f);
            }
        }
        CExpr::Record(fs) => {
            for (_, a) in fs {
                visit_comps(a, f);
            }
        }
        CExpr::Merge { left, right, .. } => {
            visit_comps(left, f);
            visit_comps(right, f);
        }
        CExpr::Var(_) | CExpr::Const(_) => {}
    }
}

/// Finds the span of the first source statement writing `name`, so the
/// warning lands on the assignment whose chain falls back.
fn find_write(stmts: &[Stmt], name: &str) -> Option<Span> {
    for s in stmts {
        let found = match s {
            Stmt::Assign { dest, span, .. } | Stmt::Incr { dest, span, .. }
                if dest.base_var() == name =>
            {
                Some(*span)
            }
            Stmt::For { body, .. } | Stmt::ForIn { body, .. } | Stmt::While { body, .. } => {
                find_write(std::slice::from_ref(body), name)
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => find_write(std::slice::from_ref(then_branch), name).or_else(|| {
                else_branch
                    .as_deref()
                    .and_then(|e| find_write(std::slice::from_ref(e), name))
            }),
            Stmt::Block(ss) => find_write(ss, name),
            _ => None,
        };
        if found.is_some() {
            return found;
        }
    }
    None
}

fn row_fallback(tp: &TypedProgram, compiled: &CompiledProgram, out: &mut Vec<Diagnostic>) {
    let mut assigns: Vec<(&String, &CExpr)> = Vec::new();
    collect_assign_values(&compiled.stmts, &mut assigns);
    let mut warned: HashSet<&String> = HashSet::new();
    for (name, value) in assigns {
        if warned.contains(name) {
            continue;
        }
        let mut hit: Option<(&'static str, &'static str)> = None;
        visit_comps(value, &mut |c| {
            if hit.is_some() {
                return;
            }
            // Only comprehensions that scan a collection become engine
            // stages; driver-side wrappers around scalars always contain
            // nested comps and would drown the lint in noise.
            let scans_collection = c
                .quals
                .iter()
                .any(|q| matches!(q, Qual::Gen(_, CExpr::Var(v)) if compiled.is_collection(v)));
            if !scans_collection {
                return;
            }
            let stages = comp_row_stages(c);
            let opaque = stages.iter().find(|(e, _)| !columnar_convertible(e));
            let any_convertible = stages.iter().any(|(e, _)| columnar_convertible(e));
            if let Some((e, what)) = opaque {
                if any_convertible {
                    hit = Some((opaque_kind(e), *what));
                }
            }
        });
        let Some((kind, what)) = hit else { continue };
        warned.insert(name);
        let span = find_write(&tp.program.body, name).unwrap_or(Span::SYNTH);
        out.push(
            Diagnostic::warning(
                codes::ROW_FALLBACK,
                format!(
                    "under the columnar backend, the fused chain computing `{name}` falls \
                     back to tuple-at-a-time: {what} contains {kind}, which has no columnar \
                     form, while the rest of the chain is vectorizable"
                ),
                span,
            )
            .with_help(
                "the stage still runs (row path; reported as `row_fallback_stages` in the \
                 run stats and as `layout: row` in the plan trace); rewrite the opaque \
                 expression with arithmetic/tuple/projection forms if scan performance \
                 matters",
            ),
        );
    }
}

/// Collects `(name, value)` for every assignment, recursing into while
/// bodies.
fn collect_assign_values<'a>(stmts: &'a [TStmt], out: &mut Vec<(&'a String, &'a CExpr)>) {
    for s in stmts {
        match s {
            TStmt::Assign { name, value, .. } => out.push((name, value)),
            TStmt::While { body, .. } => collect_assign_values(body, out),
        }
    }
}

// ------------------------------------------------------------- traversal

fn visit_stmts(stmts: &[Stmt], f: &mut dyn FnMut(&Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::For { body, .. } | Stmt::ForIn { body, .. } | Stmt::While { body, .. } => {
                visit_stmts(std::slice::from_ref(body), f)
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit_stmts(std::slice::from_ref(then_branch), f);
                if let Some(e) = else_branch {
                    visit_stmts(std::slice::from_ref(e), f);
                }
            }
            Stmt::Block(ss) => visit_stmts(ss, f),
            _ => {}
        }
    }
}

fn visit_blocks(stmts: &[Stmt], f: &mut dyn FnMut(&[Stmt])) {
    for s in stmts {
        match s {
            Stmt::For { body, .. } | Stmt::ForIn { body, .. } | Stmt::While { body, .. } => {
                visit_blocks(std::slice::from_ref(body), f)
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit_blocks(std::slice::from_ref(then_branch), f);
                if let Some(e) = else_branch {
                    visit_blocks(std::slice::from_ref(e), f);
                }
            }
            Stmt::Block(ss) => {
                f(ss);
                visit_blocks(ss, f);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_lang::{parse, typecheck};

    fn lints(src: &str) -> Vec<Diagnostic> {
        let tp = typecheck(parse(src).unwrap()).unwrap();
        crate::check_restrictions(&tp).unwrap();
        let compiled = crate::translate(&tp).unwrap();
        lint_program(&tp, &compiled)
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn shuffle_forecast_fires_on_group_by_key() {
        // C's subscript is data (V[i].K), not the loop index — Rule (17)
        // does not apply, so the group-by survives and shuffles.
        let src = r#"
            input V: vector[<|K: long, A: double|>];
            var C: vector[double] = vector();
            for i = 0, 99 do C[V[i].K] += V[i].A;
        "#;
        let diags = lints(src);
        assert!(codes_of(&diags).contains(&codes::SHUFFLE), "{diags:?}");
        let d = diags.iter().find(|d| d.code == codes::SHUFFLE).unwrap();
        assert!(d.message.contains("`C`"), "{}", d.message);
        assert!(d.message.contains("V[i].K"), "{}", d.message);
        assert!(d.span.line > 0, "span must point at the increment");
    }

    #[test]
    fn shuffle_forecast_silent_on_affine_key() {
        // W[i] += V[i]: the group-by key is the unique affine subscript —
        // Rule (17) eliminates it, no shuffle.
        let src = r#"
            input V: vector[double];
            var W: vector[double] = vector();
            for i = 0, 99 do W[i] += V[i];
        "#;
        let diags = lints(src);
        assert!(!codes_of(&diags).contains(&codes::SHUFFLE), "{diags:?}");
    }

    #[test]
    fn non_monoid_fires_on_subtraction() {
        let src = r#"
            var x: long = 10;
            var k: long = 0;
            while (k < 3) { x := x - 2; k += 1; };
        "#;
        let diags = lints(src);
        let d = diags.iter().find(|d| d.code == codes::NON_MONOID).unwrap();
        assert!(d.message.contains('-'), "{}", d.message);
        assert!(
            d.help.as_deref().unwrap_or("").contains("+= -"),
            "{:?}",
            d.help
        );
    }

    #[test]
    fn non_monoid_silent_on_commutative() {
        // `x := x + 1` desugars to `x += 1` in the parser; division by a
        // fresh variable is flagged.
        let src = "var x: long = 1; x := x / 2;";
        let diags = lints(src);
        assert!(codes_of(&diags).contains(&codes::NON_MONOID), "{diags:?}");
    }

    #[test]
    fn unused_fires_on_dead_input_and_var() {
        let src = r#"
            input V: vector[double];
            input W: vector[double];
            var sum: double = 0.0;
            var ghost: long = 0;
            for v in V do sum += v;
        "#;
        let diags = lints(src);
        let unused: Vec<&str> = diags
            .iter()
            .filter(|d| d.code == codes::UNUSED)
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(unused.len(), 2, "{diags:?}");
        assert!(unused.iter().any(|m| m.contains("`W`")), "{unused:?}");
        assert!(unused.iter().any(|m| m.contains("`ghost`")), "{unused:?}");
    }

    #[test]
    fn unused_silent_on_pure_outputs() {
        // `C` is only ever written — that's an output, not dead code.
        let src = r#"
            input V: vector[long];
            var C: vector[long] = vector();
            for v in V do C[v] += 1;
        "#;
        let diags = lints(src);
        assert!(!codes_of(&diags).contains(&codes::UNUSED), "{diags:?}");
    }

    #[test]
    fn dead_store_fires_on_overwrite() {
        let src = r#"
            var x: long = 0;
            x := 1;
            x := 2;
            x += 1;
        "#;
        let diags = lints(src);
        let d = diags.iter().find(|d| d.code == codes::DEAD_STORE).unwrap();
        assert_eq!(d.span.line, 3, "{d:?}");
        assert_eq!(d.labels.len(), 1, "{d:?}");
    }

    #[test]
    fn dead_store_silent_when_read_between() {
        let src = r#"
            var x: long = 0;
            var y: long = 0;
            x := 1;
            y := x + 1;
            x := 2;
            y += x;
        "#;
        let diags = lints(src);
        assert!(!codes_of(&diags).contains(&codes::DEAD_STORE), "{diags:?}");
    }

    #[test]
    fn bounds_fires_on_negative_subscript() {
        let src = r#"
            input V: vector[long];
            var W: vector[long] = vector();
            for i = 0, 9 do W[i - 10] := V[i];
        "#;
        let diags = lints(src);
        let d = diags.iter().find(|d| d.code == codes::BOUNDS).unwrap();
        assert!(d.message.contains("always negative"), "{}", d.message);
    }

    #[test]
    fn bounds_warns_on_possibly_negative_subscript() {
        let src = r#"
            input V: vector[long];
            var W: vector[long] = vector();
            for i = 0, 9 do W[i - 1] := V[i];
        "#;
        let diags = lints(src);
        let d = diags.iter().find(|d| d.code == codes::BOUNDS).unwrap();
        assert!(d.message.contains("can be negative"), "{}", d.message);
    }

    #[test]
    fn row_fallback_fires_on_record_head_in_vectorizable_chain() {
        // The head builds a record — opaque to the columnar engine — while
        // the rest of the chain (scan + join conditions) is transparent.
        let src = r#"
            input V: vector[double];
            var W: vector[<|a: double|>] = vector();
            for i = 0, 99 do W[i] := <| a = V[i] * 2.0 |>;
        "#;
        let diags = lints(src);
        let d = diags
            .iter()
            .find(|d| d.code == codes::ROW_FALLBACK)
            .unwrap_or_else(|| panic!("{diags:?}"));
        assert!(d.message.contains("`W`"), "{}", d.message);
        assert!(d.message.contains("record constructor"), "{}", d.message);
        assert!(d.span.line > 0, "span must point at the assignment");
        assert!(
            d.help
                .as_deref()
                .unwrap_or("")
                .contains("row_fallback_stages"),
            "{:?}",
            d.help
        );
    }

    #[test]
    fn row_fallback_silent_on_fully_transparent_chain() {
        let src = r#"
            input V: vector[double];
            var W: vector[double] = vector();
            for i = 0, 99 do W[i] := V[i] * 2.0 + 1.0;
        "#;
        let diags = lints(src);
        assert!(
            !codes_of(&diags).contains(&codes::ROW_FALLBACK),
            "{diags:?}"
        );
    }

    #[test]
    fn row_fallback_silent_on_group_by_aggregation() {
        // Word-count-style: the aggregation head sits behind a group-by and
        // is pushed down to a reduce, not run as a row stage.
        let src = r#"
            input V: vector[long];
            var C: vector[long] = vector();
            for i = 0, 99 do C[V[i]] += 1;
        "#;
        let diags = lints(src);
        assert!(
            !codes_of(&diags).contains(&codes::ROW_FALLBACK),
            "{diags:?}"
        );
    }

    #[test]
    fn bounds_silent_on_nonconstant_ranges() {
        let src = r#"
            input V: vector[long];
            input n: long;
            var W: vector[long] = vector();
            for i = 1, n-2 do W[i - 1] := V[i];
        "#;
        let diags = lints(src);
        assert!(!codes_of(&diags).contains(&codes::BOUNDS), "{diags:?}");
    }
}
