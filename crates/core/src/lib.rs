//! # diablo-core
//!
//! The DIABLO translator — the paper's primary contribution. It turns an
//! imperative array-based loop program into target code over monoid
//! comprehensions that a DISC engine can run in bulk:
//!
//! 1. [`analysis`] checks the parallelization restrictions of §3.2
//!    (Definition 3.1) — affine destinations and the absence of
//!    loop-carried dependences beyond the two sanctioned exceptions;
//! 2. [`translate`] applies the rules of Fig. 2: for-loops dissolve into
//!    comprehension generators, incremental updates `d ⊕= e` become
//!    group-bys over the destination index with `⊕`-aggregations, and
//!    plain updates become bulk array merges `V ⊳ x`;
//! 3. the comprehension optimizer (crate `diablo-comp`) then unnests,
//!    eliminates redundant group-bys (Rules (16)/(17)) and turns
//!    range-joins into array traversals (§3.6).
//!
//! The one-call entry point is [`compile`].

pub mod analysis;
pub mod lint;
pub mod target;
pub mod translate;

pub use analysis::{check_restrictions, check_restrictions_multi};
pub use lint::lint_program;
pub use target::{lazy_assignments, preorder_len, CompiledProgram, TStmt};
pub use translate::translate;

use diablo_diag::{codes, Diagnostics};
use diablo_lang::{parse, parse_multi, typecheck, typecheck_multi, LangError, TypedProgram};

/// Compiles loop-based source text to target code: parse → type check →
/// restriction check → translate → optimize.
///
/// # Errors
///
/// Returns the first front-end error: a syntax error, a type error, or a
/// violation of the Definition 3.1 restrictions (with the paper-style
/// explanation of which restriction failed).
///
/// # Example
///
/// ```
/// let compiled = diablo_core::compile(
///     "input V: vector[double];
///      var sum: double = 0.0;
///      for v in V do sum += v;",
/// )
/// .unwrap();
/// assert_eq!(compiled.stmts.len(), 2);
/// ```
pub fn compile(src: &str) -> Result<CompiledProgram, LangError> {
    let program = parse(src)?;
    let tp = typecheck(program)?;
    check_restrictions(&tp)?;
    translate(&tp)
}

/// Runs the whole front end, accumulating *every* error (syntax, type, and
/// §3.2 restriction violations) into `diags` instead of stopping at the
/// first. Later phases only run when the earlier ones succeeded: type
/// errors are only reported for programs that parse, and restriction
/// violations only for programs that type check.
///
/// Returns the typed program and its compiled form when the program is
/// clean (warnings may still have been emitted by callers).
pub fn compile_multi(
    src: &str,
    diags: &mut Diagnostics,
) -> Option<(TypedProgram, CompiledProgram)> {
    let program = parse_multi(src, diags)?;
    let tp = typecheck_multi(program, diags)?;
    let before = diags.error_count();
    check_restrictions_multi(&tp, diags);
    if diags.error_count() > before {
        return None;
    }
    match translate(&tp) {
        Ok(compiled) => Some((tp, compiled)),
        Err(e) => {
            diags.emit(e.into_diagnostic(codes::TYPE));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_rejects_bad_programs_with_context() {
        let err = compile(
            "input V: vector[double];
             input n: long;
             for i = 1, n-2 do V[i] := (V[i-1] + V[i+1]) / 2.0;",
        )
        .unwrap_err();
        assert!(err.message.contains("dependence"), "{err}");
    }

    #[test]
    fn compile_accepts_the_intro_example() {
        let compiled = compile(
            "input A: vector[<|K: long, V: double|>];
             var C: vector[double] = vector();
             for i = 0, 9 do C[A[i].K] += A[i].V;",
        )
        .unwrap();
        assert!(compiled.is_collection("C"));
        assert!(!compiled.is_collection("i"));
        assert_eq!(compiled.inputs.len(), 1);
    }
}
