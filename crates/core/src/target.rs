//! The target code of the translation (§3.8).
//!
//! ```text
//! c ::= v := e          assignment (scalar or whole-array, in bulk)
//!     | while(e, c)     sequential loop
//!     | [c1, ..., cn]   code block
//! ```
//!
//! An assignment to a *scalar* variable receives a bag expression of type
//! `{t}`: the driver extracts the single element (an empty bag leaves the
//! variable unchanged — the sparse "missing element" semantics). An
//! assignment to an *array* variable replaces the whole array with a new
//! one, usually a merge `V ⊳ x`.

use diablo_comp::CExpr;
use diablo_lang::Type;

/// One statement of the target language.
#[derive(Debug, Clone, PartialEq)]
pub enum TStmt {
    /// `name := value` — `value` is a comprehension-calculus expression.
    Assign {
        /// Destination variable.
        name: String,
        /// Bag-valued expression for scalars; array-valued for collections.
        value: CExpr,
        /// True when `name` holds a collection (executed on the engine);
        /// false for scalars (the bag's single element is extracted).
        collection: bool,
    },
    /// `while(cond, body)` — `cond` is a bag expression whose single
    /// element must be a boolean.
    While {
        /// Loop condition (lifted to a bag, per E⟦·⟧).
        cond: CExpr,
        /// Loop body.
        body: Vec<TStmt>,
    },
}

/// A compiled program: target statements plus the metadata the driver
/// needs to bind inputs and read results.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Target statements in execution order.
    pub stmts: Vec<TStmt>,
    /// Declared inputs `(name, type)`.
    pub inputs: Vec<(String, Type)>,
    /// The type of every program variable.
    pub var_types: std::collections::HashMap<String, Type>,
}

impl CompiledProgram {
    /// True if the named variable holds a collection.
    pub fn is_collection(&self, name: &str) -> bool {
        self.var_types.get(name).is_some_and(Type::is_collection)
    }

    /// Names of all collection-typed variables.
    pub fn collection_names(&self) -> std::collections::HashSet<String> {
        self.var_types
            .iter()
            .filter(|(_, t)| t.is_collection())
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Total number of target statements (recursing into while bodies).
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[TStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    TStmt::Assign { .. } => 1,
                    TStmt::While { body, .. } => 1 + count(body),
                })
                .sum()
        }
        count(&self.stmts)
    }
}
