//! The target code of the translation (§3.8).
//!
//! ```text
//! c ::= v := e          assignment (scalar or whole-array, in bulk)
//!     | while(e, c)     sequential loop
//!     | [c1, ..., cn]   code block
//! ```
//!
//! An assignment to a *scalar* variable receives a bag expression of type
//! `{t}`: the driver extracts the single element (an empty bag leaves the
//! variable unchanged — the sparse "missing element" semantics). An
//! assignment to an *array* variable replaces the whole array with a new
//! one, usually a merge `V ⊳ x`.

use diablo_comp::CExpr;
use diablo_lang::Type;

/// One statement of the target language.
#[derive(Debug, Clone, PartialEq)]
pub enum TStmt {
    /// `name := value` — `value` is a comprehension-calculus expression.
    Assign {
        /// Destination variable.
        name: String,
        /// Bag-valued expression for scalars; array-valued for collections.
        value: CExpr,
        /// True when `name` holds a collection (executed on the engine);
        /// false for scalars (the bag's single element is extracted).
        collection: bool,
    },
    /// `while(cond, body)` — `cond` is a bag expression whose single
    /// element must be a boolean.
    While {
        /// Loop condition (lifted to a bag, per E⟦·⟧).
        cond: CExpr,
        /// Loop body.
        body: Vec<TStmt>,
    },
}

/// A compiled program: target statements plus the metadata the driver
/// needs to bind inputs and read results.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Target statements in execution order.
    pub stmts: Vec<TStmt>,
    /// Declared inputs `(name, type)`.
    pub inputs: Vec<(String, Type)>,
    /// The type of every program variable.
    pub var_types: std::collections::HashMap<String, Type>,
}

/// Number of pre-order slots a statement list occupies (an `Assign` takes
/// one, a `While` takes one plus its body's). Drivers that execute
/// statements against [`lazy_assignments`] use this to keep loop bodies on
/// stable slot indexes across iterations.
pub fn preorder_len(stmts: &[TStmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            TStmt::Assign { .. } => 1,
            TStmt::While { body, .. } => 1 + preorder_len(body),
        })
        .sum()
}

/// Number of times the statement reads `name`, with multiplicity (a
/// statement mentioning the variable twice derives from it twice).
fn stmt_occurrences(s: &TStmt, name: &str) -> usize {
    match s {
        TStmt::Assign { value, .. } => value.free_occurrences(name),
        TStmt::While { cond, body } => {
            cond.free_occurrences(name)
                + body
                    .iter()
                    .map(|b| stmt_occurrences(b, name))
                    .sum::<usize>()
        }
    }
}

/// True when the statement (re)assigns `name` anywhere.
fn stmt_writes(s: &TStmt, name: &str) -> bool {
    match s {
        TStmt::Assign { name: n, .. } => n == name,
        TStmt::While { body, .. } => body.iter().any(|b| stmt_writes(b, name)),
    }
}

/// Cross-statement fusion eligibility (the dependency analysis behind the
/// lazy `Session`): for every statement, in pre-order, whether a
/// collection assignment may stay **lazy** — keep its plan pending so it
/// fuses into the stage of whatever consumes it, instead of materializing
/// at the assignment.
///
/// An assignment is eligible when its result is read **at most once**
/// downstream before being reassigned (occurrences count with
/// multiplicity: one statement mentioning the variable twice derives two
/// plans from it). With a single consumer,
/// deferring costs nothing and the producer's pending chain fuses across
/// the statement boundary; with several consumers each would re-run the
/// pending chain (plans are captured per derivation, the materialization
/// cache only helps after a force), so those materialize eagerly. A
/// `while` that mentions the variable counts as many consumers (it re-reads
/// every iteration), and statements inside a `while` body are never
/// eligible (per-iteration materialization keeps plans bounded and loop
/// errors local).
pub fn lazy_assignments(stmts: &[TStmt]) -> Vec<bool> {
    fn mark_ineligible(stmts: &[TStmt], out: &mut Vec<bool>) {
        for s in stmts {
            out.push(false);
            if let TStmt::While { body, .. } = s {
                mark_ineligible(body, out);
            }
        }
    }
    let mut out = Vec::with_capacity(preorder_len(stmts));
    for (i, s) in stmts.iter().enumerate() {
        match s {
            TStmt::Assign { name, .. } => {
                let mut consumers = 0usize;
                for later in &stmts[i + 1..] {
                    let occ = stmt_occurrences(later, name);
                    if occ > 0 {
                        consumers += match later {
                            // A while re-reads the variable every iteration.
                            TStmt::While { .. } => occ.max(2),
                            TStmt::Assign { .. } => occ,
                        };
                    }
                    if stmt_writes(later, name) {
                        break; // later uses refer to the new definition
                    }
                }
                out.push(consumers <= 1);
            }
            TStmt::While { body, .. } => {
                out.push(false);
                mark_ineligible(body, &mut out);
            }
        }
    }
    out
}

impl CompiledProgram {
    /// True if the named variable holds a collection.
    pub fn is_collection(&self, name: &str) -> bool {
        self.var_types.get(name).is_some_and(Type::is_collection)
    }

    /// Names of all collection-typed variables.
    pub fn collection_names(&self) -> std::collections::HashSet<String> {
        self.var_types
            .iter()
            .filter(|(_, t)| t.is_collection())
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Total number of target statements (recursing into while bodies).
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[TStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    TStmt::Assign { .. } => 1,
                    TStmt::While { body, .. } => 1 + count(body),
                })
                .sum()
        }
        count(&self.stmts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> CompiledProgram {
        crate::compile(src).expect("compiles")
    }

    #[test]
    fn single_consumer_pipeline_is_lazy() {
        // X feeds exactly one later statement; both final assigns are
        // terminal (zero consumers) and stay lazy too.
        let p = program(
            "input V: vector[long];
             var X: vector[long] = vector();
             var Y: vector[long] = vector();
             for i = 0, 9 do X[i] := V[i] * 2;
             for i = 0, 9 do Y[i] := X[i] + 1;",
        );
        let lazies = lazy_assignments(&p.stmts);
        assert_eq!(lazies.len(), p.statement_count());
        // Statements: X := {}, Y := {}, X := X ⊳ …, Y := Y ⊳ …. Each
        // init is consumed once (by its own reassignment, which also ends
        // the scan), X feeds only Y, and both reassigned arrays are
        // terminal — all four may stay lazy.
        assert_eq!(lazies, vec![true, true, true, true]);
    }

    #[test]
    fn multi_consumer_producer_is_eager() {
        let p = program(
            "input V: vector[long];
             var X: vector[long] = vector();
             var Y: vector[long] = vector();
             var Z: vector[long] = vector();
             for i = 0, 9 do X[i] := V[i] * 2;
             for i = 0, 9 do Y[i] := X[i] + 1;
             for i = 0, 9 do Z[i] := X[i] + 2;",
        );
        let lazies = lazy_assignments(&p.stmts);
        // The X reassignment (slot 3) feeds both Y and Z: eager.
        assert!(!lazies[3], "{lazies:?}");
        // The terminal Y and Z assignments have no consumers: lazy.
        assert!(lazies[4] && lazies[5], "{lazies:?}");
    }

    #[test]
    fn double_read_within_one_statement_is_eager() {
        // Y reads X twice (a stencil shape): each read derives its own
        // plan from X, so X must materialize eagerly.
        let p = program(
            "input V: vector[long];
             var X: vector[long] = vector();
             var Y: vector[long] = vector();
             for i = 0, 9 do X[i] := V[i];
             for i = 1, 8 do Y[i] := X[i-1] + X[i+1];",
        );
        let lazies = lazy_assignments(&p.stmts);
        assert!(!lazies[2], "X is read twice by Y: {lazies:?}");
        assert!(lazies[3], "Y itself is terminal: {lazies:?}");
    }

    #[test]
    fn while_bodies_and_while_read_variables_are_eager() {
        let p = program(
            "var k: long = 0;
             var total: long = 0;
             while (k < 5) { k += 1; total += k; };",
        );
        let lazies = lazy_assignments(&p.stmts);
        assert_eq!(lazies.len(), p.statement_count());
        // k := 0 is read by the while: eager. Everything in the body and
        // the while slot itself: eager.
        assert!(!lazies[0]);
        let while_slot = 2; // k, total, while, body…
        for &l in &lazies[while_slot..] {
            assert!(!l, "{lazies:?}");
        }
    }

    #[test]
    fn preorder_len_matches_statement_count() {
        let p = program(
            "var k: long = 0;
             var t: long = 0;
             while (k < 3) { k += 1; t += k; };",
        );
        assert_eq!(preorder_len(&p.stmts), p.statement_count());
    }
}
