//! The translation rules of Fig. 2: loop programs → target code over
//! monoid comprehensions.
//!
//! * `E⟦e⟧` lifts an expression of type `t` to a comprehension of type
//!   `{t}` — array accesses return zero-or-one-element bags (§3.4);
//! * `K⟦d⟧` derives the destination index of an L-value;
//! * `D⟦d⟧(k)` reads the destination back from its index (used by scalar
//!   incremental updates to add the initial value `w`);
//! * `U⟦d⟧(x)` rebuilds the destination from an update bag `x`;
//! * `S⟦s⟧(q)` translates a statement under the accumulated for-loop
//!   qualifiers `q` — for-loops become generators (rules (15d)/(15e)),
//!   which is exactly the loop fission of Theorem 3.1: every assignment in
//!   a loop nest becomes one bulk update.
//!
//! One deliberate implementation choice (documented in DESIGN.md): for an
//! incremental update whose destination is an *array*, the paper joins the
//! grouped aggregates back with the old array (`w ← D⟦d⟧(k)`) and then
//! merges with `⊳`. We instead emit a *combining merge* `V ⊳[⊕] x`, which
//! is equivalent where the paper's form is defined and additionally gives
//! the unrolled-loop semantics when the key is absent from the old array
//! (e.g. `C[w] += 1` starting from an empty map).

use diablo_comp::ir::{CExpr, Comprehension, NameGen, Pattern, Qual};
use diablo_comp::optimize;
use diablo_lang::ast::{Const, DeclInit, Expr, Lhs, Stmt};
use diablo_lang::lexer::Span;
use diablo_lang::types::TypedProgram;
use diablo_lang::{LangError, Type};
use diablo_runtime::{AggOp, BinOp, UnOp, Value};

use crate::target::{CompiledProgram, TStmt};

/// Result alias for translation.
pub type Result<T> = std::result::Result<T, LangError>;

/// Translates a type-checked (and restriction-checked) program.
pub fn translate(tp: &TypedProgram) -> Result<CompiledProgram> {
    let mut t = Translator {
        tp,
        ng: NameGen::new(),
    };
    let mut stmts = Vec::new();
    for s in &tp.program.body {
        stmts.extend(t.stmt(s, Vec::new())?);
    }
    // Optimize every generated expression.
    let stmts = stmts.into_iter().map(|s| t.optimize_stmt(s)).collect();
    Ok(CompiledProgram {
        stmts,
        inputs: tp.program.inputs.clone(),
        var_types: tp.var_types.clone(),
    })
}

struct Translator<'a> {
    tp: &'a TypedProgram,
    ng: NameGen,
}

impl Translator<'_> {
    fn optimize_stmt(&mut self, s: TStmt) -> TStmt {
        match s {
            TStmt::Assign {
                name,
                value,
                collection,
            } => TStmt::Assign {
                name,
                value: optimize(&value, &mut self.ng),
                collection,
            },
            TStmt::While { cond, body } => TStmt::While {
                cond: optimize(&cond, &mut self.ng),
                body: body.into_iter().map(|s| self.optimize_stmt(s)).collect(),
            },
        }
    }

    // ------------------------------------------------------------- E⟦e⟧

    /// Lifts an expression to a bag-valued comprehension (rules (11a-g)).
    fn expr(&mut self, e: &Expr) -> CExpr {
        match e {
            Expr::Dest(d) => self.lhs_read(d),
            Expr::Const(c) => CExpr::singleton(CExpr::Const(const_value(c))),
            Expr::Bin(op, a, b) => {
                let (va, vb) = (self.ng.fresh("a"), self.ng.fresh("b"));
                let ea = self.expr(a);
                let eb = self.expr(b);
                CExpr::Comp(Comprehension::new(
                    CExpr::Bin(
                        *op,
                        Box::new(CExpr::Var(va.clone())),
                        Box::new(CExpr::Var(vb.clone())),
                    ),
                    vec![
                        Qual::Gen(Pattern::Var(va), ea),
                        Qual::Gen(Pattern::Var(vb), eb),
                    ],
                ))
            }
            Expr::Un(op, a) => {
                let va = self.ng.fresh("a");
                let ea = self.expr(a);
                CExpr::Comp(Comprehension::new(
                    CExpr::Un(*op, Box::new(CExpr::Var(va.clone()))),
                    vec![Qual::Gen(Pattern::Var(va), ea)],
                ))
            }
            Expr::Call(f, args) => {
                let mut quals = Vec::with_capacity(args.len());
                let mut vars = Vec::with_capacity(args.len());
                for a in args {
                    let v = self.ng.fresh("a");
                    let ea = self.expr(a);
                    quals.push(Qual::Gen(Pattern::Var(v.clone()), ea));
                    vars.push(CExpr::Var(v));
                }
                CExpr::Comp(Comprehension::new(CExpr::Call(*f, vars), quals))
            }
            Expr::Tuple(fields) => {
                let mut quals = Vec::with_capacity(fields.len());
                let mut vars = Vec::with_capacity(fields.len());
                for f in fields {
                    let v = self.ng.fresh("t");
                    let ef = self.expr(f);
                    quals.push(Qual::Gen(Pattern::Var(v.clone()), ef));
                    vars.push(CExpr::Var(v));
                }
                CExpr::Comp(Comprehension::new(CExpr::Tuple(vars), quals))
            }
            Expr::Record(fields) => {
                let mut quals = Vec::with_capacity(fields.len());
                let mut named = Vec::with_capacity(fields.len());
                for (n, f) in fields {
                    let v = self.ng.fresh("r");
                    let ef = self.expr(f);
                    quals.push(Qual::Gen(Pattern::Var(v.clone()), ef));
                    named.push((n.clone(), CExpr::Var(v)));
                }
                CExpr::Comp(Comprehension::new(CExpr::Record(named), quals))
            }
        }
    }

    /// `E⟦d⟧` for destination reads: variables (11a), projections (11b),
    /// array accesses (11c).
    fn lhs_read(&mut self, d: &Lhs) -> CExpr {
        match d {
            Lhs::Var(v) => CExpr::singleton(CExpr::Var(v.clone())),
            Lhs::Proj(base, field) => {
                let t = self.ng.fresh("p");
                let eb = self.lhs_read(base);
                CExpr::Comp(Comprehension::new(
                    CExpr::Proj(Box::new(CExpr::Var(t.clone())), field.clone()),
                    vec![Qual::Gen(Pattern::Var(t), eb)],
                ))
            }
            Lhs::Index(v, idxs) => {
                let mut quals = Vec::new();
                let mut key_vars = Vec::with_capacity(idxs.len());
                for idx in idxs {
                    let kv = self.ng.fresh("k");
                    let ei = self.expr(idx);
                    quals.push(Qual::Gen(Pattern::Var(kv.clone()), ei));
                    key_vars.push(kv);
                }
                let val = self.ng.fresh("v");
                let (pat, preds) = self.array_pattern(v, &key_vars, &val);
                quals.push(Qual::Gen(pat, CExpr::Var(v.clone())));
                quals.extend(preds);
                CExpr::Comp(Comprehension::new(CExpr::Var(val), quals))
            }
        }
    }

    /// Builds the traversal pattern for an array generator and the
    /// equality predicates binding its index variables to `key_vars`.
    fn array_pattern(
        &mut self,
        array: &str,
        key_vars: &[String],
        val: &str,
    ) -> (Pattern, Vec<Qual>) {
        let is_matrix = matches!(self.tp.type_of(array), Some(Type::Matrix(_)));
        if is_matrix {
            let (i, j) = (self.ng.fresh("i"), self.ng.fresh("j"));
            let pat = Pattern::pair(
                Pattern::pair(Pattern::var(i.clone()), Pattern::var(j.clone())),
                Pattern::var(val),
            );
            let preds = match key_vars.len() {
                2 => vec![
                    Qual::Pred(CExpr::eq(CExpr::Var(i), CExpr::Var(key_vars[0].clone()))),
                    Qual::Pred(CExpr::eq(CExpr::Var(j), CExpr::Var(key_vars[1].clone()))),
                ],
                // Keyed by a single pair value (from D⟦·⟧).
                1 => vec![Qual::Pred(CExpr::eq(
                    CExpr::pair(CExpr::Var(i), CExpr::Var(j)),
                    CExpr::Var(key_vars[0].clone()),
                ))],
                n => unreachable!("matrix access with {n} indexes"),
            };
            (pat, preds)
        } else {
            let i = self.ng.fresh("i");
            let pat = Pattern::pair(Pattern::var(i.clone()), Pattern::var(val));
            let preds = vec![Qual::Pred(CExpr::eq(
                CExpr::Var(i),
                CExpr::Var(key_vars[0].clone()),
            ))];
            (pat, preds)
        }
    }

    // ------------------------------------------------------------- K⟦d⟧

    /// The destination-index bag (rules (12a-c)).
    fn key_of(&mut self, d: &Lhs) -> CExpr {
        match d {
            Lhs::Var(_) => CExpr::singleton(CExpr::Const(Value::Unit)),
            Lhs::Proj(base, _) => self.key_of(base),
            Lhs::Index(_, idxs) => {
                if idxs.len() == 1 {
                    self.expr(&idxs[0])
                } else {
                    self.expr(&Expr::Tuple(idxs.clone()))
                }
            }
        }
    }

    // ---------------------------------------------------------- D⟦d⟧(k)

    /// Reads the destination back from its index (rules (13a-c)).
    fn dest_of(&mut self, d: &Lhs, k: &CExpr) -> CExpr {
        match d {
            Lhs::Var(v) => CExpr::singleton(CExpr::Var(v.clone())),
            Lhs::Proj(base, field) => {
                let t = self.ng.fresh("p");
                let eb = self.dest_of(base, k);
                CExpr::Comp(Comprehension::new(
                    CExpr::Proj(Box::new(CExpr::Var(t.clone())), field.clone()),
                    vec![Qual::Gen(Pattern::Var(t), eb)],
                ))
            }
            Lhs::Index(v, _) => {
                let kv = self.ng.fresh("k");
                let val = self.ng.fresh("w");
                // Bind k once so the pattern predicates can reference it.
                let (pat, preds) = self.array_pattern(v, std::slice::from_ref(&kv), &val);
                let mut quals = vec![
                    Qual::Let(Pattern::Var(kv), k.clone()),
                    Qual::Gen(pat, CExpr::Var(v.clone())),
                ];
                quals.extend(preds);
                CExpr::Comp(Comprehension::new(CExpr::Var(val), quals))
            }
        }
    }

    // ---------------------------------------------------------- U⟦d⟧(x)

    /// Rebuilds the destination from the update bag `x` (rules (14a-c)).
    /// `combine` is `Some(⊕)` for array-destination incremental updates.
    fn update(
        &mut self,
        d: &Lhs,
        x: CExpr,
        combine: Option<BinOp>,
        span: Span,
    ) -> Result<Vec<TStmt>> {
        match d {
            Lhs::Var(v) => {
                let val = self.ng.fresh("v");
                let body = CExpr::Comp(Comprehension::new(
                    CExpr::Var(val.clone()),
                    vec![Qual::Gen(
                        Pattern::pair(Pattern::Wild, Pattern::var(val)),
                        x,
                    )],
                ));
                Ok(vec![TStmt::Assign {
                    name: v.clone(),
                    value: body,
                    collection: self.tp.is_collection(v),
                }])
            }
            Lhs::Proj(base, field) => {
                // (14b): rebuild the record with field `field` replaced.
                let base_ty = self.lhs_type(base).ok_or_else(|| {
                    LangError::new("cannot type the destination of a field update", span)
                })?;
                let (k, v, w) = (self.ng.fresh("k"), self.ng.fresh("v"), self.ng.fresh("w"));
                let rebuilt = match &base_ty {
                    Type::Record(fields) => CExpr::Record(
                        fields
                            .iter()
                            .map(|(n, _)| {
                                if n == field {
                                    (n.clone(), CExpr::Var(v.clone()))
                                } else {
                                    (
                                        n.clone(),
                                        CExpr::Proj(Box::new(CExpr::Var(w.clone())), n.clone()),
                                    )
                                }
                            })
                            .collect(),
                    ),
                    Type::Tuple(fields) => CExpr::Tuple(
                        (1..=fields.len())
                            .map(|i| {
                                let name = format!("_{i}");
                                if name == *field {
                                    CExpr::Var(v.clone())
                                } else {
                                    CExpr::Proj(Box::new(CExpr::Var(w.clone())), name)
                                }
                            })
                            .collect(),
                    ),
                    other => {
                        return Err(LangError::new(
                            format!("cannot update field `{field}` of type {other}"),
                            span,
                        ))
                    }
                };
                let dk = self.dest_of(base, &CExpr::Var(k.clone()));
                let x2 = CExpr::Comp(Comprehension::new(
                    CExpr::pair(CExpr::Var(k.clone()), rebuilt),
                    vec![
                        Qual::Gen(Pattern::pair(Pattern::var(k), Pattern::var(v)), x),
                        Qual::Gen(Pattern::Var(w), dk),
                    ],
                ));
                self.update(base, x2, None, span)
            }
            Lhs::Index(v, _) => Ok(vec![TStmt::Assign {
                name: v.clone(),
                value: CExpr::Merge {
                    left: Box::new(CExpr::Var(v.clone())),
                    right: Box::new(x),
                    combine,
                },
                collection: true,
            }]),
        }
    }

    /// The static type of an L-value, resolved from the typed program.
    fn lhs_type(&self, d: &Lhs) -> Option<Type> {
        match d {
            Lhs::Var(v) => self.tp.type_of(v).cloned(),
            Lhs::Proj(base, field) => match self.lhs_type(base)? {
                Type::Record(fields) => fields
                    .iter()
                    .find(|(n, _)| n == field)
                    .map(|(_, t)| t.clone()),
                Type::Tuple(ts) => {
                    let idx: usize = field.strip_prefix('_')?.parse().ok()?;
                    ts.get(idx.checked_sub(1)?).cloned()
                }
                _ => None,
            },
            Lhs::Index(v, _) => self.tp.type_of(v)?.element().cloned(),
        }
    }

    // ---------------------------------------------------------- S⟦s⟧(q)

    /// Translates a statement under accumulated loop qualifiers (rules
    /// (15a-h)).
    fn stmt(&mut self, s: &Stmt, q: Vec<Qual>) -> Result<Vec<TStmt>> {
        match s {
            Stmt::Incr {
                dest,
                op,
                value,
                span,
            } => {
                let agg = AggOp::new(*op).ok_or_else(|| {
                    LangError::new(
                        format!("`{}` is not a commutative monoid", op.symbol()),
                        *span,
                    )
                })?;
                let (vv, k) = (self.ng.fresh("v"), self.ng.fresh("k"));
                let ev = self.expr(value);
                let kd = self.key_of(dest);
                let mut quals = q;
                quals.push(Qual::Gen(Pattern::var(vv.clone()), ev));
                quals.push(Qual::Gen(Pattern::var(k.clone()), kd));
                quals.push(Qual::GroupBy(
                    Pattern::var(k.clone()),
                    CExpr::Var(k.clone()),
                ));
                match dest {
                    Lhs::Index(_, _) => {
                        // (15a) with a combining merge: no D-join needed.
                        let x = CExpr::Comp(Comprehension::new(
                            CExpr::pair(CExpr::Var(k), CExpr::Agg(agg, Box::new(CExpr::Var(vv)))),
                            quals,
                        ));
                        self.update(dest, x, Some(*op), *span)
                    }
                    _ => {
                        // (15a) exactly as in the paper: join the initial
                        // value w back in.
                        let w = self.ng.fresh("w");
                        let dk = self.dest_of(dest, &CExpr::Var(k.clone()));
                        quals.push(Qual::Gen(Pattern::var(w.clone()), dk));
                        let x = CExpr::Comp(Comprehension::new(
                            CExpr::pair(
                                CExpr::Var(k),
                                CExpr::Bin(
                                    *op,
                                    Box::new(CExpr::Var(w)),
                                    Box::new(CExpr::Agg(agg, Box::new(CExpr::Var(vv)))),
                                ),
                            ),
                            quals,
                        ));
                        self.update(dest, x, None, *span)
                    }
                }
            }
            Stmt::Assign { dest, value, span } => {
                let (vv, k) = (self.ng.fresh("v"), self.ng.fresh("k"));
                let ev = self.expr(value);
                let kd = self.key_of(dest);
                let mut quals = q;
                quals.push(Qual::Gen(Pattern::var(vv.clone()), ev));
                quals.push(Qual::Gen(Pattern::var(k.clone()), kd));
                let x = CExpr::Comp(Comprehension::new(
                    CExpr::pair(CExpr::Var(k), CExpr::Var(vv)),
                    quals,
                ));
                self.update(dest, x, None, *span)
            }
            Stmt::Decl {
                name,
                ty,
                init,
                span,
            } => match init {
                DeclInit::EmptyCollection => Ok(vec![TStmt::Assign {
                    name: name.clone(),
                    value: CExpr::Const(Value::empty_bag()),
                    collection: ty.is_collection(),
                }]),
                DeclInit::Expr(e) => self.stmt(
                    &Stmt::Assign {
                        dest: Lhs::Var(name.clone()),
                        value: e.clone(),
                        span: *span,
                    },
                    q,
                ),
            },
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                let (v1, v2) = (self.ng.fresh("lo"), self.ng.fresh("hi"));
                let elo = self.expr(lo);
                let ehi = self.expr(hi);
                let mut quals = q;
                quals.push(Qual::Gen(Pattern::var(v1.clone()), elo));
                quals.push(Qual::Gen(Pattern::var(v2.clone()), ehi));
                quals.push(Qual::Gen(
                    Pattern::var(var.clone()),
                    CExpr::Range(Box::new(CExpr::Var(v1)), Box::new(CExpr::Var(v2))),
                ));
                self.stmt(body, quals)
            }
            Stmt::ForIn {
                var, source, body, ..
            } => {
                let a = self.ng.fresh("A");
                let es = self.expr(source);
                let mut quals = q;
                quals.push(Qual::Gen(Pattern::var(a.clone()), es));
                quals.push(Qual::Gen(
                    Pattern::pair(Pattern::Wild, Pattern::var(var.clone())),
                    CExpr::Var(a),
                ));
                self.stmt(body, quals)
            }
            Stmt::While { cond, body, span } => {
                if !q.is_empty() {
                    return Err(LangError::new(
                        "while-loops inside for-loops are not supported (the loop would \
                         be sequentialized)",
                        *span,
                    ));
                }
                let ec = self.expr(cond);
                let mut tbody = Vec::new();
                for s in body_stmts(body) {
                    tbody.extend(self.stmt(s, Vec::new())?);
                }
                Ok(vec![TStmt::While {
                    cond: ec,
                    body: tbody,
                }])
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let mut out = Vec::new();
                let p = self.ng.fresh("c");
                let ec = self.expr(cond);
                let mut qt = q.clone();
                qt.push(Qual::Gen(Pattern::var(p.clone()), ec));
                qt.push(Qual::Pred(CExpr::Var(p)));
                out.extend(self.stmt(then_branch, qt)?);
                if let Some(eb) = else_branch {
                    let p2 = self.ng.fresh("c");
                    let ec2 = self.expr(cond);
                    let mut qe = q;
                    qe.push(Qual::Gen(Pattern::var(p2.clone()), ec2));
                    qe.push(Qual::Pred(CExpr::Un(UnOp::Not, Box::new(CExpr::Var(p2)))));
                    out.extend(self.stmt(eb, qe)?);
                }
                Ok(out)
            }
            Stmt::Block(ss) => {
                let mut out = Vec::new();
                for s in ss {
                    out.extend(self.stmt(s, q.clone())?);
                }
                Ok(out)
            }
        }
    }
}

/// Flattens a statement into its block components (while bodies are lists).
fn body_stmts(s: &Stmt) -> Vec<&Stmt> {
    match s {
        Stmt::Block(ss) => ss.iter().collect(),
        other => vec![other],
    }
}

fn const_value(c: &Const) -> Value {
    match c {
        Const::Long(n) => Value::Long(*n),
        Const::Double(x) => Value::Double(*x),
        Const::Bool(b) => Value::Bool(*b),
        Const::Str(s) => Value::str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_comp::pretty::pretty_cexpr;
    use diablo_lang::{parse, typecheck};

    fn compile_src(src: &str) -> CompiledProgram {
        let tp = typecheck(parse(src).unwrap()).unwrap();
        crate::analysis::check_restrictions(&tp).unwrap();
        translate(&tp).unwrap()
    }

    #[test]
    fn vector_copy_becomes_bounded_traversal() {
        // §3.9: for i = 1, 10 do V[i] := W[i]
        // ⇒ V := V ⊳ {(i, w) | (i, w) ← W, inRange(i, 1, 10)}
        let p = compile_src(
            r#"
            input W: vector[long];
            var V: vector[long] = vector();
            for i = 1, 10 do V[i] := W[i];
        "#,
        );
        assert_eq!(p.stmts.len(), 2);
        let TStmt::Assign {
            name,
            value,
            collection,
        } = &p.stmts[1]
        else {
            panic!()
        };
        assert_eq!(name, "V");
        assert!(collection);
        let CExpr::Merge { combine, right, .. } = value else {
            panic!("expected merge, got {}", pretty_cexpr(value))
        };
        assert!(combine.is_none());
        let CExpr::Comp(c) = right.as_ref() else {
            panic!()
        };
        // No range generator survives; an inRange guard exists.
        assert!(
            c.quals
                .iter()
                .all(|qq| !matches!(qq, Qual::Gen(_, CExpr::Range(_, _)))),
            "{}",
            pretty_cexpr(value)
        );
        assert!(
            c.quals.iter().any(|qq| matches!(
                qq,
                Qual::Pred(CExpr::Call(diablo_runtime::Func::InRange, _))
            )),
            "{}",
            pretty_cexpr(value)
        );
    }

    #[test]
    fn incremental_update_groups_by_destination() {
        // §3.9: for i = 1, 10 do W[K[i]] += V[i]
        let p = compile_src(
            r#"
            input K: vector[long];
            input V: vector[long];
            var W: vector[long] = vector();
            for i = 1, 10 do W[K[i]] += V[i];
        "#,
        );
        let TStmt::Assign { name, value, .. } = &p.stmts[1] else {
            panic!()
        };
        assert_eq!(name, "W");
        let CExpr::Merge { combine, right, .. } = value else {
            panic!()
        };
        assert_eq!(*combine, Some(BinOp::Add));
        let CExpr::Comp(c) = right.as_ref() else {
            panic!()
        };
        assert!(
            c.quals.iter().any(|qq| matches!(qq, Qual::GroupBy(_, _))),
            "group-by over the destination index: {}",
            pretty_cexpr(value)
        );
    }

    #[test]
    fn scalar_increment_becomes_total_aggregation() {
        // sum += V[i] in a loop ⇒ total aggregation, no group-by left.
        let p = compile_src(
            r#"
            input V: vector[double];
            var sum: double = 0.0;
            for i = 0, 99 do sum += V[i];
        "#,
        );
        let TStmt::Assign {
            name,
            value,
            collection,
        } = &p.stmts[1]
        else {
            panic!()
        };
        assert_eq!(name, "sum");
        assert!(!collection);
        let printed = pretty_cexpr(value);
        assert!(
            !printed.contains("group by"),
            "rule (16) removed the group-by: {printed}"
        );
        assert!(printed.contains("+/"), "total aggregation: {printed}");
    }

    #[test]
    fn matrix_multiplication_becomes_join_group_by() {
        let p = compile_src(
            r#"
            input M: matrix[double];
            input N: matrix[double];
            input d: long;
            var R: matrix[double] = matrix();
            for i = 0, d-1 do
              for j = 0, d-1 do {
                R[i, j] := 0.0;
                for k = 0, d-1 do
                  R[i, j] += M[i, k] * N[k, j];
              };
        "#,
        );
        // Statements: R := {}, zero-init merge, accumulate merge.
        assert_eq!(p.stmts.len(), 3);
        let TStmt::Assign { value, .. } = &p.stmts[2] else {
            panic!()
        };
        let printed = pretty_cexpr(value);
        // All three ranges must be eliminated (the §1.1 headline result).
        assert!(!printed.contains("range("), "no ranges: {printed}");
        assert!(printed.contains("group by"), "group-by survives: {printed}");
        assert!(printed.contains("+/"), "aggregation: {printed}");
    }

    #[test]
    fn conditionals_become_filters() {
        let p = compile_src(
            r#"
            input V: vector[double];
            var sum: double = 0.0;
            for v in V do
                if (v < 100.0) sum += v;
        "#,
        );
        let TStmt::Assign { value, .. } = &p.stmts[1] else {
            panic!()
        };
        let printed = pretty_cexpr(value);
        assert!(printed.contains("< 100"), "filter predicate: {printed}");
    }

    #[test]
    fn if_else_splits_into_two_updates() {
        let p = compile_src(
            r#"
            input V: vector[double];
            var a: double = 0.0;
            var b: double = 0.0;
            for v in V do
                if (v < 0.0) a += v; else b += v;
        "#,
        );
        // decl a, decl b, a-update, b-update.
        assert_eq!(p.stmts.len(), 4);
    }

    #[test]
    fn while_loops_stay_sequential() {
        let p = compile_src(
            r#"
            var k: long = 0;
            var s: long = 0;
            while (k < 10) { k += 1; s += k; };
        "#,
        );
        assert_eq!(p.stmts.len(), 3);
        let TStmt::While { body, .. } = &p.stmts[2] else {
            panic!("expected while")
        };
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn empty_collection_decl_initializes() {
        let p = compile_src("var V: vector[long] = vector();");
        let TStmt::Assign {
            value, collection, ..
        } = &p.stmts[0]
        else {
            panic!()
        };
        assert!(collection);
        assert_eq!(*value, CExpr::Const(Value::empty_bag()));
    }

    #[test]
    fn statement_count_recurses() {
        let p = compile_src(
            r#"
            var k: long = 0;
            while (k < 2) k += 1;
        "#,
        );
        assert_eq!(p.statement_count(), 3);
    }
}
