//! # diablo-workloads
//!
//! The evaluation workloads of §6: every benchmark program in DIABLO
//! surface syntax ([`programs`]), random input generators matching the
//! paper's datasets ([`generators`]), the RMAT graph generator used for
//! PageRank ([`rmat`]), and [`Workload`] — a program bundled with concrete
//! inputs and its output variables, the unit the integration tests, Table 2
//! and Figure 3 all consume.

pub mod generators;
pub mod programs;
pub mod rmat;

use diablo_runtime::{size::slice_size, Value};

/// A benchmark program together with concrete inputs and outputs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (matches the paper's tables).
    pub name: &'static str,
    /// DIABLO source text.
    pub source: &'static str,
    /// Scalar inputs to bind.
    pub scalars: Vec<(&'static str, Value)>,
    /// Collection inputs to bind (bags of `(key, value)` pairs).
    pub collections: Vec<(&'static str, Vec<Value>)>,
    /// Variables holding the results to read back / compare.
    pub outputs: Vec<&'static str>,
}

impl Workload {
    /// Estimated input size in bytes (the x-axis of Figure 3).
    pub fn input_bytes(&self) -> usize {
        self.collections
            .iter()
            .map(|(_, rows)| slice_size(rows))
            .sum()
    }

    /// Total number of collection input rows.
    pub fn input_rows(&self) -> usize {
        self.collections.iter().map(|(_, rows)| rows.len()).sum()
    }
}

/// Conditional Sum (Fig. 3A): `n` doubles in `[0, 200)`.
pub fn conditional_sum(n: usize, seed: u64) -> Workload {
    Workload {
        name: "Conditional Sum",
        source: programs::CONDITIONAL_SUM,
        scalars: vec![],
        collections: vec![("V", generators::random_doubles(n, 200.0, seed))],
        outputs: vec!["sum"],
    }
}

/// Equal (Fig. 3B): `n` copies of one word (the all-equal case).
pub fn equal(n: usize, _seed: u64) -> Workload {
    Workload {
        name: "Equal",
        source: programs::EQUAL,
        scalars: vec![("x", Value::str("w042"))],
        collections: vec![("V", generators::equal_words(n, "w042"))],
        outputs: vec!["eq"],
    }
}

/// String Match (Fig. 3C): `n` random words from a 1000-word lexicon.
pub fn string_match(n: usize, seed: u64) -> Workload {
    Workload {
        name: "String Match",
        source: programs::STRING_MATCH,
        scalars: vec![],
        collections: vec![("words", generators::random_words(n, 1000, seed))],
        outputs: vec!["c"],
    }
}

/// Word Count (Fig. 3D).
pub fn word_count(n: usize, seed: u64) -> Workload {
    Workload {
        name: "Word Count",
        source: programs::WORD_COUNT,
        scalars: vec![],
        collections: vec![("words", generators::random_words(n, 1000, seed))],
        outputs: vec!["C"],
    }
}

/// Histogram (Fig. 3E): `n` RGB pixels.
pub fn histogram(n: usize, seed: u64) -> Workload {
    Workload {
        name: "Histogram",
        source: programs::HISTOGRAM,
        scalars: vec![],
        collections: vec![("P", generators::random_pixels(n, seed))],
        outputs: vec!["R", "G", "B"],
    }
}

/// Linear Regression (Fig. 3F).
pub fn linear_regression(n: usize, seed: u64) -> Workload {
    Workload {
        name: "Linear Regression",
        source: programs::LINEAR_REGRESSION,
        scalars: vec![("n", Value::Long(n as i64))],
        collections: vec![("P", generators::linreg_points(n, seed))],
        outputs: vec!["intercept", "slope"],
    }
}

/// Group-By (Fig. 3G): ~10 duplicates per key.
pub fn group_by(n: usize, seed: u64) -> Workload {
    Workload {
        name: "Group By",
        source: programs::GROUP_BY,
        scalars: vec![],
        collections: vec![("V", generators::group_pairs(n, 10, seed))],
        outputs: vec!["C"],
    }
}

/// Matrix Addition (Fig. 3H): two dense `d × d` matrices.
pub fn matrix_addition(d: usize, seed: u64) -> Workload {
    Workload {
        name: "Matrix Addition",
        source: programs::MATRIX_ADDITION,
        scalars: vec![("n", Value::Long(d as i64)), ("mm", Value::Long(d as i64))],
        collections: vec![
            ("M", generators::dense_matrix(d, seed)),
            ("N", generators::dense_matrix(d, seed + 1)),
        ],
        outputs: vec!["R"],
    }
}

/// Matrix Multiplication (Fig. 3I): two dense `d × d` matrices.
pub fn matrix_multiplication(d: usize, seed: u64) -> Workload {
    Workload {
        name: "Matrix Multiplication",
        source: programs::MATRIX_MULTIPLICATION,
        scalars: vec![("d", Value::Long(d as i64))],
        collections: vec![
            ("M", generators::dense_matrix(d, seed)),
            ("N", generators::dense_matrix(d, seed + 1)),
        ],
        outputs: vec!["R"],
    }
}

/// PageRank (Fig. 3J): RMAT graph with `10 × vertices` edges.
pub fn pagerank(vertices: usize, num_steps: usize, seed: u64) -> Workload {
    Workload {
        name: "PageRank",
        source: programs::PAGERANK,
        scalars: vec![
            ("vertices", Value::Long(vertices as i64)),
            ("num_steps", Value::Long(num_steps as i64)),
        ],
        collections: vec![("E", rmat::pagerank_graph(vertices, seed))],
        outputs: vec!["P"],
    }
}

/// K-Means (Fig. 3K): points in a `grid × grid` arrangement of squares,
/// `grid²` centroids.
pub fn kmeans(n: usize, grid: usize, num_steps: usize, seed: u64) -> Workload {
    Workload {
        name: "KMeans",
        source: programs::KMEANS,
        scalars: vec![
            ("K", Value::Long((grid * grid) as i64)),
            ("N", Value::Long(n as i64)),
            ("num_steps", Value::Long(num_steps as i64)),
        ],
        collections: vec![
            ("P", generators::kmeans_points(n, grid, seed)),
            ("C0", generators::kmeans_centroids(grid)),
        ],
        outputs: vec!["C"],
    }
}

/// Matrix Factorization (Fig. 3L): a 10%-sparse `d × d` rating matrix,
/// rank-`l` factors, learning rate 0.002 and normalization 0.02 (§6).
pub fn matrix_factorization(d: usize, l: usize, num_steps: usize, seed: u64) -> Workload {
    Workload {
        name: "Matrix Factorization",
        source: programs::MATRIX_FACTORIZATION,
        scalars: vec![
            ("n", Value::Long(d as i64)),
            ("m", Value::Long(d as i64)),
            ("l", Value::Long(l as i64)),
            ("a", Value::Double(0.002)),
            ("b", Value::Double(0.02)),
            ("num_steps", Value::Long(num_steps as i64)),
        ],
        collections: vec![
            ("R", generators::sparse_matrix(d, 0.1, seed)),
            ("Pinit", generators::factor_matrix(d, l, seed + 1)),
            ("Qinit", generators::factor_matrix(l, d, seed + 2)),
        ],
        outputs: vec!["P", "Q"],
    }
}

/// Average (Table 1 only).
pub fn average(n: usize, seed: u64) -> Workload {
    Workload {
        name: "Average",
        source: programs::AVERAGE,
        scalars: vec![("n", Value::Long(n as i64))],
        collections: vec![("V", generators::random_doubles(n, 200.0, seed))],
        outputs: vec!["avg"],
    }
}

/// Conditional Count (Table 1 only).
pub fn conditional_count(n: usize, seed: u64) -> Workload {
    Workload {
        name: "Conditional Count",
        source: programs::CONDITIONAL_COUNT,
        scalars: vec![],
        collections: vec![("V", generators::random_doubles(n, 200.0, seed))],
        outputs: vec!["count"],
    }
}

/// Count (Table 1 only).
pub fn count(n: usize, seed: u64) -> Workload {
    Workload {
        name: "Count",
        source: programs::COUNT,
        scalars: vec![],
        collections: vec![("V", generators::random_doubles(n, 200.0, seed))],
        outputs: vec!["count"],
    }
}

/// Equal Frequency (Table 1 only).
pub fn equal_frequency(n: usize, seed: u64) -> Workload {
    Workload {
        name: "Equal Frequency",
        source: programs::EQUAL_FREQUENCY,
        scalars: vec![],
        collections: vec![("words", generators::random_words(n, 50, seed))],
        outputs: vec!["eqf"],
    }
}

/// Sum (Table 1 only).
pub fn sum(n: usize, seed: u64) -> Workload {
    Workload {
        name: "Sum",
        source: programs::SUM,
        scalars: vec![],
        collections: vec![("V", generators::random_doubles(n, 200.0, seed))],
        outputs: vec!["sum"],
    }
}

/// PCA (Table 1 only).
pub fn pca(n: usize, seed: u64) -> Workload {
    Workload {
        name: "PCA",
        source: programs::PCA,
        scalars: vec![("n", Value::Long(n as i64))],
        collections: vec![("P", generators::linreg_points(n, seed))],
        outputs: vec!["cxx", "cxy", "cyy"],
    }
}

/// The 12 Figure-3 / Table-2 workloads at a small, laptop-friendly scale.
/// `scale` multiplies the element counts (1 ≈ unit-test scale).
pub fn figure3_workloads(scale: usize, seed: u64) -> Vec<Workload> {
    let s = scale.max(1);
    vec![
        conditional_sum(2_000 * s, seed),
        equal(2_000 * s, seed),
        string_match(2_000 * s, seed),
        word_count(2_000 * s, seed),
        histogram(1_000 * s, seed),
        linear_regression(2_000 * s, seed),
        group_by(2_000 * s, seed),
        matrix_addition(16 * s.min(20), seed),
        matrix_multiplication(8 * s.min(12), seed),
        pagerank(50 * s.min(40), 2, seed),
        kmeans(300 * s, 3, 1, seed),
        matrix_factorization(12 * s.min(16), 2, 1, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_report_sizes() {
        let w = conditional_sum(100, 1);
        assert_eq!(w.input_rows(), 100);
        assert!(w.input_bytes() > 100 * 16);
    }

    #[test]
    fn figure3_set_has_twelve_entries() {
        let ws = figure3_workloads(1, 7);
        assert_eq!(ws.len(), 12);
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert!(names.contains(&"PageRank"));
        assert!(names.contains(&"Matrix Factorization"));
    }

    #[test]
    fn every_workload_program_compiles() {
        for w in figure3_workloads(1, 3) {
            diablo_lang::typecheck(diablo_lang::parse(w.source).unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}
