//! RMAT (Recursive-MATrix) graph generator [Chakrabarti, Zhan, Faloutsos,
//! SDM 2004] — the synthetic graph source used for the PageRank evaluation
//! (§6), with the paper's Kronecker parameters a=0.30, b=0.25, c=0.25,
//! d=0.20 and 10 edges per vertex.

use std::collections::HashSet;

use rand::Rng;

use diablo_runtime::Value;

use crate::generators::rng;

/// The RMAT quadrant probabilities used by the paper.
pub const PAPER_PARAMS: RmatParams = RmatParams {
    a: 0.30,
    b: 0.25,
    c: 0.25,
    d: 0.20,
};

/// RMAT quadrant probabilities (must sum to 1).
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

/// Generates a directed RMAT graph with `vertices` nodes (rounded up to a
/// power of two internally, then clipped) and approximately
/// `edges` distinct edges, as `(src, dst)` pairs.
pub fn rmat_edges(vertices: usize, edges: usize, params: RmatParams, seed: u64) -> Vec<(i64, i64)> {
    assert!(vertices > 0);
    let levels = (usize::BITS - (vertices - 1).leading_zeros()).max(1);
    let mut r = rng(seed);
    let mut seen: HashSet<(i64, i64)> = HashSet::with_capacity(edges);
    let mut out = Vec::with_capacity(edges);
    let mut attempts = 0usize;
    while out.len() < edges && attempts < edges * 20 {
        attempts += 1;
        let (mut x, mut y) = (0i64, 0i64);
        for _ in 0..levels {
            x <<= 1;
            y <<= 1;
            let p: f64 = r.gen();
            if p < params.a {
                // top-left: nothing to add
            } else if p < params.a + params.b {
                y |= 1;
            } else if p < params.a + params.b + params.c {
                x |= 1;
            } else {
                x |= 1;
                y |= 1;
            }
        }
        if x >= vertices as i64 || y >= vertices as i64 {
            continue;
        }
        if seen.insert((x, y)) {
            out.push((x, y));
        }
    }
    out
}

/// The PageRank input: a boolean edge matrix `{((src, dst), true)}` with
/// `10 × vertices` edges, guaranteeing every vertex at least one outgoing
/// edge (so out-degrees are nonzero, as the rank update divides by them).
pub fn pagerank_graph(vertices: usize, seed: u64) -> Vec<Value> {
    let mut edges = rmat_edges(vertices, vertices * 10, PAPER_PARAMS, seed);
    let mut has_out: Vec<bool> = vec![false; vertices];
    for (s, _) in &edges {
        has_out[*s as usize] = true;
    }
    let mut r = rng(seed ^ 0x9e3779b9);
    for (v, has) in has_out.iter().enumerate() {
        if !has {
            let dst = r.gen_range(0..vertices) as i64;
            edges.push((v as i64, dst));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
        .into_iter()
        .map(|(s, d)| {
            Value::pair(
                Value::pair(Value::Long(s), Value::Long(d)),
                Value::Bool(true),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_roughly_the_requested_edges() {
        let edges = rmat_edges(256, 2560, PAPER_PARAMS, 42);
        assert!(edges.len() > 2000, "got {}", edges.len());
        for (s, d) in &edges {
            assert!(*s < 256 && *d < 256 && *s >= 0 && *d >= 0);
        }
    }

    #[test]
    fn edges_are_distinct() {
        let edges = rmat_edges(128, 1000, PAPER_PARAMS, 1);
        let set: HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), edges.len());
    }

    #[test]
    fn pagerank_graph_has_no_sinks_without_outgoing_edges() {
        let rows = pagerank_graph(100, 9);
        let mut out_deg = vec![0usize; 100];
        for row in &rows {
            let (k, _) = diablo_runtime::array::key_value(row).unwrap();
            let s = k.as_tuple().unwrap()[0].as_long().unwrap();
            out_deg[s as usize] += 1;
        }
        assert!(out_deg.iter().all(|&d| d > 0));
    }

    #[test]
    fn skew_follows_quadrant_probabilities() {
        // With a=0.30 the low-id quadrant is denser: vertex 0's out-degree
        // should be far above the average.
        let edges = rmat_edges(1024, 10240, PAPER_PARAMS, 3);
        let deg0 = edges.iter().filter(|(s, _)| *s == 0).count();
        assert!(deg0 > 20, "power-law head expected, got {deg0}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            rmat_edges(64, 100, PAPER_PARAMS, 5),
            rmat_edges(64, 100, PAPER_PARAMS, 5)
        );
    }
}
