//! The benchmark loop programs, in DIABLO surface syntax.
//!
//! These are the programs of the paper's evaluation (§6 and Appendix B),
//! adapted to this implementation's syntax: the 12 programs of Figure 3 /
//! Table 2 plus the extra programs of Table 1 (Average, Conditional Count,
//! Count, Equal Frequency, Sum, PCA).

/// Conditional Sum (Fig. 3A): sum the elements below 100.
pub const CONDITIONAL_SUM: &str = r#"
input V: vector[double];
var sum: double = 0.0;
for v in V do
    if (v < 100.0) sum += v;
"#;

/// Equal (Fig. 3B): are all strings equal to the first one?
pub const EQUAL: &str = r#"
input V: vector[string];
input x: string;
var eq: bool = true;
for v in V do eq := eq && v == x;
"#;

/// String Match (Fig. 3C): does the dataset contain one of three keys?
pub const STRING_MATCH: &str = r#"
input words: vector[string];
var c: bool = false;
for w in words do
    c := c || (w == "key1" || w == "key2" || w == "key3");
"#;

/// Word Count (Fig. 3D).
pub const WORD_COUNT: &str = r#"
input words: vector[string];
var C: map[string, long] = map();
for w in words do C[w] += 1;
"#;

/// Histogram (Fig. 3E): one histogram per RGB component.
pub const HISTOGRAM: &str = r#"
input P: vector[<|red: long, green: long, blue: long|>];
var R: map[long, long] = map();
var G: map[long, long] = map();
var B: map[long, long] = map();
for p in P do {
    R[p.red] += 1;
    G[p.green] += 1;
    B[p.blue] += 1;
};
"#;

/// Linear Regression (Fig. 3F): intercept and slope of 2-D points.
pub const LINEAR_REGRESSION: &str = r#"
input P: vector[(double, double)];
input n: long;
var sum_x: double = 0.0;
var sum_y: double = 0.0;
var x_bar: double = 0.0;
var y_bar: double = 0.0;
var xx_bar: double = 0.0;
var yy_bar: double = 0.0;
var xy_bar: double = 0.0;
var slope: double = 0.0;
var intercept: double = 0.0;
for p in P do {
    sum_x += p._1;
    sum_y += p._2;
};
x_bar := sum_x / n;
y_bar := sum_y / n;
for p in P do {
    xx_bar += (p._1 - x_bar) * (p._1 - x_bar);
    yy_bar += (p._2 - y_bar) * (p._2 - y_bar);
    xy_bar += (p._1 - x_bar) * (p._2 - y_bar);
};
slope := xy_bar / xx_bar;
intercept := y_bar - slope * x_bar;
"#;

/// Group-By (Fig. 3G): sum values per key.
pub const GROUP_BY: &str = r#"
input V: vector[<|K: long, A: double|>];
var C: vector[double] = vector();
for v in V do C[v.K] += v.A;
"#;

/// Matrix Addition (Fig. 3H).
pub const MATRIX_ADDITION: &str = r#"
input M: matrix[double];
input N: matrix[double];
input n: long;
input mm: long;
var R: matrix[double] = matrix();
for i = 0, n-1 do
    for j = 0, mm-1 do
        R[i, j] := M[i, j] + N[i, j];
"#;

/// Matrix Multiplication (Fig. 3I) — the paper's running example.
pub const MATRIX_MULTIPLICATION: &str = r#"
input M: matrix[double];
input N: matrix[double];
input d: long;
var R: matrix[double] = matrix();
for i = 0, d-1 do
    for j = 0, d-1 do {
        R[i, j] := 0.0;
        for k = 0, d-1 do
            R[i, j] += M[i, k] * N[k, j];
    };
"#;

/// PageRank (Fig. 3J), Appendix B shape: an explicit edge matrix `E`,
/// out-degree counts `C`, and the rank update through the intermediate
/// matrix `Q`.
pub const PAGERANK: &str = r#"
input E: matrix[bool];
input vertices: long;
input num_steps: long;
var P: vector[double] = vector();
var C: vector[long] = vector();
var b: double = 0.85;
for i = 0, vertices-1 do {
    C[i] := 0;
    P[i] := 1.0 / vertices;
};
for i = 0, vertices-1 do
    for j = 0, vertices-1 do
        if (E[i, j])
            C[i] += 1;
var k: long = 0;
while (k < num_steps) {
    var Q: matrix[double] = matrix();
    k += 1;
    for i = 0, vertices-1 do
        for j = 0, vertices-1 do
            if (E[i, j])
                Q[i, j] := P[i];
    for i = 0, vertices-1 do
        P[i] := (1.0 - b) / vertices;
    for i = 0, vertices-1 do
        for j = 0, vertices-1 do
            P[i] += b * Q[j, i] / C[j];
};
"#;

/// K-Means (Fig. 3K): one or more Lloyd steps over 2-D points. `closest`
/// tracks the nearest centroid per point with the argmin monoid `^`; `avg`
/// accumulates per-centroid sums with element-wise tuple addition.
pub const KMEANS: &str = r#"
input P: vector[(double, double)];
input C0: vector[(double, double)];
input K: long;
input N: long;
input num_steps: long;
var C: vector[(double, double)] = vector();
var steps: long = 0;
for i = 0, K-1 do C[i] := C0[i];
while (steps < num_steps) {
    steps += 1;
    var closest: vector[(long, double)] = vector();
    var avg: vector[(double, double, long)] = vector();
    for i = 0, N-1 do {
        closest[i] := (0, 1.0e12);
        for j = 0, K-1 do
            closest[i] ^= (j, sqrt((P[i]._1 - C[j]._1) * (P[i]._1 - C[j]._1)
                                 + (P[i]._2 - C[j]._2) * (P[i]._2 - C[j]._2)));
        avg[closest[i]._1] += (P[i]._1, P[i]._2, 1);
    };
    for i = 0, K-1 do
        C[i] := (avg[i]._1 / avg[i]._3, avg[i]._2 / avg[i]._3);
};
"#;

/// Matrix Factorization by gradient descent (Fig. 3L), the rectified §3.2
/// program: `pq` and `err` are matrices, `P0`/`Q0` hold the previous
/// factors and are refreshed at the end of each step.
pub const MATRIX_FACTORIZATION: &str = r#"
input R: matrix[double];
input n: long;
input m: long;
input l: long;
input a: double;
input b: double;
input num_steps: long;
input Pinit: matrix[double];
input Qinit: matrix[double];
var P0: matrix[double] = matrix();
var Q0: matrix[double] = matrix();
var P: matrix[double] = matrix();
var Q: matrix[double] = matrix();
var steps: long = 0;
for i = 0, n-1 do
    for kk = 0, l-1 do
        P0[i, kk] := Pinit[i, kk];
for kk = 0, l-1 do
    for j = 0, m-1 do
        Q0[kk, j] := Qinit[kk, j];
while (steps < num_steps) {
    steps += 1;
    var pq: matrix[double] = matrix();
    var err: matrix[double] = matrix();
    for i = 0, n-1 do
        for kk = 0, l-1 do
            P[i, kk] := P0[i, kk];
    for kk = 0, l-1 do
        for j = 0, m-1 do
            Q[kk, j] := Q0[kk, j];
    for i = 0, n-1 do
        for j = 0, m-1 do {
            pq[i, j] := 0.0;
            for kk = 0, l-1 do
                pq[i, j] += P0[i, kk] * Q0[kk, j];
            err[i, j] := R[i, j] - pq[i, j];
            for kk = 0, l-1 do {
                P[i, kk] += a * (2.0 * err[i, j] * Q0[kk, j] - b * P0[i, kk]);
                Q[kk, j] += a * (2.0 * err[i, j] * P0[i, kk] - b * Q0[kk, j]);
            };
        };
    for i = 0, n-1 do
        for kk = 0, l-1 do
            P0[i, kk] := P[i, kk];
    for kk = 0, l-1 do
        for j = 0, m-1 do
            Q0[kk, j] := Q[kk, j];
};
"#;

// --------------------------------------------------- Table-1-only programs

/// Average of a dataset (Table 1).
pub const AVERAGE: &str = r#"
input V: vector[double];
input n: long;
var sum: double = 0.0;
var avg: double = 0.0;
for v in V do sum += v;
avg := sum / n;
"#;

/// Conditional Count (Table 1).
pub const CONDITIONAL_COUNT: &str = r#"
input V: vector[double];
var count: long = 0;
for v in V do
    if (v < 100.0) count += 1;
"#;

/// Count (Table 1).
pub const COUNT: &str = r#"
input V: vector[double];
var count: long = 0;
for v in V do count += 1;
"#;

/// Equal Frequency (Table 1): do all words occur equally often?
pub const EQUAL_FREQUENCY: &str = r#"
input words: vector[string];
var C: map[string, long] = map();
for w in words do C[w] += 1;
var mx: long = 0;
var mn: long = 1000000000;
for c in C do {
    mx := max(mx, c);
    mn := min(mn, c);
};
var eqf: bool = false;
eqf := mx == mn;
"#;

/// Sum (Table 1).
pub const SUM: &str = r#"
input V: vector[double];
var sum: double = 0.0;
for v in V do sum += v;
"#;

/// PCA over 2-D points (Table 1): means plus the covariance entries.
pub const PCA: &str = r#"
input P: vector[(double, double)];
input n: long;
var sx: double = 0.0;
var sy: double = 0.0;
var mx: double = 0.0;
var my: double = 0.0;
for p in P do {
    sx += p._1;
    sy += p._2;
};
mx := sx / n;
my := sy / n;
var cxx: double = 0.0;
var cxy: double = 0.0;
var cyy: double = 0.0;
for p in P do {
    cxx += (p._1 - mx) * (p._1 - mx);
    cxy += (p._1 - mx) * (p._2 - my);
    cyy += (p._2 - my) * (p._2 - my);
};
"#;

/// Every benchmark program with its name, in Table 1 order.
pub fn all_programs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Average", AVERAGE),
        ("Conditional Count", CONDITIONAL_COUNT),
        ("Conditional Sum", CONDITIONAL_SUM),
        ("Count", COUNT),
        ("Equal", EQUAL),
        ("Equal Frequency", EQUAL_FREQUENCY),
        ("String Match", STRING_MATCH),
        ("Sum", SUM),
        ("Word Count", WORD_COUNT),
        ("Histogram", HISTOGRAM),
        ("Matrix Multiplication", MATRIX_MULTIPLICATION),
        ("Linear Regression", LINEAR_REGRESSION),
        ("KMeans", KMEANS),
        ("PCA", PCA),
        ("PageRank", PAGERANK),
        ("Matrix Factorization", MATRIX_FACTORIZATION),
        ("Group By", GROUP_BY),
        ("Matrix Addition", MATRIX_ADDITION),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_program_parses_and_type_checks() {
        for (name, src) in all_programs() {
            let p = diablo_lang::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            diablo_lang::typecheck(p).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
