//! Random data generators matching the evaluation setup of §6.
//!
//! All generators are deterministic given a seed (`StdRng`), so benches
//! and tests are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use diablo_runtime::Value;

/// A deterministic RNG for a workload.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `RDD[Double]`-style vector of random doubles in `[0, hi)`, keyed 0..n.
pub fn random_doubles(n: usize, hi: f64, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| Value::pair(Value::Long(i as i64), Value::Double(r.gen::<f64>() * hi)))
        .collect()
}

/// Random 4-character strings drawn from `distinct` possibilities — the
/// Equal / String Match / Word Count dataset (§6 uses 1000 distinct
/// strings of length 4).
pub fn random_words(n: usize, distinct: usize, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    let lexicon: Vec<String> = (0..distinct).map(|i| format!("w{i:03}")).collect();
    (0..n)
        .map(|i| {
            let w = &lexicon[r.gen_range(0..lexicon.len())];
            Value::pair(Value::Long(i as i64), Value::str(w))
        })
        .collect()
}

/// A dataset where every element is the same word (the Equal benchmark's
/// positive case).
pub fn equal_words(n: usize, word: &str) -> Vec<Value> {
    (0..n)
        .map(|i| Value::pair(Value::Long(i as i64), Value::str(word)))
        .collect()
}

/// RGB pixels as records with components in `[0, 256)` (Histogram).
pub fn random_pixels(n: usize, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            Value::pair(
                Value::Long(i as i64),
                Value::record(vec![
                    ("red".into(), Value::Long(r.gen_range(0..256))),
                    ("green".into(), Value::Long(r.gen_range(0..256))),
                    ("blue".into(), Value::Long(r.gen_range(0..256))),
                ]),
            )
        })
        .collect()
}

/// Linear-regression points `(x + dx, x - dx)` with `x ∈ [0, 1000)` and
/// `dx ∈ [0, 10)` (§6).
pub fn linreg_points(n: usize, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            let x = r.gen::<f64>() * 1000.0;
            let dx = r.gen::<f64>() * 10.0;
            Value::pair(
                Value::Long(i as i64),
                Value::pair(Value::Double(x + dx), Value::Double(x - dx)),
            )
        })
        .collect()
}

/// Group-By input: records `⟨K, A⟩` with roughly `dup` occurrences of each
/// key (§6 uses ~10 duplicates on average).
pub fn group_pairs(n: usize, dup: usize, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    let keys = (n / dup).max(1) as i64;
    (0..n)
        .map(|i| {
            Value::pair(
                Value::Long(i as i64),
                Value::record(vec![
                    ("K".into(), Value::Long(r.gen_range(0..keys))),
                    ("A".into(), Value::Double(r.gen::<f64>() * 10.0)),
                ]),
            )
        })
        .collect()
}

/// A dense `d × d` matrix with every element provided, in random-ish order,
/// values in `[0, 10)` (§6: "although sparse, all matrix elements were
/// provided").
pub fn dense_matrix(d: usize, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    let mut rows: Vec<Value> = Vec::with_capacity(d * d);
    for i in 0..d as i64 {
        for j in 0..d as i64 {
            rows.push(Value::pair(
                Value::pair(Value::Long(i), Value::Long(j)),
                Value::Double(r.gen::<f64>() * 10.0),
            ));
        }
    }
    // Deterministic Fisher-Yates shuffle ("placed in random order", §6).
    for i in (1..rows.len()).rev() {
        let j = r.gen_range(0..=i);
        rows.swap(i, j);
    }
    rows
}

/// A sparse `d × d` matrix where only `fraction` of the elements exist,
/// with integer values in `[1, 5]` (the Matrix Factorization rating matrix,
/// §6).
pub fn sparse_matrix(d: usize, fraction: f64, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    let mut rows = Vec::new();
    for i in 0..d as i64 {
        for j in 0..d as i64 {
            if r.gen::<f64>() < fraction {
                rows.push(Value::pair(
                    Value::pair(Value::Long(i), Value::Long(j)),
                    Value::Double(r.gen_range(1..=5) as f64),
                ));
            }
        }
    }
    rows
}

/// A dense `rows × cols` factor matrix with values in `[0, 1)` (the MF
/// initial factors).
pub fn factor_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(rows * cols);
    for i in 0..rows as i64 {
        for j in 0..cols as i64 {
            out.push(Value::pair(
                Value::pair(Value::Long(i), Value::Long(j)),
                Value::Double(r.gen::<f64>()),
            ));
        }
    }
    out
}

/// K-Means points: random points inside a `grid × grid` arrangement of
/// unit squares with top-left corners at `(i*2+1, j*2+1)` (§6 uses a 10×10
/// grid, i.e. 100 true centroids).
pub fn kmeans_points(n: usize, grid: usize, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    (0..n)
        .map(|idx| {
            let i = r.gen_range(0..grid) as f64;
            let j = r.gen_range(0..grid) as f64;
            let x = i * 2.0 + 1.0 + r.gen::<f64>();
            let y = j * 2.0 + 1.0 + r.gen::<f64>();
            Value::pair(
                Value::Long(idx as i64),
                Value::pair(Value::Double(x), Value::Double(y)),
            )
        })
        .collect()
}

/// The K-Means initial centroids `(i*2+1.2, j*2+1.2)` (§6).
pub fn kmeans_centroids(grid: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(grid * grid);
    for i in 0..grid {
        for j in 0..grid {
            let idx = (i * grid + j) as i64;
            out.push(Value::pair(
                Value::Long(idx),
                Value::pair(
                    Value::Double(i as f64 * 2.0 + 1.2),
                    Value::Double(j as f64 * 2.0 + 1.2),
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_doubles(100, 200.0, 7), random_doubles(100, 200.0, 7));
        assert_ne!(random_doubles(100, 200.0, 7), random_doubles(100, 200.0, 8));
    }

    #[test]
    fn dense_matrix_covers_all_cells() {
        let m = dense_matrix(8, 3);
        assert_eq!(m.len(), 64);
        let mut keys: Vec<Value> = m
            .iter()
            .map(|p| diablo_runtime::array::key_value(p).unwrap().0)
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 64, "unique keys");
    }

    #[test]
    fn sparse_matrix_respects_fraction() {
        let m = sparse_matrix(50, 0.1, 11);
        let frac = m.len() as f64 / (50.0 * 50.0);
        assert!(frac > 0.05 && frac < 0.15, "got {frac}");
    }

    #[test]
    fn kmeans_points_live_in_their_squares() {
        let pts = kmeans_points(1000, 10, 5);
        for p in pts {
            let (_, xy) = diablo_runtime::array::key_value(&p).unwrap();
            let fields = xy.as_tuple().unwrap();
            let x = fields[0].as_double().unwrap();
            assert!((1.0..21.0).contains(&x));
        }
        assert_eq!(kmeans_centroids(10).len(), 100);
    }

    #[test]
    fn words_use_the_lexicon() {
        let ws = random_words(500, 10, 2);
        for w in ws {
            let (_, s) = diablo_runtime::array::key_value(&w).unwrap();
            assert!(s.as_str().unwrap().starts_with('w'));
        }
    }
}
