//! Local (driver-side) evaluation of comprehension expressions, with
//! dataset awareness.
//!
//! Scalar target expressions (while conditions, total aggregations after
//! Rule (16), scalar assignments) are evaluated on the driver — but their
//! sub-expressions may still reference datasets, e.g.
//! `sum := { sum + (+/{ v | (i, v) ← V }) }` after Rule (16). This module
//! routes such sub-comprehensions to the engine:
//!
//! * a comprehension that mentions a dataset runs as a pipeline
//!   ([`crate::pipeline::run_comp`]) and is collected back;
//! * an aggregation over such a comprehension becomes a *distributed
//!   reduce* (with map-side partials) instead of collect-then-fold;
//! * everything else is evaluated in memory.

use std::collections::HashMap;

use diablo_comp::ir::{CExpr, Comprehension, Qual};
use diablo_comp::Env;
use diablo_runtime::{RuntimeError, Value};

use crate::pipeline::run_comp;
use crate::{Binding, Result, Session};

/// Evaluates an expression on the driver. `env` holds local bindings
/// (e.g. comprehension variables); session scalars act as globals.
pub fn eval_local(e: &CExpr, env: &Env, sess: &Session) -> Result<Value> {
    match e {
        CExpr::Var(v) => {
            if let Some(val) = env.get(v) {
                return Ok(val.clone());
            }
            match sess.binding(v) {
                Some(Binding::Scalar(val)) => Ok(val.clone()),
                // Materializing a whole dataset on the driver is allowed
                // but only happens for small arrays used in scalar context.
                Some(Binding::Data(d)) => Ok(Value::bag(d.try_collect()?)),
                None => Err(RuntimeError::new(format!("undefined variable `{v}`"))),
            }
        }
        CExpr::Const(v) => Ok(v.clone()),
        CExpr::Bin(op, a, b) => {
            let a = eval_local(a, env, sess)?;
            let b = eval_local(b, env, sess)?;
            op.apply(&a, &b)
        }
        CExpr::Un(op, a) => op.apply(&eval_local(a, env, sess)?),
        CExpr::Call(f, args) => {
            let vals = args
                .iter()
                .map(|a| eval_local(a, env, sess))
                .collect::<Result<Vec<_>>>()?;
            f.apply(&vals)
        }
        CExpr::Tuple(fs) => Ok(Value::tuple(
            fs.iter()
                .map(|f| eval_local(f, env, sess))
                .collect::<Result<Vec<_>>>()?,
        )),
        CExpr::Record(fs) => Ok(Value::record(
            fs.iter()
                .map(|(n, f)| Ok((n.clone(), eval_local(f, env, sess)?)))
                .collect::<Result<Vec<_>>>()?,
        )),
        CExpr::Proj(inner, field) => {
            let v = eval_local(inner, env, sess)?;
            v.field(field)
                .cloned()
                .ok_or_else(|| RuntimeError::new(format!("value {v} has no field `{field}`")))
        }
        CExpr::Agg(op, inner) => {
            // Distributed reduce when the bag is dataset-backed.
            if let CExpr::Comp(c) = inner.as_ref() {
                if sess.datasets_mentioned(inner) && env.is_empty() {
                    let data = run_comp(c, sess)?;
                    let op = *op;
                    let reduced = data.reduce(move |a, b| op.op.apply(a, b))?;
                    return match reduced {
                        Some(v) => Ok(v),
                        None => op.reduce([].iter()),
                    };
                }
            }
            let v = eval_local(inner, env, sess)?;
            let items = v
                .as_bag()
                .ok_or_else(|| RuntimeError::new("aggregation over a non-bag"))?;
            op.reduce(items.iter())
        }
        CExpr::Comp(c) => {
            if sess.datasets_mentioned(e) && env.is_empty() {
                let data = run_comp(c, sess)?;
                Ok(Value::bag(data.try_collect()?))
            } else {
                Ok(Value::bag(local_comp(c, env, sess)?))
            }
        }
        CExpr::Merge {
            left,
            right,
            combine,
        } => {
            let l = eval_local(left, env, sess)?;
            let r = eval_local(right, env, sess)?;
            let (Some(xs), Some(ys)) = (l.as_bag(), r.as_bag()) else {
                return Err(RuntimeError::new("⊳ expects bags"));
            };
            match combine {
                None => Ok(Value::bag(diablo_runtime::merge_pairs(xs, ys)?)),
                Some(op) => Ok(Value::bag(diablo_comp::eval::merge_with(xs, ys, *op)?)),
            }
        }
        CExpr::Range(lo, hi) => {
            let lo = eval_local(lo, env, sess)?
                .as_long()
                .ok_or_else(|| RuntimeError::new("range bound must be long"))?;
            let hi = eval_local(hi, env, sess)?
                .as_long()
                .ok_or_else(|| RuntimeError::new("range bound must be long"))?;
            Ok(Value::bag((lo..=hi).map(Value::Long).collect()))
        }
    }
}

/// Local comprehension evaluation with dataset-aware sub-expressions.
/// Mirrors `diablo_comp::eval_comp`, but every expression goes through
/// [`eval_local`].
pub fn local_comp(c: &Comprehension, env: &Env, sess: &Session) -> Result<Vec<Value>> {
    let mut envs: Vec<Env> = vec![env.clone()];
    let mut local_vars: Vec<String> = Vec::new();
    for q in &c.quals {
        match q {
            Qual::Gen(p, dom) => {
                let mut next = Vec::new();
                for env in &envs {
                    let d = eval_local(dom, env, sess)?;
                    let items = d.as_bag().ok_or_else(|| {
                        RuntimeError::new(format!(
                            "generator domain must be a bag, got {}",
                            d.type_name()
                        ))
                    })?;
                    for item in items {
                        let mut binds = Vec::new();
                        if !p.bind(item, &mut binds) {
                            return Err(RuntimeError::new(format!(
                                "pattern {p:?} does not match {item}"
                            )));
                        }
                        let mut e2 = env.clone();
                        for (n, v) in binds {
                            e2.insert(n, v);
                        }
                        next.push(e2);
                    }
                }
                envs = next;
                local_vars.extend(p.var_list());
            }
            Qual::Let(p, e) => {
                for env in &mut envs {
                    let v = eval_local(e, env, sess)?;
                    let mut binds = Vec::new();
                    if !p.bind(&v, &mut binds) {
                        return Err(RuntimeError::new(format!(
                            "let pattern {p:?} does not match {v}"
                        )));
                    }
                    for (n, v) in binds {
                        env.insert(n, v);
                    }
                }
                local_vars.extend(p.var_list());
            }
            Qual::Pred(e) => {
                let mut next = Vec::with_capacity(envs.len());
                for env in envs {
                    match eval_local(e, &env, sess)?.as_bool() {
                        Some(true) => next.push(env),
                        Some(false) => {}
                        None => return Err(RuntimeError::new("condition must be boolean")),
                    }
                }
                envs = next;
            }
            Qual::GroupBy(p, key) => {
                let key_vars = p.var_list();
                let mut order: Vec<Value> = Vec::new();
                let mut groups: HashMap<Value, Vec<Env>> = HashMap::new();
                for env in envs {
                    let k = eval_local(key, &env, sess)?;
                    match groups.get_mut(&k) {
                        Some(g) => g.push(env),
                        None => {
                            order.push(k.clone());
                            groups.insert(k, vec![env]);
                        }
                    }
                }
                let lifted: Vec<String> = local_vars
                    .iter()
                    .filter(|v| !key_vars.contains(v))
                    .cloned()
                    .collect();
                let mut next = Vec::with_capacity(order.len());
                for k in order {
                    let members = &groups[&k];
                    let mut e2 = env.clone();
                    let mut binds = Vec::new();
                    if !p.bind(&k, &mut binds) {
                        return Err(RuntimeError::new("group-by pattern mismatch"));
                    }
                    for (n, v) in binds {
                        e2.insert(n, v);
                    }
                    for var in &lifted {
                        let bag: Vec<Value> =
                            members.iter().filter_map(|m| m.get(var).cloned()).collect();
                        e2.insert(var.clone(), Value::bag(bag));
                    }
                    next.push(e2);
                }
                envs = next;
                local_vars = key_vars;
                local_vars.extend(lifted);
            }
        }
    }
    envs.iter()
        .map(|env| eval_local(&c.head, env, sess))
        .collect()
}
