//! Compiles a comprehension into a pipeline of engine stages.
//!
//! The pipeline carries *environment rows*: each row is a tuple of the
//! values of the comprehension variables bound so far, with a [`Layout`]
//! mapping variable names to tuple positions. Qualifiers become stages:
//!
//! | qualifier                        | stage                              |
//! |----------------------------------|------------------------------------|
//! | first `p ← Array`                | partitioned scan                   |
//! | later `p ← Array` + `x == e(p)`  | hash join (predicates consumed)    |
//! | later `p ← Array` (no link)      | broadcast nested loop              |
//! | `p ← range(lo, hi)`              | range source / per-row expansion   |
//! | `let p = e`                      | map (extend row)                   |
//! | condition                        | filter                             |
//! | `group by` (aggregations only)   | reduceByKey with map-side combine  |
//! | `group by` (general)             | groupByKey (bags in rows)          |
//! | head                             | final map                          |
//!
//! Anything before the first distributed source is evaluated on the
//! driver; a comprehension with no distributed source at all is evaluated
//! locally and parallelized as a literal dataset.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use diablo_comp::ir::{CExpr, Comprehension, Pattern, Qual};
use diablo_comp::Env;
use diablo_dataflow::{Dataset, RowExpr};
use diablo_runtime::{BinOp, RuntimeError, Value};

use crate::local::{eval_local, local_comp};
use crate::rexpr::{agg_col_name, compile, rewrite_aggs, to_row_expr, Layout, RExpr};
use crate::{Result, Session};

/// Runs a comprehension, producing a dataset of its head values.
pub fn run_comp(c: &Comprehension, sess: &Session) -> Result<Dataset> {
    let globals = Arc::new(sess.globals());
    let mut pipe: Option<Pipe> = None;
    // Driver-side bindings accumulated before the first distributed source.
    let mut local_vars: Vec<String> = Vec::new();
    let mut locals: Vec<Env> = vec![Env::new()];
    let mut consumed: HashSet<usize> = HashSet::new();
    // Remaining qualifiers / head may be rewritten by aggregate pushdown.
    let mut quals: Vec<Qual> = c.quals.clone();
    let mut head: CExpr = (*c.head).clone();

    let mut i = 0;
    while i < quals.len() {
        if consumed.contains(&i) {
            i += 1;
            continue;
        }
        let q = quals[i].clone();
        match q {
            Qual::Let(p, e) => match &mut pipe {
                Some(pipe) => pipe.extend_let(&p, &e, &globals)?,
                None => {
                    for env in &mut locals {
                        let v = eval_local(&e, env, sess)?;
                        bind_into(&p, &v, env)?;
                    }
                    local_vars.extend(p.var_list());
                }
            },
            Qual::Pred(e) => match &mut pipe {
                Some(pipe) => pipe.filter(&e, &globals)?,
                None => {
                    let mut next = Vec::with_capacity(locals.len());
                    for env in locals {
                        match eval_local(&e, &env, sess)?.as_bool() {
                            Some(true) => next.push(env),
                            Some(false) => {}
                            None => return Err(RuntimeError::new("condition must be boolean")),
                        }
                    }
                    locals = next;
                    if locals.is_empty() {
                        return Ok(sess.context().empty());
                    }
                }
            },
            Qual::Gen(p, dom) => {
                // Classify the generator domain.
                let source: GenSource = classify(&dom, sess)?;
                match (&mut pipe, source) {
                    (None, GenSource::Data(data)) => {
                        pipe = Some(Pipe::source(data, &p, &local_vars, &locals, sess)?);
                    }
                    (None, GenSource::Range(lo, hi)) => {
                        if locals.len() != 1 {
                            // Multiple driver rows feeding a range source:
                            // fall back to local evaluation of the rest.
                            return finish_locally(&quals[i..], &head, &locals, &local_vars, sess);
                        }
                        let env = &locals[0];
                        let lo = eval_local(&lo, env, sess)?
                            .as_long()
                            .ok_or_else(|| RuntimeError::new("range bound must be long"))?;
                        let hi = eval_local(&hi, env, sess)?
                            .as_long()
                            .ok_or_else(|| RuntimeError::new("range bound must be long"))?;
                        let data = sess.context().range(lo, hi);
                        pipe = Some(Pipe::source(data, &p, &local_vars, &locals, sess)?);
                    }
                    (None, GenSource::Local) => {
                        let mut next = Vec::new();
                        for env in &locals {
                            let d = eval_local(&dom, env, sess)?;
                            let items = d.as_bag().ok_or_else(|| {
                                RuntimeError::new("generator domain must be a bag")
                            })?;
                            for item in items {
                                let mut e2 = env.clone();
                                bind_into(&p, item, &mut e2)?;
                                next.push(e2);
                            }
                        }
                        locals = next;
                        local_vars.extend(p.var_list());
                        if locals.is_empty() {
                            return Ok(sess.context().empty());
                        }
                    }
                    (Some(pipe), GenSource::Data(data)) => {
                        // Join detection: equality predicates between the
                        // current row variables and the new pattern.
                        let keys = find_join_keys(&quals, i, &p, pipe, &globals, &mut consumed);
                        if keys.is_empty() {
                            pipe.broadcast_product(&data, &p)?;
                        } else {
                            pipe.hash_join(&data, &p, &keys, &globals)?;
                        }
                    }
                    (Some(pipe), GenSource::Range(lo, hi)) => {
                        pipe.expand_range(&p, &lo, &hi, &globals)?;
                    }
                    (Some(pipe), GenSource::Local) => {
                        pipe.expand_bag(&p, &dom, &globals)?;
                    }
                }
            }
            Qual::GroupBy(p, key) => {
                let Some(cur) = pipe.take() else {
                    return finish_locally(&quals[i..], &head, &locals, &local_vars, sess);
                };
                let (next, rewritten) = cur.group_by(&p, &key, &quals[i + 1..], &head, &globals)?;
                pipe = Some(next);
                if let Some((new_tail, new_head)) = rewritten {
                    // Aggregate pushdown rewrote the remaining program.
                    quals.truncate(i + 1);
                    quals.extend(new_tail);
                    head = new_head;
                }
            }
        }
        i += 1;
    }

    match pipe {
        Some(pipe) => pipe.finish(&head, &globals),
        None => {
            // Fully local comprehension: evaluate and parallelize.
            let mut rows = Vec::new();
            for env in &locals {
                rows.push(eval_local(&head, env, sess)?);
            }
            Ok(sess.context().from_vec(rows))
        }
    }
}

/// Evaluates the remaining qualifiers and head entirely on the driver.
///
/// Variables bound on the driver so far are re-materialized as let
/// qualifiers so that a group-by in the tail lifts them to bags, exactly
/// as it would have lifted the original qualifiers.
fn finish_locally(
    tail: &[Qual],
    head: &CExpr,
    locals: &[Env],
    local_vars: &[String],
    sess: &Session,
) -> Result<Dataset> {
    let mut rows = Vec::new();
    for env in locals {
        let mut quals: Vec<Qual> = Vec::with_capacity(local_vars.len() + tail.len());
        for v in local_vars {
            let val = env
                .get(v)
                .cloned()
                .ok_or_else(|| RuntimeError::new(format!("missing driver binding `{v}`")))?;
            quals.push(Qual::Let(Pattern::Var(v.clone()), CExpr::Const(val)));
        }
        quals.extend(tail.iter().cloned());
        let comp = Comprehension::new(head.clone(), quals);
        rows.extend(local_comp(&comp, &Env::new(), sess)?);
    }
    Ok(sess.context().from_vec(rows))
}

enum GenSource {
    /// A distributed dataset (array variable or nested distributed comp).
    Data(Dataset),
    /// A for-loop iteration space.
    Range(CExpr, CExpr),
    /// Anything driver-side.
    Local,
}

fn classify(dom: &CExpr, sess: &Session) -> Result<GenSource> {
    match dom {
        CExpr::Var(name) if sess.is_dataset(name) => Ok(GenSource::Data(
            sess.dataset(name).expect("checked").clone(),
        )),
        CExpr::Range(lo, hi) => Ok(GenSource::Range((**lo).clone(), (**hi).clone())),
        CExpr::Comp(inner) if sess.datasets_mentioned(dom) => {
            Ok(GenSource::Data(run_comp(inner, sess)?))
        }
        CExpr::Merge { .. } if sess.datasets_mentioned(dom) => {
            Ok(GenSource::Data(sess.eval_collection(dom)?))
        }
        _ => Ok(GenSource::Local),
    }
}

fn bind_into(p: &Pattern, v: &Value, env: &mut Env) -> Result<()> {
    let mut binds = Vec::new();
    if !p.bind(v, &mut binds) {
        return Err(RuntimeError::new(format!(
            "pattern {p:?} does not match {v}"
        )));
    }
    for (n, val) in binds {
        env.insert(n, val);
    }
    Ok(())
}

/// A join key pair: left expression (over current rows) and right
/// expression (over the new generator's pattern variables).
struct JoinKey {
    left: CExpr,
    right: CExpr,
}

/// Scans the predicates following generator `gen_idx` (up to the next
/// generator or group-by) for equalities linking current row variables to
/// the new pattern variables. Matching predicates are consumed.
fn find_join_keys(
    quals: &[Qual],
    gen_idx: usize,
    p: &Pattern,
    pipe: &Pipe,
    globals: &Arc<Env>,
    consumed: &mut HashSet<usize>,
) -> Vec<JoinKey> {
    let pat_vars: HashSet<String> = p.var_list().into_iter().collect();
    let row_vars: HashSet<String> = pipe.layout.cols.iter().cloned().collect();
    let mut keys = Vec::new();
    for (j, q) in quals.iter().enumerate().skip(gen_idx + 1) {
        match q {
            Qual::Pred(CExpr::Bin(BinOp::Eq, a, b)) => {
                let side = |e: &CExpr| -> Option<bool> {
                    // true: row side; false: pattern side.
                    let fv = e.free_vars();
                    let local: Vec<&String> =
                        fv.iter().filter(|v| !globals.contains_key(*v)).collect();
                    if local.iter().all(|v| row_vars.contains(*v)) && !local.is_empty() {
                        Some(true)
                    } else if local.iter().all(|v| pat_vars.contains(*v)) && !local.is_empty() {
                        Some(false)
                    } else {
                        None
                    }
                };
                match (side(a), side(b)) {
                    (Some(true), Some(false)) => {
                        keys.push(JoinKey {
                            left: (**a).clone(),
                            right: (**b).clone(),
                        });
                        consumed.insert(j);
                    }
                    (Some(false), Some(true)) => {
                        keys.push(JoinKey {
                            left: (**b).clone(),
                            right: (**a).clone(),
                        });
                        consumed.insert(j);
                    }
                    _ => {}
                }
            }
            Qual::Pred(_) => {}
            _ => break, // next generator / let / group-by ends the window
        }
    }
    keys
}

/// A pipeline in flight: distributed env rows plus their layout.
struct Pipe {
    data: Dataset,
    layout: Layout,
}

impl Pipe {
    /// Starts a pipeline from a dataset source, crossing in the
    /// driver-side bindings accumulated so far.
    fn source(
        data: Dataset,
        p: &Pattern,
        local_vars: &[String],
        locals: &[Env],
        _sess: &Session,
    ) -> Result<Pipe> {
        let mut cols: Vec<String> = local_vars.to_vec();
        cols.extend(p.var_list());
        let layout = Layout::new(cols);
        let p = p.clone();
        let local_rows: Vec<Vec<Value>> = locals
            .iter()
            .map(|env| {
                local_vars
                    .iter()
                    .map(|v| env.get(v).cloned().unwrap_or(Value::Unit))
                    .collect()
            })
            .collect();
        // Fast path: one driver environment with no extra columns — one
        // output row per input row, no per-row Vec-of-Vecs.
        let rows = if local_rows.len() == 1 && local_rows[0].is_empty() {
            if matches!(p, Pattern::Var(_)) {
                // `v ← A` wraps each source row as a 1-tuple: transparent
                // to the engine, so the scan stage stays columnar-eligible.
                data.map_expr(RowExpr::Tuple(vec![RowExpr::Input]))?
            } else {
                data.map(move |raw| {
                    let mut row = Vec::with_capacity(4);
                    if !p.bind_values(raw, &mut row) {
                        return Err(RuntimeError::new(format!(
                            "pattern {p:?} does not match source row {raw}"
                        )));
                    }
                    Ok(Value::tuple(row))
                })?
            }
        } else {
            data.flat_map(move |raw| {
                let mut out = Vec::with_capacity(local_rows.len());
                for base in &local_rows {
                    let mut binds = Vec::new();
                    if !p.bind_values(raw, &mut binds) {
                        return Err(RuntimeError::new(format!(
                            "pattern {p:?} does not match source row {raw}"
                        )));
                    }
                    let mut row = base.clone();
                    row.extend(binds);
                    out.push(Value::tuple(row));
                }
                Ok(out)
            })?
        };
        Ok(Pipe { data: rows, layout })
    }

    /// `let p = e` as a map stage.
    fn extend_let(&mut self, p: &Pattern, e: &CExpr, globals: &Arc<Env>) -> Result<()> {
        let r = compile(e, &self.layout, globals)?;
        // A single-variable let over a structural expression extends the
        // row tuple as one transparent expression the engine can vectorize:
        // `(c0, …, cn-1, e)`.
        if matches!(p, Pattern::Var(_)) {
            if let Some(rx) = to_row_expr(&r) {
                let mut fields: Vec<RowExpr> =
                    (0..self.layout.cols.len()).map(RowExpr::Col).collect();
                fields.push(rx);
                self.data = self.data.map_expr(RowExpr::Tuple(fields))?;
                for v in p_vars(p.clone()) {
                    self.layout.push(v);
                }
                return Ok(());
            }
        }
        let p_owned = p.clone();
        let new_data = self.data.map(move |row| {
            let fields = row.as_tuple().expect("env row");
            let v = r.eval(fields)?;
            let mut out = fields.to_vec();
            if !p_owned.bind_values(&v, &mut out) {
                return Err(RuntimeError::new(format!(
                    "let pattern {p_owned:?} mismatch on {v}"
                )));
            }
            Ok(Value::tuple(out))
        })?;
        self.data = new_data;
        for v in p_vars(p.clone()) {
            self.layout.push(v);
        }
        Ok(())
    }

    /// A condition as a filter stage.
    fn filter(&mut self, e: &CExpr, globals: &Arc<Env>) -> Result<()> {
        let r = compile(e, &self.layout, globals)?;
        if let Some(rx) = to_row_expr(&r) {
            self.data = self.data.filter_expr(rx)?;
            return Ok(());
        }
        self.data = self.data.filter(move |row| {
            let fields = row.as_tuple().expect("env row");
            match r.eval(fields)?.as_bool() {
                Some(b) => Ok(b),
                None => Err(RuntimeError::new("condition must be boolean")),
            }
        })?;
        Ok(())
    }

    /// Joins a new dataset generator through equality keys.
    fn hash_join(
        &mut self,
        data: &Dataset,
        p: &Pattern,
        keys: &[JoinKey],
        globals: &Arc<Env>,
    ) -> Result<()> {
        // Left side: (key, row).
        let lkeys = keys
            .iter()
            .map(|k| compile(&k.left, &self.layout, globals))
            .collect::<Result<Vec<_>>>()?;
        let left = self.data.map(move |row| {
            let fields = row.as_tuple().expect("env row");
            let key = eval_key(&lkeys, fields)?;
            Ok(Value::pair(key, row.clone()))
        })?;
        // Right side: (key, raw), keys computed over the pattern binding.
        let pat_layout = Layout::new(p.var_list());
        let rkeys = keys
            .iter()
            .map(|k| compile(&k.right, &pat_layout, globals))
            .collect::<Result<Vec<_>>>()?;
        let p_owned = p.clone();
        let right = data.map(move |raw| {
            let mut pat_row = Vec::with_capacity(4);
            if !p_owned.bind_values(raw, &mut pat_row) {
                return Err(RuntimeError::new(format!(
                    "pattern {p_owned:?} does not match row {raw}"
                )));
            }
            let key = eval_key(&rkeys, &pat_row)?;
            Ok(Value::pair(key, raw.clone()))
        })?;
        let joined = left.join(&right)?;
        // (key, (left_row, raw)) → extended env row.
        let p_owned = p.clone();
        let new_data = joined.map(move |kv| {
            let (_, pair) = diablo_runtime::array::key_value(kv)?;
            let fields = pair.as_tuple().expect("join pair");
            let mut out = fields[0].as_tuple().expect("env row").to_vec();
            if !p_owned.bind_values(&fields[1], &mut out) {
                return Err(RuntimeError::new("join pattern mismatch"));
            }
            Ok(Value::tuple(out))
        })?;
        self.data = new_data;
        for v in p_vars(p.clone()) {
            self.layout.push(v);
        }
        Ok(())
    }

    /// Crosses the rows with a broadcast copy of the dataset (no join key).
    fn broadcast_product(&mut self, data: &Dataset, p: &Pattern) -> Result<()> {
        let items = data.broadcast()?;
        let p_owned = p.clone();
        let new_data = self.data.flat_map(move |row| {
            let fields = row.as_tuple().expect("env row");
            let mut out = Vec::with_capacity(items.len());
            for item in items.iter() {
                let mut r = fields.to_vec();
                if !p_owned.bind_values(item, &mut r) {
                    return Err(RuntimeError::new("broadcast pattern mismatch"));
                }
                out.push(Value::tuple(r));
            }
            Ok(out)
        })?;
        self.data = new_data;
        for v in p_vars(p.clone()) {
            self.layout.push(v);
        }
        Ok(())
    }

    /// Expands a per-row integer range.
    fn expand_range(
        &mut self,
        p: &Pattern,
        lo: &CExpr,
        hi: &CExpr,
        globals: &Arc<Env>,
    ) -> Result<()> {
        let rlo = compile(lo, &self.layout, globals)?;
        let rhi = compile(hi, &self.layout, globals)?;
        let p_owned = p.clone();
        let new_data = self.data.flat_map(move |row| {
            let fields = row.as_tuple().expect("env row");
            let lo = rlo
                .eval(fields)?
                .as_long()
                .ok_or_else(|| RuntimeError::new("range bound must be long"))?;
            let hi = rhi
                .eval(fields)?
                .as_long()
                .ok_or_else(|| RuntimeError::new("range bound must be long"))?;
            let mut out = Vec::with_capacity((hi - lo + 1).max(0) as usize);
            for i in lo..=hi {
                let mut r = fields.to_vec();
                if !p_owned.bind_values(&Value::Long(i), &mut r) {
                    return Err(RuntimeError::new("range pattern mismatch"));
                }
                out.push(Value::tuple(r));
            }
            Ok(out)
        })?;
        self.data = new_data;
        for v in p_vars(p.clone()) {
            self.layout.push(v);
        }
        Ok(())
    }

    /// Expands a per-row bag-valued domain (e.g. a lifted bag column).
    fn expand_bag(&mut self, p: &Pattern, dom: &CExpr, globals: &Arc<Env>) -> Result<()> {
        let r = compile(dom, &self.layout, globals)?;
        let p_owned = p.clone();
        let new_data = self.data.flat_map(move |row| {
            let fields = row.as_tuple().expect("env row");
            let bag = r.eval(fields)?;
            let items = bag
                .as_bag()
                .ok_or_else(|| RuntimeError::new("generator domain must be a bag"))?
                .to_vec();
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let mut rr = fields.to_vec();
                if !p_owned.bind_values(&item, &mut rr) {
                    return Err(RuntimeError::new("generator pattern mismatch"));
                }
                out.push(Value::tuple(rr));
            }
            Ok(out)
        })?;
        self.data = new_data;
        for v in p_vars(p.clone()) {
            self.layout.push(v);
        }
        Ok(())
    }

    /// The group-by stage. Tries aggregate pushdown (reduceByKey) first;
    /// falls back to groupByKey with lifted bags. Returns the new pipe and,
    /// when pushdown succeeded, the rewritten remaining qualifiers + head.
    #[allow(clippy::type_complexity)]
    fn group_by(
        self,
        p: &Pattern,
        key: &CExpr,
        tail: &[Qual],
        head: &CExpr,
        globals: &Arc<Env>,
    ) -> Result<(Pipe, Option<(Vec<Qual>, CExpr)>)> {
        let key_vars = p.var_list();
        let lifted: Vec<String> = self
            .layout
            .cols
            .iter()
            .filter(|c| !key_vars.contains(c))
            .cloned()
            .collect();
        let lifted_set: HashMap<String, ()> = lifted.iter().map(|v| (v.clone(), ())).collect();

        // Attempt aggregate pushdown: rewrite all downstream expressions.
        let mut found: Vec<(BinOp, String)> = Vec::new();
        let rewritten_tail: Option<Vec<Qual>> = tail
            .iter()
            .map(|q| match q {
                Qual::Gen(p, e) => Some(Qual::Gen(
                    p.clone(),
                    rewrite_aggs(e, &lifted_set, &mut found)?,
                )),
                Qual::Let(p, e) => Some(Qual::Let(
                    p.clone(),
                    rewrite_aggs(e, &lifted_set, &mut found)?,
                )),
                Qual::Pred(e) => Some(Qual::Pred(rewrite_aggs(e, &lifted_set, &mut found)?)),
                Qual::GroupBy(p, e) => Some(Qual::GroupBy(
                    p.clone(),
                    rewrite_aggs(e, &lifted_set, &mut found)?,
                )),
            })
            .collect();
        let rewritten_head = rewrite_aggs(head, &lifted_set, &mut found);

        let rkey = compile(key, &self.layout, globals)?;

        if let (Some(new_tail), Some(new_head)) = (rewritten_tail, rewritten_head) {
            // reduceByKey: shuffle (key, (inputs...)) with elementwise ops.
            let inputs: Vec<RExpr> = found
                .iter()
                .map(|(_, col)| {
                    let idx = self
                        .layout
                        .index_of(col)
                        .ok_or_else(|| RuntimeError::new(format!("missing column `{col}`")))?;
                    Ok(RExpr::Col(idx))
                })
                .collect::<Result<Vec<_>>>()?;
            let keyed = self.data.map(move |row| {
                let fields = row.as_tuple().expect("env row");
                let key = rkey.eval(fields)?;
                let vals = inputs
                    .iter()
                    .map(|r| r.eval(fields))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Value::pair(key, Value::tuple(vals)))
            })?;
            let ops: Vec<BinOp> = found.iter().map(|(op, _)| *op).collect();
            let ops2 = ops.clone();
            let reduced = keyed.reduce_by_key(move |a, b| {
                let (xs, ys) = (a.as_tuple().expect("aggs"), b.as_tuple().expect("aggs"));
                let vals = ops2
                    .iter()
                    .zip(xs.iter().zip(ys))
                    .map(|(op, (x, y))| op.apply(x, y))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Value::tuple(vals))
            })?;
            // Rows become: key pattern vars + $agg columns.
            let mut cols = key_vars.clone();
            for idx in 0..found.len() {
                cols.push(agg_col_name(idx));
            }
            let p_owned = p.clone();
            let data = reduced.map(move |kv| {
                let (k, aggs) = diablo_runtime::array::key_value(kv)?;
                let mut row: Vec<Value> = Vec::with_capacity(4);
                if !p_owned.bind_values(&k, &mut row) {
                    return Err(RuntimeError::new("group-by key pattern mismatch"));
                }
                row.extend(aggs.as_tuple().expect("agg tuple").iter().cloned());
                Ok(Value::tuple(row))
            })?;
            return Ok((
                Pipe {
                    data,
                    layout: Layout::new(cols),
                },
                Some((new_tail, new_head)),
            ));
        }

        // General groupByKey: lift every non-key column to a bag.
        let lifted_idx: Vec<usize> = lifted
            .iter()
            .map(|c| self.layout.index_of(c).expect("lifted column"))
            .collect();
        let lifted_idx2 = lifted_idx.clone();
        let keyed = self.data.map(move |row| {
            let fields = row.as_tuple().expect("env row");
            let key = rkey.eval(fields)?;
            let vals: Vec<Value> = lifted_idx2.iter().map(|&i| fields[i].clone()).collect();
            Ok(Value::pair(key, Value::tuple(vals)))
        })?;
        let grouped = keyed.group_by_key()?;
        let p_owned = p.clone();
        let nlifted = lifted.len();
        let data = grouped.map(move |kv| {
            let (k, bag) = diablo_runtime::array::key_value(kv)?;
            let mut row: Vec<Value> = Vec::with_capacity(4);
            if !p_owned.bind_values(&k, &mut row) {
                return Err(RuntimeError::new("group-by key pattern mismatch"));
            }
            let members = bag.as_bag().expect("group bag");
            for pos in 0..nlifted {
                let col: Vec<Value> = members
                    .iter()
                    .map(|m| m.as_tuple().expect("member tuple")[pos].clone())
                    .collect();
                row.push(Value::bag(col));
            }
            Ok(Value::tuple(row))
        })?;
        let mut cols = key_vars;
        cols.extend(lifted);
        Ok((
            Pipe {
                data,
                layout: Layout::new(cols),
            },
            None,
        ))
    }

    /// The final head map.
    fn finish(self, head: &CExpr, globals: &Arc<Env>) -> Result<Dataset> {
        let r = compile(head, &self.layout, globals)?;
        if let Some(rx) = to_row_expr(&r) {
            return self.data.map_expr(rx);
        }
        self.data
            .map(move |row| r.eval(row.as_tuple().expect("env row")))
    }
}

fn p_vars(p: Pattern) -> Vec<String> {
    p.var_list()
}

fn eval_key(keys: &[RExpr], row: &[Value]) -> Result<Value> {
    if keys.len() == 1 {
        keys[0].eval(row)
    } else {
        Ok(Value::tuple(
            keys.iter()
                .map(|k| k.eval(row))
                .collect::<Result<Vec<_>>>()?,
        ))
    }
}
