//! Row expressions: comprehension-calculus expressions compiled against a
//! pipeline row layout.
//!
//! Pipeline rows are tuples of column values. Compiling a [`CExpr`] once
//! per stage resolves every variable to either a column index, a global
//! scalar constant, or (for rare shapes like nested comprehensions over
//! already-lifted bags) a slow path that rebuilds an environment per row.

use std::collections::HashMap;
use std::sync::Arc;

use diablo_comp::ir::CExpr;
use diablo_comp::Env;
use diablo_dataflow::RowExpr;
use diablo_runtime::{AggOp, BinOp, Func, RuntimeError, UnOp, Value};

use crate::Result;

/// A compiled row expression.
#[derive(Debug, Clone)]
pub enum RExpr {
    /// Read column `i` of the row.
    Col(usize),
    /// A constant (literals and resolved globals).
    Const(Value),
    /// Binary operation.
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
    /// Unary operation.
    Un(UnOp, Box<RExpr>),
    /// Builtin call.
    Call(Func, Vec<RExpr>),
    /// Tuple construction.
    Tuple(Vec<RExpr>),
    /// Record construction.
    Record(Vec<(String, RExpr)>),
    /// Field projection.
    Proj(Box<RExpr>, String),
    /// Aggregation over a bag-valued sub-expression (a lifted column).
    Agg(AggOp, Box<RExpr>),
    /// Slow path: evaluate the original expression with a per-row
    /// environment (used for nested comprehensions in row position).
    Slow {
        /// The original expression.
        expr: Arc<CExpr>,
        /// Columns the expression needs, as `(name, index)` pairs.
        cols: Vec<(String, usize)>,
        /// Pre-resolved globals (scalars only).
        globals: Arc<Env>,
    },
}

/// The column layout of a pipeline: variable name per tuple position.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Layout {
    /// Column names in row order.
    pub cols: Vec<String>,
}

impl Layout {
    /// Creates a layout from column names.
    pub fn new(cols: Vec<String>) -> Layout {
        Layout { cols }
    }

    /// The index of a column.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == name)
    }

    /// Adds a column, returning its index.
    pub fn push(&mut self, name: String) -> usize {
        self.cols.push(name);
        self.cols.len() - 1
    }
}

/// Compiles an expression against a layout and globals. Unresolvable
/// variables are an error (dataset names must have been handled upstream).
pub fn compile(e: &CExpr, layout: &Layout, globals: &Arc<Env>) -> Result<RExpr> {
    match e {
        CExpr::Var(v) => {
            if let Some(i) = layout.index_of(v) {
                Ok(RExpr::Col(i))
            } else if let Some(val) = globals.get(v) {
                Ok(RExpr::Const(val.clone()))
            } else {
                Err(RuntimeError::new(format!(
                    "variable `{v}` is not available in this pipeline stage"
                )))
            }
        }
        CExpr::Const(v) => Ok(RExpr::Const(v.clone())),
        CExpr::Bin(op, a, b) => Ok(RExpr::Bin(
            *op,
            Box::new(compile(a, layout, globals)?),
            Box::new(compile(b, layout, globals)?),
        )),
        CExpr::Un(op, a) => Ok(RExpr::Un(*op, Box::new(compile(a, layout, globals)?))),
        CExpr::Call(f, args) => Ok(RExpr::Call(
            *f,
            args.iter()
                .map(|a| compile(a, layout, globals))
                .collect::<Result<Vec<_>>>()?,
        )),
        CExpr::Tuple(fs) => Ok(RExpr::Tuple(
            fs.iter()
                .map(|f| compile(f, layout, globals))
                .collect::<Result<Vec<_>>>()?,
        )),
        CExpr::Record(fs) => Ok(RExpr::Record(
            fs.iter()
                .map(|(n, f)| Ok((n.clone(), compile(f, layout, globals)?)))
                .collect::<Result<Vec<_>>>()?,
        )),
        CExpr::Proj(inner, f) => Ok(RExpr::Proj(
            Box::new(compile(inner, layout, globals)?),
            f.clone(),
        )),
        CExpr::Agg(op, inner) => Ok(RExpr::Agg(*op, Box::new(compile(inner, layout, globals)?))),
        CExpr::Comp(_) | CExpr::Merge { .. } | CExpr::Range(_, _) => {
            // Nested comprehension in row position: evaluate per row with a
            // reconstructed environment. Only the columns it actually
            // mentions are copied.
            let needed: Vec<(String, usize)> = e
                .free_vars()
                .into_iter()
                .filter_map(|v| layout.index_of(&v).map(|i| (v, i)))
                .collect();
            Ok(RExpr::Slow {
                expr: Arc::new(e.clone()),
                cols: needed,
                globals: Arc::clone(globals),
            })
        }
    }
}

impl RExpr {
    /// Evaluates the compiled expression against a row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            RExpr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| RuntimeError::new("row is narrower than its layout")),
            RExpr::Const(v) => Ok(v.clone()),
            RExpr::Bin(op, a, b) => op.apply(&a.eval(row)?, &b.eval(row)?),
            RExpr::Un(op, a) => op.apply(&a.eval(row)?),
            RExpr::Call(f, args) => {
                let vals = args
                    .iter()
                    .map(|a| a.eval(row))
                    .collect::<Result<Vec<_>>>()?;
                f.apply(&vals)
            }
            RExpr::Tuple(fs) => Ok(Value::tuple(
                fs.iter().map(|f| f.eval(row)).collect::<Result<Vec<_>>>()?,
            )),
            RExpr::Record(fs) => Ok(Value::record(
                fs.iter()
                    .map(|(n, f)| Ok((n.clone(), f.eval(row)?)))
                    .collect::<Result<Vec<_>>>()?,
            )),
            RExpr::Proj(inner, field) => {
                let v = inner.eval(row)?;
                v.field(field)
                    .cloned()
                    .ok_or_else(|| RuntimeError::new(format!("value {v} has no field `{field}`")))
            }
            RExpr::Agg(op, inner) => {
                let v = inner.eval(row)?;
                let items = v
                    .as_bag()
                    .ok_or_else(|| RuntimeError::new("aggregation over a non-bag column"))?;
                op.reduce(items.iter())
            }
            RExpr::Slow {
                expr,
                cols,
                globals,
            } => {
                let mut env: Env = globals.as_ref().clone();
                for (name, i) in cols {
                    env.insert(name.clone(), row[*i].clone());
                }
                diablo_comp::eval(expr, &env)
            }
        }
    }
}

/// Rewrites an expression, replacing each aggregation `⊕/v` of a lifted
/// column with a reference to a pre-aggregated column. Returns `None` if
/// the expression uses a lifted column outside such an aggregation (which
/// forces the groupByKey fallback).
pub fn rewrite_aggs(
    e: &CExpr,
    lifted: &HashMap<String, ()>,
    found: &mut Vec<(BinOp, String)>,
) -> Option<CExpr> {
    match e {
        CExpr::Agg(op, inner) => {
            if let CExpr::Var(v) = inner.as_ref() {
                if lifted.contains_key(v) {
                    let idx = found
                        .iter()
                        .position(|(o, n)| o == &op.op && n == v)
                        .unwrap_or_else(|| {
                            found.push((op.op, v.clone()));
                            found.len() - 1
                        });
                    return Some(CExpr::Var(agg_col_name(idx)));
                }
            }
            let inner = rewrite_aggs(inner, lifted, found)?;
            Some(CExpr::Agg(*op, Box::new(inner)))
        }
        CExpr::Var(v) => {
            if lifted.contains_key(v) {
                None // bare use of a lifted variable — cannot push down
            } else {
                Some(e.clone())
            }
        }
        CExpr::Const(_) => Some(e.clone()),
        CExpr::Bin(op, a, b) => Some(CExpr::Bin(
            *op,
            Box::new(rewrite_aggs(a, lifted, found)?),
            Box::new(rewrite_aggs(b, lifted, found)?),
        )),
        CExpr::Un(op, a) => Some(CExpr::Un(*op, Box::new(rewrite_aggs(a, lifted, found)?))),
        CExpr::Call(f, args) => Some(CExpr::Call(
            *f,
            args.iter()
                .map(|a| rewrite_aggs(a, lifted, found))
                .collect::<Option<Vec<_>>>()?,
        )),
        CExpr::Tuple(fs) => Some(CExpr::Tuple(
            fs.iter()
                .map(|f| rewrite_aggs(f, lifted, found))
                .collect::<Option<Vec<_>>>()?,
        )),
        CExpr::Record(fs) => Some(CExpr::Record(
            fs.iter()
                .map(|(n, f)| Some((n.clone(), rewrite_aggs(f, lifted, found)?)))
                .collect::<Option<Vec<_>>>()?,
        )),
        CExpr::Proj(inner, f) => Some(CExpr::Proj(
            Box::new(rewrite_aggs(inner, lifted, found)?),
            f.clone(),
        )),
        // Nested comprehensions might close over lifted variables; checking
        // precisely is possible but not worth it — fall back.
        CExpr::Comp(_) | CExpr::Merge { .. } | CExpr::Range(_, _) => {
            let fv = e.free_vars();
            if fv.iter().any(|v| lifted.contains_key(v)) {
                None
            } else {
                Some(e.clone())
            }
        }
    }
}

/// The synthetic column name for the `idx`-th pushed-down aggregation.
pub fn agg_col_name(idx: usize) -> String {
    format!("$agg{idx}")
}

/// Converts a compiled row expression into the engine's transparent
/// [`RowExpr`] IR when it is purely structural — arithmetic, comparisons,
/// builtin calls, tuples, and field projections over row columns. Pipeline
/// rows are tuples, so `Col(i)` maps to the engine's tuple-field access
/// with identical evaluation order and error messages (both sides bottom
/// out in the same runtime `apply` functions).
///
/// `Record` construction, bag aggregations, and the slow
/// nested-comprehension path have no columnar interpretation and return
/// `None` — the stage keeps its opaque closure and the columnar backend
/// demotes it to tuple-at-a-time.
pub fn to_row_expr(r: &RExpr) -> Option<RowExpr> {
    match r {
        RExpr::Col(i) => Some(RowExpr::Col(*i)),
        RExpr::Const(v) => Some(RowExpr::Const(v.clone())),
        RExpr::Bin(op, a, b) => Some(RowExpr::Bin(
            *op,
            Box::new(to_row_expr(a)?),
            Box::new(to_row_expr(b)?),
        )),
        RExpr::Un(op, a) => Some(RowExpr::Un(*op, Box::new(to_row_expr(a)?))),
        RExpr::Call(f, args) => Some(RowExpr::Call(
            *f,
            args.iter().map(to_row_expr).collect::<Option<Vec<_>>>()?,
        )),
        RExpr::Tuple(fs) => Some(RowExpr::Tuple(
            fs.iter().map(to_row_expr).collect::<Option<Vec<_>>>()?,
        )),
        RExpr::Proj(inner, f) => Some(RowExpr::Field(Box::new(to_row_expr(inner)?), f.clone())),
        RExpr::Record(_) | RExpr::Agg(_, _) | RExpr::Slow { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn globals() -> Arc<Env> {
        let mut g = Env::new();
        g.insert("n".into(), Value::Long(10));
        Arc::new(g)
    }

    #[test]
    fn compiles_columns_and_globals() {
        let layout = Layout::new(vec!["x".into(), "y".into()]);
        let e = CExpr::Bin(
            BinOp::Add,
            Box::new(CExpr::var("x")),
            Box::new(CExpr::var("n")),
        );
        let r = compile(&e, &layout, &globals()).unwrap();
        let row = vec![Value::Long(5), Value::Long(7)];
        assert_eq!(r.eval(&row).unwrap(), Value::Long(15));
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let layout = Layout::new(vec![]);
        assert!(compile(&CExpr::var("zzz"), &layout, &globals()).is_err());
    }

    #[test]
    fn agg_over_bag_column() {
        let layout = Layout::new(vec!["vs".into()]);
        let e = CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("vs")));
        let r = compile(&e, &layout, &globals()).unwrap();
        let row = vec![Value::bag(vec![Value::Long(1), Value::Long(2)])];
        assert_eq!(r.eval(&row).unwrap(), Value::Long(3));
    }

    #[test]
    fn rewrite_aggs_finds_pushdown() {
        // (k, +/v) over lifted {v} → (k, $agg0)
        let lifted: HashMap<String, ()> = [("v".to_string(), ())].into();
        let e = CExpr::pair(
            CExpr::var("k"),
            CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("v"))),
        );
        let mut found = Vec::new();
        let out = rewrite_aggs(&e, &lifted, &mut found).unwrap();
        assert_eq!(found, vec![(BinOp::Add, "v".to_string())]);
        assert_eq!(
            out,
            CExpr::pair(CExpr::var("k"), CExpr::var(agg_col_name(0)))
        );
    }

    #[test]
    fn rewrite_aggs_rejects_bare_lifted_use() {
        let lifted: HashMap<String, ()> = [("v".to_string(), ())].into();
        let mut found = Vec::new();
        assert!(rewrite_aggs(&CExpr::var("v"), &lifted, &mut found).is_none());
    }

    #[test]
    fn rewrite_aggs_shares_equal_aggregations() {
        let lifted: HashMap<String, ()> = [("v".to_string(), ())].into();
        let agg = CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("v")));
        let e = CExpr::Bin(BinOp::Add, Box::new(agg.clone()), Box::new(agg));
        let mut found = Vec::new();
        let out = rewrite_aggs(&e, &lifted, &mut found).unwrap();
        assert_eq!(found.len(), 1, "same aggregation shares one column");
        assert_eq!(
            out,
            CExpr::Bin(
                BinOp::Add,
                Box::new(CExpr::var(agg_col_name(0))),
                Box::new(CExpr::var(agg_col_name(0)))
            )
        );
    }

    #[test]
    fn structural_expressions_convert_to_row_exprs() {
        let layout = Layout::new(vec!["x".into(), "y".into()]);
        let e = CExpr::Bin(
            BinOp::Mul,
            Box::new(CExpr::Bin(
                BinOp::Add,
                Box::new(CExpr::var("x")),
                Box::new(CExpr::var("n")),
            )),
            Box::new(CExpr::var("y")),
        );
        let r = compile(&e, &layout, &globals()).unwrap();
        let rx = to_row_expr(&r).expect("structural");
        // The RowExpr path over the whole row tuple agrees with the RExpr
        // path over the field slice.
        let fields = vec![Value::Long(5), Value::Long(3)];
        let row = Value::tuple(fields.clone());
        assert_eq!(rx.eval(&row).unwrap(), r.eval(&fields).unwrap());
        assert_eq!(rx.eval(&row).unwrap(), Value::Long(45));
    }

    #[test]
    fn records_aggs_and_slow_paths_do_not_convert() {
        let layout = Layout::new(vec!["vs".into()]);
        let agg = CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("vs")));
        let r = compile(&agg, &layout, &globals()).unwrap();
        assert!(to_row_expr(&r).is_none());
        let rec = CExpr::Record(vec![("a".into(), CExpr::var("vs"))]);
        let r = compile(&rec, &layout, &globals()).unwrap();
        assert!(to_row_expr(&r).is_none());
        // But an agg buried in a tuple poisons only that conversion.
        let t = CExpr::Tuple(vec![CExpr::var("vs"), agg]);
        let r = compile(&t, &layout, &globals()).unwrap();
        assert!(to_row_expr(&r).is_none());
    }

    #[test]
    fn slow_path_evaluates_nested_comprehensions() {
        use diablo_comp::ir::{Comprehension, Pattern, Qual};
        // { x + b | b ← bag } where bag is a column.
        let layout = Layout::new(vec!["bag".into(), "x".into()]);
        let comp = CExpr::Comp(Comprehension::new(
            CExpr::Bin(
                BinOp::Add,
                Box::new(CExpr::var("x")),
                Box::new(CExpr::var("b")),
            ),
            vec![Qual::Gen(Pattern::var("b"), CExpr::var("bag"))],
        ));
        let r = compile(&comp, &layout, &globals()).unwrap();
        assert!(matches!(r, RExpr::Slow { .. }));
        let row = vec![
            Value::bag(vec![Value::Long(1), Value::Long(2)]),
            Value::Long(10),
        ];
        assert_eq!(
            r.eval(&row).unwrap(),
            Value::bag(vec![Value::Long(11), Value::Long(12)])
        );
    }
}
