//! # diablo-exec
//!
//! Executes DIABLO target code on the dataflow engine. This crate is the
//! bridge the paper gets from DIQL (which compiles comprehensions to Spark
//! byte code, §6): it turns each comprehension into a pipeline of engine
//! stages —
//!
//! * generators over arrays become partitioned scans;
//! * equality conditions linking a new generator to already-bound
//!   variables become **hash joins** (the paper's translation of
//!   comprehensions to DISC joins [20]);
//! * generators with no linking condition become **broadcast
//!   nested-loop** products (how DIABLO's K-Means correlates points with
//!   the centroid array — the expensive plan the paper reports);
//! * `group by` becomes **reduceByKey** when every lifted variable is
//!   consumed by an aggregation (map-side combining), and **groupByKey**
//!   otherwise;
//! * the array merge `V ⊳ x` becomes a cogroup-style merge;
//! * everything that touches no dataset is evaluated locally.
//!
//! The public entry point is [`Session`]: bind inputs, [`Session::run`] a
//! [`CompiledProgram`], read results back.

mod local;
mod pipeline;
mod rexpr;

pub use local::eval_local;
pub use pipeline::run_comp;

use std::collections::HashMap;

use diablo_comp::CExpr;
use diablo_core::{CompiledProgram, TStmt};
use diablo_dataflow::{Context, Dataset};
use diablo_runtime::{RuntimeError, Value};

/// Result alias for execution.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// A variable binding in the driver state σ.
#[derive(Clone)]
pub enum Binding {
    /// A scalar value.
    Scalar(Value),
    /// A distributed collection of `(key, value)` rows.
    Data(Dataset),
}

impl std::fmt::Debug for Binding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Binding::Scalar(v) => write!(f, "Scalar({v})"),
            Binding::Data(d) => write!(f, "Data({d:?})"),
        }
    }
}

/// The driver session: engine context plus the state σ mapping program
/// variables to scalars or datasets.
///
/// ## Laziness
///
/// By default the session is **lazy across statements**: a collection
/// assignment whose result feeds at most one downstream statement (per
/// [`diablo_core::lazy_assignments`]) binds its *plan* instead of forcing
/// a materialization, so the producer's pending stage fuses into the
/// consumer's — `X := …; Y := f(X)` runs the tail of `X` inside `Y`'s
/// stage. Materialization happens only at reads: a multi-consumer or
/// loop-involved assignment, [`Session::collect`]/[`Session::scalar`]
/// after the run, [`Session::explain`], and the end of [`Session::run`],
/// which forces every still-pending binding so deferred operator errors
/// surface from `run` itself. Error locality is preserved by tagging plan
/// nodes with their source statement (`s3:X`): an error raised inside a
/// fused cross-statement stage names the statement that built the failing
/// operator, and the executed-plan trace lists every statement a fused
/// stage spans.
///
/// [`Session::eager`] disables cross-statement laziness (every assignment
/// materializes, the pre-lazy behavior) — the reference the lazy mode's
/// property tests compare against.
pub struct Session {
    ctx: Context,
    state: HashMap<String, Binding>,
    lazy: bool,
    /// Lazily bound collection names awaiting their end-of-run forcing,
    /// in binding order, with the statement tag that produced each.
    pending: Vec<(String, String)>,
}

impl Session {
    /// Creates a session on the given engine context (lazy across
    /// statements; see the type-level docs).
    pub fn new(ctx: Context) -> Session {
        Session {
            ctx,
            state: HashMap::new(),
            lazy: true,
            pending: Vec::new(),
        }
    }

    /// Creates a session that materializes at every assignment — the
    /// eager per-statement reference semantics.
    pub fn eager(ctx: Context) -> Session {
        Session {
            lazy: false,
            ..Session::new(ctx)
        }
    }

    /// True when the session fuses statements lazily.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// The engine context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Binds a scalar input.
    pub fn bind_scalar(&mut self, name: &str, v: impl Into<Value>) {
        self.state
            .insert(name.to_string(), Binding::Scalar(v.into()));
    }

    /// Binds a collection input from `(key, value)` pair rows.
    ///
    /// Array keys are expected to be unique (arrays are key-value maps,
    /// §3.4); duplicates keep engine semantics (last merge wins) but are
    /// not deduplicated here.
    pub fn bind_input(&mut self, name: &str, rows: Vec<Value>) {
        let data = self.ctx.from_vec(rows);
        self.state.insert(name.to_string(), Binding::Data(data));
    }

    /// Binds an existing dataset.
    pub fn bind_dataset(&mut self, name: &str, data: Dataset) {
        self.state.insert(name.to_string(), Binding::Data(data));
    }

    /// Reads a scalar result.
    pub fn scalar(&self, name: &str) -> Option<Value> {
        match self.state.get(name)? {
            Binding::Scalar(v) => Some(v.clone()),
            Binding::Data(_) => None,
        }
    }

    /// Reads a collection result as sorted `(key, value)` rows.
    pub fn collect(&self, name: &str) -> Option<Vec<Value>> {
        match self.state.get(name)? {
            Binding::Data(d) => Some(d.collect_sorted()),
            Binding::Scalar(_) => None,
        }
    }

    /// Reads a collection result as a dataset handle.
    pub fn dataset(&self, name: &str) -> Option<&Dataset> {
        match self.state.get(name)? {
            Binding::Data(d) => Some(d),
            Binding::Scalar(_) => None,
        }
    }

    /// Looks up any binding.
    pub fn binding(&self, name: &str) -> Option<&Binding> {
        self.state.get(name)
    }

    /// Renders the **executed physical plan** of `program`: runs it
    /// against a scratch copy of the current state with plan tracing
    /// enabled and returns one line per physical stage, shuffle and
    /// broadcast, interleaved with statement markers.
    ///
    /// Because plans are built per input (a `while` can change the shape),
    /// explain executes the program for real — bind representative inputs
    /// first. The session's own state is left untouched.
    pub fn explain(&self, program: &CompiledProgram) -> Result<String> {
        let mut scratch = Session {
            ctx: self.ctx.clone(),
            state: self.state.clone(),
            lazy: self.lazy,
            pending: Vec::new(),
        };
        self.ctx.start_plan_trace();
        let run = scratch.run(program);
        let lines = self.ctx.take_plan_trace();
        run?;
        let budget = match self.ctx.memory_budget() {
            Some(b) => format!(", memory budget {b} B"),
            None => String::new(),
        };
        let mut out = format!(
            "physical plan (executed on `{}` backend, narrow chains fused{budget}):\n",
            self.ctx.executor().name()
        );
        for l in &lines {
            if l.starts_with("==") {
                out.push_str(l);
            } else {
                out.push_str("  ");
                out.push_str(l);
            }
            out.push('\n');
        }
        Ok(out)
    }

    /// Runs a compiled program against the current state.
    ///
    /// Eligible assignments stay lazy during the run (see the type-level
    /// docs); before returning, every still-pending binding is forced so
    /// any deferred operator error surfaces here, tagged with the
    /// statement that built the failing operator.
    pub fn run(&mut self, program: &CompiledProgram) -> Result<()> {
        for (name, _) in &program.inputs {
            if !self.state.contains_key(name) {
                return Err(RuntimeError::new(format!("input `{name}` was not bound")));
            }
        }
        let eligible = diablo_core::lazy_assignments(&program.stmts);
        let mut slot = 0usize;
        for s in &program.stmts {
            let r = self.exec(s, &eligible, &mut slot);
            if r.is_err() {
                self.ctx.set_statement_label(None);
                // Settle lazy bindings even on a failed run: healthy plans
                // materialize, broken ones are dropped, so later reads
                // never panic on a deferred error. The run's own error
                // wins over any settling error.
                let _ = self.settle_pending();
                return r;
            }
        }
        match self.settle_pending() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Forces every lazily bound collection, in binding order, tagging
    /// errors with their source statement. A binding whose plan fails is
    /// removed from the state (matching eager semantics, where a failed
    /// assignment never binds); the first failure is returned, but every
    /// binding is settled regardless.
    /// Settles one still-pending binding (no-op if `name` is not
    /// pending): forces it, dropping it and returning the tagged error if
    /// its plan fails.
    fn settle_one(&mut self, name: &str) -> Result<()> {
        let Some(pos) = self.pending.iter().position(|(n, _)| n == name) else {
            return Ok(());
        };
        let (name, tag) = self.pending.remove(pos);
        if let Some(Binding::Data(d)) = self.state.get(&name) {
            if let Err(e) = d.materialize() {
                self.state.remove(&name);
                return Err(e.with_context(&tag));
            }
        }
        Ok(())
    }

    fn settle_pending(&mut self) -> Option<RuntimeError> {
        let pending = std::mem::take(&mut self.pending);
        if pending.is_empty() {
            return None;
        }
        self.ctx
            .plan_note("== (materialize lazy results)".to_string());
        let mut first_err = None;
        for (name, tag) in pending {
            if let Some(Binding::Data(d)) = self.state.get(&name) {
                if let Err(e) = d.materialize() {
                    self.state.remove(&name);
                    if first_err.is_none() {
                        first_err = Some(e.with_context(&tag));
                    }
                }
            }
        }
        first_err
    }

    fn exec(&mut self, s: &TStmt, eligible: &[bool], slot: &mut usize) -> Result<()> {
        let my = *slot;
        *slot += 1;
        match s {
            TStmt::Assign {
                name,
                value,
                collection,
            } => {
                self.ctx.plan_note(format!(
                    "== s{my}: {name} := {} [{}]",
                    diablo_comp::pretty_cexpr(value),
                    if *collection { "array" } else { "scalar" }
                ));
                let tag = format!("s{my}:{name}");
                if *collection {
                    // A dead store over a still-pending binding would
                    // silently discard its deferred errors: if the new
                    // value does not read the old one (so evaluation will
                    // not consume its chain), settle just that binding
                    // first, exactly as the eager reference would have
                    // surfaced the error at the original assignment.
                    if !value.free_vars().contains(name) {
                        self.settle_one(name)?;
                    }
                    // Plan nodes built for this statement carry its tag,
                    // so stages and errors stay attributable however far
                    // fusion defers them.
                    self.ctx.set_statement_label(Some(&tag));
                    let data = self.eval_collection(value);
                    self.ctx.set_statement_label(None);
                    let data = data.map_err(|e| e.with_context(&tag))?;
                    self.pending.retain(|(n, _)| n != name);
                    let data = if self.lazy && eligible.get(my).copied().unwrap_or(false) {
                        // Lazy binding: the plan stays pending and fuses
                        // into its (single) consumer; `finalize` forces it
                        // if nothing did.
                        self.pending.push((name.clone(), tag));
                        data
                    } else {
                        data.materialize().map_err(|e| e.with_context(&tag))?
                    };
                    self.state.insert(name.clone(), Binding::Data(data));
                } else {
                    // Scalar assignment: the value is a bag of at most one
                    // element; an empty bag leaves the variable unchanged
                    // (sparse missing-element semantics).
                    let bag = eval_local(value, &HashMap::new(), self)
                        .map_err(|e| e.with_context(&tag))?;
                    let items = bag
                        .as_bag()
                        .ok_or_else(|| {
                            RuntimeError::new(format!(
                                "scalar assignment to `{name}` produced a {}",
                                bag.type_name()
                            ))
                        })?
                        .to_vec();
                    match items.len() {
                        0 => {}
                        1 => {
                            self.state.insert(
                                name.clone(),
                                Binding::Scalar(items.into_iter().next().expect("one")),
                            );
                        }
                        n => {
                            return Err(RuntimeError::new(format!(
                                "scalar assignment to `{name}` produced {n} values"
                            )))
                        }
                    }
                }
                Ok(())
            }
            TStmt::While { cond, body } => {
                self.ctx
                    .plan_note(format!("== while {}", diablo_comp::pretty_cexpr(cond)));
                // Body statements keep stable pre-order slots across
                // iterations (lazy_assignments marks them ineligible).
                let body_start = *slot;
                *slot += diablo_core::preorder_len(body);
                loop {
                    let v = eval_local(cond, &HashMap::new(), self)?;
                    let items = v
                        .as_bag()
                        .ok_or_else(|| RuntimeError::new("while condition must be a bag"))?;
                    let go = match items {
                        [] => false,
                        [b] => b
                            .as_bool()
                            .ok_or_else(|| RuntimeError::new("while condition must be boolean"))?,
                        _ => return Err(RuntimeError::new("while condition produced many values")),
                    };
                    if !go {
                        break;
                    }
                    let mut body_slot = body_start;
                    for s in body {
                        self.exec(s, eligible, &mut body_slot)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Evaluates a collection-valued expression to a dataset.
    pub(crate) fn eval_collection(&self, e: &CExpr) -> Result<Dataset> {
        match e {
            CExpr::Var(name) => match self.state.get(name) {
                Some(Binding::Data(d)) => Ok(d.clone()),
                Some(Binding::Scalar(Value::Bag(items))) => {
                    Ok(self.ctx.from_vec(items.as_ref().clone()))
                }
                Some(Binding::Scalar(v)) => Err(RuntimeError::new(format!(
                    "`{name}` is a scalar {} where a collection was expected",
                    v.type_name()
                ))),
                None => Err(RuntimeError::new(format!("undefined collection `{name}`"))),
            },
            CExpr::Const(Value::Bag(items)) => Ok(self.ctx.from_vec(items.as_ref().clone())),
            CExpr::Merge {
                left,
                right,
                combine,
            } => {
                let old = self.eval_collection(left)?;
                let new = self.eval_collection(right)?;
                match combine {
                    None => old.merge(&new, None::<fn(&Value, &Value) -> Result<Value>>),
                    Some(op) => {
                        let op = *op;
                        old.merge(&new, Some(move |a: &Value, b: &Value| op.apply(a, b)))
                    }
                }
            }
            CExpr::Comp(c) => run_comp(c, self),
            other => {
                // Fall back to local evaluation producing a bag.
                let v = eval_local(other, &HashMap::new(), self)?;
                match v {
                    Value::Bag(items) => Ok(self.ctx.from_vec(items.as_ref().clone())),
                    v => Err(RuntimeError::new(format!(
                        "expected a collection, got {}",
                        v.type_name()
                    ))),
                }
            }
        }
    }

    /// A snapshot of the scalar bindings, used as the globals environment
    /// for expression evaluation.
    pub(crate) fn globals(&self) -> HashMap<String, Value> {
        self.state
            .iter()
            .filter_map(|(n, b)| match b {
                Binding::Scalar(v) => Some((n.clone(), v.clone())),
                Binding::Data(_) => None,
            })
            .collect()
    }

    /// True if the name is bound to a dataset.
    pub(crate) fn is_dataset(&self, name: &str) -> bool {
        matches!(self.state.get(name), Some(Binding::Data(_)))
    }

    /// True if the expression mentions any dataset binding freely.
    pub(crate) fn datasets_mentioned(&self, e: &CExpr) -> bool {
        e.free_vars().iter().any(|v| self.is_dataset(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_core::compile;

    fn session() -> Session {
        Session::new(Context::new(4, 8))
    }

    fn long_pairs(entries: &[(i64, i64)]) -> Vec<Value> {
        entries
            .iter()
            .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
            .collect()
    }

    #[test]
    fn end_to_end_group_by_increment() {
        let compiled = compile(
            r#"
            input A: vector[<|K: long, V: long|>];
            var C: vector[long] = vector();
            for i = 0, 9 do C[A[i].K] += A[i].V;
        "#,
        )
        .unwrap();
        let mut s = session();
        let a = vec![(0, (3, 10)), (1, (5, 25)), (2, (3, 13))]
            .into_iter()
            .map(|(i, (k, v))| {
                Value::pair(
                    Value::Long(i),
                    Value::record(vec![
                        ("K".into(), Value::Long(k)),
                        ("V".into(), Value::Long(v)),
                    ]),
                )
            })
            .collect();
        s.bind_input("A", a);
        s.run(&compiled).unwrap();
        assert_eq!(s.collect("C").unwrap(), long_pairs(&[(3, 23), (5, 25)]));
    }

    #[test]
    fn end_to_end_scalar_sum() {
        let compiled = compile(
            r#"
            input V: vector[double];
            var sum: double = 0.0;
            for v in V do sum += v;
        "#,
        )
        .unwrap();
        let mut s = session();
        s.bind_input(
            "V",
            (0..100)
                .map(|i| Value::pair(Value::Long(i), Value::Double(i as f64)))
                .collect(),
        );
        s.run(&compiled).unwrap();
        assert_eq!(s.scalar("sum"), Some(Value::Double(4950.0)));
    }

    #[test]
    fn end_to_end_vector_copy() {
        let compiled = compile(
            r#"
            input W: vector[long];
            var V: vector[long] = vector();
            for i = 1, 10 do V[i] := W[i];
        "#,
        )
        .unwrap();
        let mut s = session();
        s.bind_input(
            "W",
            long_pairs(&[(0, 100), (5, 500), (10, 1000), (11, 1100)]),
        );
        s.run(&compiled).unwrap();
        assert_eq!(s.collect("V").unwrap(), long_pairs(&[(5, 500), (10, 1000)]));
    }

    #[test]
    fn end_to_end_matrix_multiplication() {
        let compiled = compile(
            r#"
            input M: matrix[double];
            input N: matrix[double];
            input d: long;
            var R: matrix[double] = matrix();
            for i = 0, d-1 do
              for j = 0, d-1 do {
                R[i, j] := 0.0;
                for k = 0, d-1 do
                  R[i, j] += M[i, k] * N[k, j];
              };
        "#,
        )
        .unwrap();
        let m = |entries: &[(i64, i64, f64)]| {
            entries
                .iter()
                .map(|&(i, j, v)| {
                    Value::pair(
                        Value::pair(Value::Long(i), Value::Long(j)),
                        Value::Double(v),
                    )
                })
                .collect::<Vec<_>>()
        };
        let mut s = session();
        s.bind_scalar("d", Value::Long(2));
        s.bind_input(
            "M",
            m(&[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]),
        );
        s.bind_input(
            "N",
            m(&[(0, 0, 5.0), (0, 1, 6.0), (1, 0, 7.0), (1, 1, 8.0)]),
        );
        s.run(&compiled).unwrap();
        assert_eq!(
            s.collect("R").unwrap(),
            m(&[(0, 0, 19.0), (0, 1, 22.0), (1, 0, 43.0), (1, 1, 50.0)])
        );
    }

    #[test]
    fn end_to_end_while_loop() {
        let compiled = compile(
            r#"
            var k: long = 0;
            var total: long = 0;
            while (k < 5) { k += 1; total += k; };
        "#,
        )
        .unwrap();
        let mut s = session();
        s.run(&compiled).unwrap();
        assert_eq!(s.scalar("total"), Some(Value::Long(15)));
    }

    #[test]
    fn end_to_end_range_initialization() {
        // A pure range source with no dataset: still parallelized.
        let compiled = compile(
            r#"
            var V: vector[double] = vector();
            for i = 1, 8 do V[i] := 0.5;
        "#,
        )
        .unwrap();
        let mut s = session();
        s.run(&compiled).unwrap();
        let rows = s.collect("V").unwrap();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0], Value::pair(Value::Long(1), Value::Double(0.5)));
    }

    #[test]
    fn unbound_input_is_reported() {
        let compiled = compile("input V: vector[long]; var s: long = 0;").unwrap();
        let mut s = session();
        let err = s.run(&compiled).unwrap_err();
        assert!(err.message.contains("was not bound"), "{err}");
    }

    #[test]
    fn word_count_end_to_end() {
        let compiled = compile(
            r#"
            input words: vector[string];
            var C: map[string, long] = map();
            for w in words do C[w] += 1;
        "#,
        )
        .unwrap();
        let mut s = session();
        let words = ["a", "b", "a", "c", "a", "b"];
        s.bind_input(
            "words",
            words
                .iter()
                .enumerate()
                .map(|(i, w)| Value::pair(Value::Long(i as i64), Value::str(w)))
                .collect(),
        );
        s.run(&compiled).unwrap();
        assert_eq!(
            s.collect("C").unwrap(),
            vec![
                Value::pair(Value::str("a"), Value::Long(3)),
                Value::pair(Value::str("b"), Value::Long(2)),
                Value::pair(Value::str("c"), Value::Long(1)),
            ]
        );
    }

    #[test]
    fn conditional_sum_end_to_end() {
        let compiled = compile(
            r#"
            input V: vector[double];
            var sum: double = 0.0;
            for v in V do
                if (v < 100.0) sum += v;
        "#,
        )
        .unwrap();
        let mut s = session();
        s.bind_input(
            "V",
            vec![
                Value::pair(Value::Long(0), Value::Double(5.0)),
                Value::pair(Value::Long(1), Value::Double(250.0)),
                Value::pair(Value::Long(2), Value::Double(7.5)),
            ],
        );
        s.run(&compiled).unwrap();
        assert_eq!(s.scalar("sum"), Some(Value::Double(12.5)));
    }
}
