//! Comprehension normalization.
//!
//! The workhorse is Rule (2) of §3.3:
//!
//! ```text
//! { e1 | q1, p ← { e2 | q3 }, q2 } = { e1 | q1, q3, let p = e2, q2 }
//! ```
//!
//! applicable when `q3` has no group-by or `q1` is empty, with renaming to
//! prevent variable capture. On top of unnesting this module performs:
//!
//! * **singleton-generator elimination** — `p ← {e}` becomes `let p = e`
//!   (the degenerate case of Rule (2));
//! * **tuple-let splitting** — `let (p1, p2) = (e1, e2)` becomes two lets;
//! * **let inlining** — lets whose right-hand side is a variable, constant,
//!   or projection chain are substituted downstream (never across a
//!   `group by`, which would change lifting);
//! * **predicate pushdown** — conditions move to the earliest position
//!   where their free variables are bound (within their group-by segment),
//!   so joins see their equality predicates adjacent to the generators;
//! * **constant folding** and removal of trivially-true conditions.

use std::collections::HashSet;

use diablo_runtime::Value;

use crate::ir::{CExpr, Comprehension, NameGen, Pattern, Qual};

/// Normalizes an expression (all comprehensions inside it) to fixpoint.
pub fn normalize(e: &CExpr, ng: &mut NameGen) -> CExpr {
    let mut cur = e.clone();
    // The passes are individually terminating and jointly confluent enough
    // in practice; a small iteration cap guards against ping-ponging.
    for _ in 0..8 {
        let next = norm_expr(&cur, ng);
        if next == cur {
            return next;
        }
        cur = next;
    }
    cur
}

fn norm_expr(e: &CExpr, ng: &mut NameGen) -> CExpr {
    match e {
        CExpr::Var(_) | CExpr::Const(_) => e.clone(),
        CExpr::Bin(op, a, b) => {
            let a = norm_expr(a, ng);
            let b = norm_expr(b, ng);
            fold_bin(*op, a, b)
        }
        CExpr::Un(op, a) => {
            let a = norm_expr(a, ng);
            if let CExpr::Const(v) = &a {
                if let Ok(folded) = op.apply(v) {
                    return CExpr::Const(folded);
                }
            }
            CExpr::Un(*op, Box::new(a))
        }
        CExpr::Call(f, args) => CExpr::Call(*f, args.iter().map(|a| norm_expr(a, ng)).collect()),
        CExpr::Tuple(fs) => CExpr::Tuple(fs.iter().map(|f| norm_expr(f, ng)).collect()),
        CExpr::Record(fs) => CExpr::Record(
            fs.iter()
                .map(|(n, f)| (n.clone(), norm_expr(f, ng)))
                .collect(),
        ),
        CExpr::Proj(inner, field) => {
            let inner = norm_expr(inner, ng);
            // Project out of literal tuples/records.
            match &inner {
                CExpr::Tuple(fs) => {
                    if let Some(idx) = field
                        .strip_prefix('_')
                        .and_then(|s| s.parse::<usize>().ok())
                        .and_then(|i| i.checked_sub(1))
                    {
                        if let Some(f) = fs.get(idx) {
                            return f.clone();
                        }
                    }
                }
                CExpr::Record(fs) => {
                    if let Some((_, f)) = fs.iter().find(|(n, _)| n == field) {
                        return f.clone();
                    }
                }
                _ => {}
            }
            CExpr::Proj(Box::new(inner), field.clone())
        }
        CExpr::Agg(op, inner) => {
            let inner = norm_expr(inner, ng);
            // ⊕/{e} = e
            if let Some(head) = inner.as_singleton() {
                return head.clone();
            }
            CExpr::Agg(*op, Box::new(inner))
        }
        CExpr::Merge {
            left,
            right,
            combine,
        } => CExpr::Merge {
            left: Box::new(norm_expr(left, ng)),
            right: Box::new(norm_expr(right, ng)),
            combine: *combine,
        },
        CExpr::Range(lo, hi) => {
            CExpr::Range(Box::new(norm_expr(lo, ng)), Box::new(norm_expr(hi, ng)))
        }
        CExpr::Comp(c) => norm_comp(c, ng),
    }
}

fn fold_bin(op: diablo_runtime::BinOp, a: CExpr, b: CExpr) -> CExpr {
    if let (CExpr::Const(x), CExpr::Const(y)) = (&a, &b) {
        if let Ok(v) = op.apply(x, y) {
            return CExpr::Const(v);
        }
    }
    CExpr::Bin(op, Box::new(a), Box::new(b))
}

fn norm_comp(c: &Comprehension, ng: &mut NameGen) -> CExpr {
    // Normalize constituent expressions first (bottom-up).
    let mut quals: Vec<Qual> = c
        .quals
        .iter()
        .map(|q| match q {
            Qual::Gen(p, e) => Qual::Gen(p.clone(), norm_expr(e, ng)),
            Qual::Let(p, e) => Qual::Let(p.clone(), norm_expr(e, ng)),
            Qual::Pred(e) => Qual::Pred(norm_expr(e, ng)),
            Qual::GroupBy(p, e) => Qual::GroupBy(p.clone(), norm_expr(e, ng)),
        })
        .collect();
    let mut head = norm_expr(&c.head, ng);

    quals = unnest(quals, ng);
    quals = split_tuple_lets(quals);
    (quals, head) = inline_lets(quals, head);
    quals = push_preds(quals);
    quals = drop_true_preds(quals);

    CExpr::Comp(Comprehension {
        head: Box::new(head),
        quals,
    })
}

/// Rule (2): splice generators over comprehensions into the qualifier list.
fn unnest(quals: Vec<Qual>, ng: &mut NameGen) -> Vec<Qual> {
    let mut out: Vec<Qual> = Vec::with_capacity(quals.len());
    for q in quals {
        match q {
            Qual::Gen(p, CExpr::Comp(inner)) => {
                let applicable = !inner.has_group_by() || out.is_empty();
                if !applicable {
                    out.push(Qual::Gen(p, CExpr::Comp(inner)));
                    continue;
                }
                // Alpha-rename the inner bound variables to fresh names to
                // prevent capture when splicing.
                let (inner_quals, inner_head) = alpha_rename(inner, ng);
                out.extend(inner_quals);
                out.push(Qual::Let(p, inner_head));
            }
            other => out.push(other),
        }
    }
    out
}

/// Renames all variables bound by the comprehension's qualifiers to fresh
/// names, returning the rewritten qualifiers and head.
fn alpha_rename(c: Comprehension, ng: &mut NameGen) -> (Vec<Qual>, CExpr) {
    let mut renames: Vec<(String, String)> = Vec::new();
    let apply = |e: &CExpr, renames: &[(String, String)]| -> CExpr {
        let mut out = e.clone();
        for (from, to) in renames {
            out = out.subst(from, &CExpr::Var(to.clone()));
        }
        out
    };
    let rename_pat = |p: &Pattern, renames: &mut Vec<(String, String)>, ng: &mut NameGen| {
        fn go(p: &Pattern, renames: &mut Vec<(String, String)>, ng: &mut NameGen) -> Pattern {
            match p {
                Pattern::Var(v) => {
                    let fresh = ng.fresh(v.split('#').next().unwrap_or(v));
                    renames.push((v.clone(), fresh.clone()));
                    Pattern::Var(fresh)
                }
                Pattern::Tuple(ps) => {
                    Pattern::Tuple(ps.iter().map(|p| go(p, renames, ng)).collect())
                }
                Pattern::Wild => Pattern::Wild,
            }
        }
        go(p, renames, ng)
    };
    let mut quals = Vec::with_capacity(c.quals.len());
    for q in &c.quals {
        let q2 = match q {
            Qual::Gen(p, e) => {
                let e = apply(e, &renames);
                let p = rename_pat(p, &mut renames, ng);
                Qual::Gen(p, e)
            }
            Qual::Let(p, e) => {
                let e = apply(e, &renames);
                let p = rename_pat(p, &mut renames, ng);
                Qual::Let(p, e)
            }
            Qual::Pred(e) => Qual::Pred(apply(e, &renames)),
            Qual::GroupBy(p, e) => {
                let e = apply(e, &renames);
                let p = rename_pat(p, &mut renames, ng);
                Qual::GroupBy(p, e)
            }
        };
        quals.push(q2);
    }
    let head = apply(&c.head, &renames);
    (quals, head)
}

/// `let (p1, ..., pn) = (e1, ..., en)` → `let p1 = e1, ..., let pn = en`.
fn split_tuple_lets(quals: Vec<Qual>) -> Vec<Qual> {
    let mut out = Vec::with_capacity(quals.len());
    for q in quals {
        match q {
            Qual::Let(Pattern::Tuple(ps), CExpr::Tuple(es)) if ps.len() == es.len() => {
                for (p, e) in ps.into_iter().zip(es) {
                    out.push(Qual::Let(p, e));
                }
            }
            other => out.push(other),
        }
    }
    out
}

/// True for right-hand sides cheap and safe to inline: variables,
/// constants, projection chains rooted at a variable, and shallow
/// arithmetic over those (e.g. the loop bound `d - 1`, which must inline
/// for the §3.6 range elimination to see invariant range bounds).
fn inlinable(e: &CExpr) -> bool {
    fn atom(e: &CExpr) -> bool {
        match e {
            CExpr::Var(_) | CExpr::Const(_) => true,
            CExpr::Proj(inner, _) => atom(inner),
            _ => false,
        }
    }
    match e {
        CExpr::Bin(_, a, b) => atom(a) && atom(b),
        CExpr::Un(_, a) => atom(a),
        other => atom(other),
    }
}

/// Inlines cheap lets downstream within their group-by segment.
fn inline_lets(quals: Vec<Qual>, head: CExpr) -> (Vec<Qual>, CExpr) {
    let mut out: Vec<Qual> = Vec::with_capacity(quals.len());
    // Pending substitutions (name → expr), cleared at group-by boundaries.
    let mut subs: Vec<(String, CExpr)> = Vec::new();
    let apply = |e: &CExpr, subs: &[(String, CExpr)]| -> CExpr {
        let mut out = e.clone();
        for (n, r) in subs {
            out = out.subst(n, r);
        }
        out
    };
    for q in quals {
        match q {
            Qual::Let(Pattern::Var(name), e) => {
                let e = apply(&e, &subs);
                if inlinable(&e) {
                    subs.push((name, e));
                } else {
                    out.push(Qual::Let(Pattern::Var(name), e));
                }
            }
            Qual::Let(p, e) => out.push(Qual::Let(p, apply(&e, &subs))),
            Qual::Gen(p, e) => out.push(Qual::Gen(p, apply(&e, &subs))),
            Qual::Pred(e) => out.push(Qual::Pred(apply(&e, &subs))),
            Qual::GroupBy(p, e) => {
                let e = apply(&e, &subs);
                // A variable lifted by the group-by must stay a let so the
                // lifting applies to it; re-materialize pending subs whose
                // value could be referenced after the group-by.
                let after_vars = p.var_list();
                for (n, r) in subs.drain(..) {
                    if !after_vars.contains(&n) {
                        out.push(Qual::Let(Pattern::Var(n), r));
                    }
                }
                out.push(Qual::GroupBy(p, e));
            }
        }
    }
    let head = apply(&head, &subs);
    (out, head)
}

/// Moves conditions to the earliest position where their free variables are
/// bound, within their group-by segment.
fn push_preds(quals: Vec<Qual>) -> Vec<Qual> {
    // Split into segments at group-by boundaries; push within each.
    let mut segments: Vec<Vec<Qual>> = vec![Vec::new()];
    for q in quals {
        let is_boundary = matches!(q, Qual::GroupBy(_, _));
        segments.last_mut().expect("nonempty").push(q);
        if is_boundary {
            segments.push(Vec::new());
        }
    }
    let mut out = Vec::new();
    for seg in segments {
        out.extend(push_preds_segment(seg));
    }
    out
}

fn push_preds_segment(quals: Vec<Qual>) -> Vec<Qual> {
    let mut others: Vec<Qual> = Vec::new();
    let mut preds: Vec<CExpr> = Vec::new();
    let mut trailing_group: Option<Qual> = None;
    for q in quals {
        match q {
            Qual::Pred(e) => preds.push(e),
            g @ Qual::GroupBy(_, _) => trailing_group = Some(g),
            other => others.push(other),
        }
    }
    // For each pred, find the first position after which all its free
    // variables are bound.
    let mut placed: Vec<Vec<CExpr>> = vec![Vec::new(); others.len() + 1];
    for pred in preds {
        let fv = pred.free_vars();
        let mut bound: HashSet<String> = HashSet::new();
        let mut pos = others.len();
        // Position 0 = before all quals (pred has no locally bound vars).
        let locally_bound: HashSet<String> = others.iter().flat_map(|q| q.bound_vars()).collect();
        let needed: HashSet<&String> = fv.iter().filter(|v| locally_bound.contains(*v)).collect();
        if needed.is_empty() {
            pos = 0;
        } else {
            for (i, q) in others.iter().enumerate() {
                for v in q.bound_vars() {
                    bound.insert(v);
                }
                if needed.iter().all(|v| bound.contains(*v)) {
                    pos = i + 1;
                    break;
                }
            }
        }
        placed[pos].push(pred);
    }
    let mut out = Vec::with_capacity(others.len() + placed.len());
    for p in placed[0].drain(..) {
        out.push(Qual::Pred(p));
    }
    for (i, q) in others.into_iter().enumerate() {
        out.push(q);
        for p in placed[i + 1].drain(..) {
            out.push(Qual::Pred(p));
        }
    }
    if let Some(g) = trailing_group {
        out.push(g);
    }
    out
}

fn drop_true_preds(quals: Vec<Qual>) -> Vec<Qual> {
    quals
        .into_iter()
        .filter(|q| !matches!(q, Qual::Pred(CExpr::Const(Value::Bool(true)))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};
    use diablo_runtime::{AggOp, BinOp};

    fn assert_same_meaning(e: &CExpr, env: &Env) {
        let mut ng = NameGen::new();
        let n = normalize(e, &mut ng);
        let before = eval(e, env).unwrap();
        let after = eval(&n, env).unwrap();
        // Bags are compared up to reordering.
        let canon = |v: &Value| match v.as_bag() {
            Some(items) => {
                let mut s = items.to_vec();
                s.sort();
                Value::bag(s)
            }
            None => v.clone(),
        };
        assert_eq!(canon(&before), canon(&after), "normalized: {n:?}");
    }

    fn pairs(entries: &[(i64, i64)]) -> Value {
        Value::bag(
            entries
                .iter()
                .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
                .collect(),
        )
    }

    #[test]
    fn unnests_nested_generators() {
        // { a * b | a ← {m | (i,m) ← M, i == 1}, b ← {n | (j,n) ← N, j == 1} }
        let inner_m = CExpr::Comp(Comprehension::new(
            CExpr::var("m"),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i"), Pattern::var("m")),
                    CExpr::var("M"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("i"), CExpr::long(1))),
            ],
        ));
        let inner_n = CExpr::Comp(Comprehension::new(
            CExpr::var("n"),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("j"), Pattern::var("n")),
                    CExpr::var("N"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("j"), CExpr::long(1))),
            ],
        ));
        let outer = CExpr::Comp(Comprehension::new(
            CExpr::Bin(
                BinOp::Mul,
                Box::new(CExpr::var("a")),
                Box::new(CExpr::var("b")),
            ),
            vec![
                Qual::Gen(Pattern::var("a"), inner_m),
                Qual::Gen(Pattern::var("b"), inner_n),
            ],
        ));
        let mut ng = NameGen::new();
        let n = normalize(&outer, &mut ng);
        let CExpr::Comp(c) = &n else { panic!() };
        assert!(
            c.quals
                .iter()
                .all(|q| !matches!(q, Qual::Gen(_, CExpr::Comp(_)))),
            "no nested generators remain: {c:?}"
        );
        let mut env = Env::new();
        env.insert("M".into(), pairs(&[(1, 2), (2, 3)]));
        env.insert("N".into(), pairs(&[(1, 10), (2, 20)]));
        assert_same_meaning(&outer, &env);
        let out = eval(&n, &env).unwrap();
        assert_eq!(out.as_bag().unwrap(), &[Value::Long(20)]);
    }

    #[test]
    fn singleton_generator_becomes_let_and_inlines() {
        // { x + 1 | x ← {41} } normalizes to { 42 | } effectively.
        let e = CExpr::Comp(Comprehension::new(
            CExpr::Bin(
                BinOp::Add,
                Box::new(CExpr::var("x")),
                Box::new(CExpr::long(1)),
            ),
            vec![Qual::Gen(
                Pattern::var("x"),
                CExpr::singleton(CExpr::long(41)),
            )],
        ));
        let mut ng = NameGen::new();
        let n = normalize(&e, &mut ng);
        let CExpr::Comp(c) = &n else { panic!() };
        assert!(c.quals.is_empty(), "{c:?}");
        assert_eq!(*c.head, CExpr::long(42));
    }

    #[test]
    fn preds_move_next_to_their_generators() {
        // { m | (i,m) ← M, (j,n) ← N, i == 1 } — the pred only needs i, so
        // it moves before N's generator.
        let e = CExpr::Comp(Comprehension::new(
            CExpr::var("m"),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i"), Pattern::var("m")),
                    CExpr::var("M"),
                ),
                Qual::Gen(
                    Pattern::pair(Pattern::var("j"), Pattern::var("n")),
                    CExpr::var("N"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("i"), CExpr::long(1))),
            ],
        ));
        let mut ng = NameGen::new();
        let n = normalize(&e, &mut ng);
        let CExpr::Comp(c) = &n else { panic!() };
        assert!(
            matches!(&c.quals[1], Qual::Pred(_)),
            "pred should sit right after M's generator: {:?}",
            c.quals
        );
    }

    #[test]
    fn does_not_unnest_group_by_under_prefix() {
        let inner = CExpr::Comp(Comprehension::new(
            CExpr::var("k"),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i"), Pattern::var("v")),
                    CExpr::var("V"),
                ),
                Qual::GroupBy(Pattern::var("k"), CExpr::var("i")),
            ],
        ));
        let outer = CExpr::Comp(Comprehension::new(
            CExpr::var("x"),
            vec![
                Qual::Gen(Pattern::var("w"), CExpr::var("W")),
                Qual::Gen(Pattern::var("x"), inner.clone()),
            ],
        ));
        let mut ng = NameGen::new();
        let n = normalize(&outer, &mut ng);
        let CExpr::Comp(c) = &n else { panic!() };
        assert!(
            matches!(&c.quals[1], Qual::Gen(_, CExpr::Comp(_))),
            "group-by under nonempty prefix must stay nested: {:?}",
            c.quals
        );
        // But with an empty prefix it may unnest.
        let outer2 = CExpr::Comp(Comprehension::new(
            CExpr::var("x"),
            vec![Qual::Gen(Pattern::var("x"), inner)],
        ));
        let n2 = normalize(&outer2, &mut ng);
        let CExpr::Comp(c2) = &n2 else { panic!() };
        assert!(c2.quals.iter().any(|q| matches!(q, Qual::GroupBy(_, _))));
    }

    #[test]
    fn normalization_preserves_group_by_meaning() {
        // { (k, +/v) | (i, v) ← { (a, b) | (a, b) ← V }, group by k : i }
        let inner = CExpr::Comp(Comprehension::new(
            CExpr::pair(CExpr::var("a"), CExpr::var("b")),
            vec![Qual::Gen(
                Pattern::pair(Pattern::var("a"), Pattern::var("b")),
                CExpr::var("V"),
            )],
        ));
        let outer = CExpr::Comp(Comprehension::new(
            CExpr::pair(
                CExpr::var("k"),
                CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("v"))),
            ),
            vec![
                Qual::Gen(Pattern::pair(Pattern::var("i"), Pattern::var("v")), inner),
                Qual::GroupBy(Pattern::var("k"), CExpr::var("i")),
            ],
        ));
        let mut env = Env::new();
        env.insert("V".into(), pairs(&[(1, 10), (1, 20), (2, 5)]));
        assert_same_meaning(&outer, &env);
    }

    #[test]
    fn constant_folding() {
        let e = CExpr::Bin(
            BinOp::Add,
            Box::new(CExpr::long(40)),
            Box::new(CExpr::long(2)),
        );
        let mut ng = NameGen::new();
        assert_eq!(normalize(&e, &mut ng), CExpr::long(42));
    }

    #[test]
    fn projection_of_literal_tuple_folds() {
        let e = CExpr::Proj(
            Box::new(CExpr::Tuple(vec![CExpr::long(7), CExpr::long(8)])),
            "_2".into(),
        );
        let mut ng = NameGen::new();
        assert_eq!(normalize(&e, &mut ng), CExpr::long(8));
    }

    #[test]
    fn agg_of_singleton_folds() {
        let e = CExpr::Agg(
            AggOp::new(BinOp::Add).unwrap(),
            Box::new(CExpr::singleton(CExpr::var("x"))),
        );
        let mut ng = NameGen::new();
        assert_eq!(normalize(&e, &mut ng), CExpr::var("x"));
    }

    #[test]
    fn inlining_does_not_cross_group_by() {
        // { (k, +/w) | (i, v) ← V, let w = v, group by k : i } — w must be
        // lifted; the let may not be inlined past the group-by.
        let e = CExpr::Comp(Comprehension::new(
            CExpr::pair(
                CExpr::var("k"),
                CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("w"))),
            ),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i"), Pattern::var("v")),
                    CExpr::var("V"),
                ),
                Qual::Let(Pattern::var("w"), CExpr::var("v")),
                Qual::GroupBy(Pattern::var("k"), CExpr::var("i")),
            ],
        ));
        let mut env = Env::new();
        env.insert("V".into(), pairs(&[(1, 10), (1, 20), (2, 5)]));
        assert_same_meaning(&e, &env);
    }
}
