//! The comprehension IR.
//!
//! This mirrors the calculus of §3.3 plus the handful of extra forms the
//! translation rules of Fig. 2 need: total aggregations `⊕/e`, the array
//! merge `X ⊳ Y` (optionally merging colliding keys with a monoid — see
//! `MERGE.md` note in the crate docs), and `range(lo, hi)` sources standing
//! for for-loop iteration spaces.

use std::collections::HashSet;

use diablo_runtime::{AggOp, BinOp, Func, UnOp, Value};

/// A pattern bound by a generator, let-binding, or group-by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// A variable pattern.
    Var(String),
    /// A tuple pattern `(p1, ..., pn)`.
    Tuple(Vec<Pattern>),
    /// The wildcard `_`.
    Wild,
}

impl Pattern {
    /// A pair pattern `(a, b)` — the shape of sparse-array traversals.
    pub fn pair(a: Pattern, b: Pattern) -> Pattern {
        Pattern::Tuple(vec![a, b])
    }

    /// A variable pattern.
    pub fn var(name: impl Into<String>) -> Pattern {
        Pattern::Var(name.into())
    }

    /// Collects the variables bound by this pattern, in order.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Pattern::Var(v) => out.push(v.clone()),
            Pattern::Tuple(ps) => {
                for p in ps {
                    p.vars(out);
                }
            }
            Pattern::Wild => {}
        }
    }

    /// The bound variables as a vector.
    pub fn var_list(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.vars(&mut out);
        out
    }

    /// Binds the pattern against a value, appending `(name, value)` pairs.
    /// Returns `false` on shape mismatch.
    pub fn bind(&self, v: &Value, out: &mut Vec<(String, Value)>) -> bool {
        match self {
            Pattern::Var(name) => {
                out.push((name.clone(), v.clone()));
                true
            }
            Pattern::Wild => true,
            Pattern::Tuple(ps) => match v.as_tuple() {
                Some(fields) if fields.len() == ps.len() => {
                    ps.iter().zip(fields).all(|(p, f)| p.bind(f, out))
                }
                _ => false,
            },
        }
    }

    /// Binds the pattern against a value, appending the bound values in
    /// [`Pattern::var_list`] order without cloning variable names — the
    /// allocation-free form used on the per-row hot path of the executor.
    pub fn bind_values(&self, v: &Value, out: &mut Vec<Value>) -> bool {
        match self {
            Pattern::Var(_) => {
                out.push(v.clone());
                true
            }
            Pattern::Wild => true,
            Pattern::Tuple(ps) => match v.as_tuple() {
                Some(fields) if fields.len() == ps.len() => {
                    ps.iter().zip(fields).all(|(p, f)| p.bind_values(f, out))
                }
                _ => false,
            },
        }
    }

    /// Rebuilds the pattern as an expression (tuples of variables).
    pub fn to_expr(&self) -> CExpr {
        match self {
            Pattern::Var(v) => CExpr::Var(v.clone()),
            Pattern::Tuple(ps) => CExpr::Tuple(ps.iter().map(Pattern::to_expr).collect()),
            Pattern::Wild => CExpr::Const(Value::Unit),
        }
    }
}

/// A qualifier of a comprehension.
#[derive(Debug, Clone, PartialEq)]
pub enum Qual {
    /// Generator `p ← e`; `e` must evaluate to a bag.
    Gen(Pattern, CExpr),
    /// Let-binding `let p = e`.
    Let(Pattern, CExpr),
    /// Condition (filter).
    Pred(CExpr),
    /// `group by p : e` — groups the bindings produced so far by the value
    /// of `e`, binds `p` to the key, and lifts every previously bound
    /// variable not in `p` to a bag.
    GroupBy(Pattern, CExpr),
}

impl Qual {
    /// Variables bound by this qualifier (empty for conditions).
    pub fn bound_vars(&self) -> Vec<String> {
        match self {
            Qual::Gen(p, _) | Qual::Let(p, _) | Qual::GroupBy(p, _) => p.var_list(),
            Qual::Pred(_) => Vec::new(),
        }
    }
}

/// A comprehension `{ head | quals }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Comprehension {
    /// The head expression.
    pub head: Box<CExpr>,
    /// The qualifiers, processed left to right.
    pub quals: Vec<Qual>,
}

impl Comprehension {
    /// Builds a comprehension.
    pub fn new(head: CExpr, quals: Vec<Qual>) -> Comprehension {
        Comprehension {
            head: Box::new(head),
            quals,
        }
    }

    /// True if any qualifier is a group-by.
    pub fn has_group_by(&self) -> bool {
        self.quals.iter().any(|q| matches!(q, Qual::GroupBy(_, _)))
    }
}

/// An expression of the comprehension calculus.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A variable (a pattern variable, or a program variable resolved from
    /// the driver state σ — scalars are values, arrays are bags of pairs).
    Var(String),
    /// A constant.
    Const(Value),
    /// Binary operation.
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    /// Unary operation.
    Un(UnOp, Box<CExpr>),
    /// Builtin function call.
    Call(Func, Vec<CExpr>),
    /// Tuple construction.
    Tuple(Vec<CExpr>),
    /// Record construction.
    Record(Vec<(String, CExpr)>),
    /// Field projection `e.A` / `e._1`.
    Proj(Box<CExpr>, String),
    /// A comprehension (bag-valued).
    Comp(Comprehension),
    /// Total aggregation `⊕/e` of a bag-valued expression.
    Agg(AggOp, Box<CExpr>),
    /// Array merge `left ⊳ right`. With `combine: Some(⊕)`, colliding keys
    /// are merged as `old ⊕ new` instead of replaced — the update form
    /// produced for incremental array updates (§3.7); with `None` it is the
    /// plain right-biased `⊳` of §3.4.
    Merge {
        /// The old array.
        left: Box<CExpr>,
        /// The update bag.
        right: Box<CExpr>,
        /// Optional combining monoid for keys present on both sides.
        combine: Option<BinOp>,
    },
    /// `range(lo, hi)` — the bag `{lo, lo+1, ..., hi}` (inclusive), the
    /// image of a for-loop iteration space (rule (15d)).
    Range(Box<CExpr>, Box<CExpr>),
}

impl CExpr {
    /// The singleton bag `{e}`.
    pub fn singleton(e: CExpr) -> CExpr {
        CExpr::Comp(Comprehension::new(e, Vec::new()))
    }

    /// A long constant.
    pub fn long(n: i64) -> CExpr {
        CExpr::Const(Value::Long(n))
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> CExpr {
        CExpr::Var(name.into())
    }

    /// Pair construction `(a, b)`.
    pub fn pair(a: CExpr, b: CExpr) -> CExpr {
        CExpr::Tuple(vec![a, b])
    }

    /// Equality test `a == b`.
    pub fn eq(a: CExpr, b: CExpr) -> CExpr {
        CExpr::Bin(BinOp::Eq, Box::new(a), Box::new(b))
    }

    /// True if this is a singleton-bag comprehension `{e}`, returning the
    /// head.
    pub fn as_singleton(&self) -> Option<&CExpr> {
        match self {
            CExpr::Comp(c) if c.quals.is_empty() => Some(&c.head),
            _ => None,
        }
    }

    /// True if any comprehension anywhere in this expression still carries a
    /// group-by qualifier after optimization — i.e. executing it performs a
    /// key re-partitioning (shuffle). Rule (17) eliminates the group-by when
    /// the key is the unique affine destination subscript; whatever survives
    /// is a real shuffle, which the shuffle-forecast lint reports.
    pub fn contains_group_by(&self) -> bool {
        match self {
            CExpr::Var(_) | CExpr::Const(_) => false,
            CExpr::Bin(_, a, b) => a.contains_group_by() || b.contains_group_by(),
            CExpr::Un(_, a) | CExpr::Agg(_, a) => a.contains_group_by(),
            CExpr::Call(_, args) => args.iter().any(|a| a.contains_group_by()),
            CExpr::Tuple(fs) => fs.iter().any(|a| a.contains_group_by()),
            CExpr::Record(fs) => fs.iter().any(|(_, a)| a.contains_group_by()),
            CExpr::Proj(a, _) => a.contains_group_by(),
            CExpr::Comp(c) => {
                c.has_group_by()
                    || c.head.contains_group_by()
                    || c.quals.iter().any(|q| match q {
                        Qual::Gen(_, e) | Qual::Let(_, e) | Qual::Pred(e) => e.contains_group_by(),
                        Qual::GroupBy(_, _) => true,
                    })
            }
            CExpr::Merge { left, right, .. } => {
                left.contains_group_by() || right.contains_group_by()
            }
            CExpr::Range(a, b) => a.contains_group_by() || b.contains_group_by(),
        }
    }

    /// Collects free variables (variables not bound by an enclosing
    /// comprehension qualifier within this expression).
    pub fn free_vars(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        self.visit_free(&mut HashSet::new(), &mut |v| {
            out.insert(v.to_string());
        });
        out
    }

    /// Number of free occurrences of `name`, with multiplicity (an
    /// expression mentioning a variable twice counts 2) — the consumer
    /// count behind the driver's cross-statement fusion analysis.
    pub fn free_occurrences(&self, name: &str) -> usize {
        let mut n = 0;
        self.visit_free(&mut HashSet::new(), &mut |v| {
            if v == name {
                n += 1;
            }
        });
        n
    }

    /// Calls `visit` for every free variable occurrence, left to right.
    fn visit_free(&self, bound: &mut HashSet<String>, visit: &mut dyn FnMut(&str)) {
        match self {
            CExpr::Var(v) => {
                if !bound.contains(v) {
                    visit(v);
                }
            }
            CExpr::Const(_) => {}
            CExpr::Bin(_, a, b) => {
                a.visit_free(bound, visit);
                b.visit_free(bound, visit);
            }
            CExpr::Un(_, a) => a.visit_free(bound, visit),
            CExpr::Call(_, args) => {
                for a in args {
                    a.visit_free(bound, visit);
                }
            }
            CExpr::Tuple(fs) => {
                for f in fs {
                    f.visit_free(bound, visit);
                }
            }
            CExpr::Record(fs) => {
                for (_, f) in fs {
                    f.visit_free(bound, visit);
                }
            }
            CExpr::Proj(e, _) => e.visit_free(bound, visit),
            CExpr::Agg(_, e) => e.visit_free(bound, visit),
            CExpr::Merge { left, right, .. } => {
                left.visit_free(bound, visit);
                right.visit_free(bound, visit);
            }
            CExpr::Range(lo, hi) => {
                lo.visit_free(bound, visit);
                hi.visit_free(bound, visit);
            }
            CExpr::Comp(c) => {
                // Qualifiers bind left to right; a generator's domain sees
                // only the bindings before it.
                let mut newly: Vec<String> = Vec::new();
                for q in &c.quals {
                    match q {
                        Qual::Gen(p, e) | Qual::Let(p, e) | Qual::GroupBy(p, e) => {
                            e.visit_free(bound, visit);
                            for v in p.var_list() {
                                if bound.insert(v.clone()) {
                                    newly.push(v);
                                }
                            }
                        }
                        Qual::Pred(e) => e.visit_free(bound, visit),
                    }
                }
                c.head.visit_free(bound, visit);
                for v in newly {
                    bound.remove(&v);
                }
            }
        }
    }

    /// Capture-avoiding substitution of variable `name` by `replacement`.
    ///
    /// Comprehension qualifiers that rebind `name` shadow it for the rest of
    /// that comprehension. Pattern variables are assumed globally fresh
    /// (the translator and normalizer generate unique names), so no
    /// alpha-renaming is performed here.
    pub fn subst(&self, name: &str, replacement: &CExpr) -> CExpr {
        match self {
            CExpr::Var(v) => {
                if v == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            CExpr::Const(_) => self.clone(),
            CExpr::Bin(op, a, b) => CExpr::Bin(
                *op,
                Box::new(a.subst(name, replacement)),
                Box::new(b.subst(name, replacement)),
            ),
            CExpr::Un(op, a) => CExpr::Un(*op, Box::new(a.subst(name, replacement))),
            CExpr::Call(f, args) => CExpr::Call(
                *f,
                args.iter().map(|a| a.subst(name, replacement)).collect(),
            ),
            CExpr::Tuple(fs) => {
                CExpr::Tuple(fs.iter().map(|f| f.subst(name, replacement)).collect())
            }
            CExpr::Record(fs) => CExpr::Record(
                fs.iter()
                    .map(|(n, f)| (n.clone(), f.subst(name, replacement)))
                    .collect(),
            ),
            CExpr::Proj(e, f) => CExpr::Proj(Box::new(e.subst(name, replacement)), f.clone()),
            CExpr::Agg(op, e) => CExpr::Agg(*op, Box::new(e.subst(name, replacement))),
            CExpr::Merge {
                left,
                right,
                combine,
            } => CExpr::Merge {
                left: Box::new(left.subst(name, replacement)),
                right: Box::new(right.subst(name, replacement)),
                combine: *combine,
            },
            CExpr::Range(lo, hi) => CExpr::Range(
                Box::new(lo.subst(name, replacement)),
                Box::new(hi.subst(name, replacement)),
            ),
            CExpr::Comp(c) => {
                let mut shadowed = false;
                let mut quals = Vec::with_capacity(c.quals.len());
                for q in &c.quals {
                    let q = if shadowed {
                        q.clone()
                    } else {
                        match q {
                            Qual::Gen(p, e) => Qual::Gen(p.clone(), e.subst(name, replacement)),
                            Qual::Let(p, e) => Qual::Let(p.clone(), e.subst(name, replacement)),
                            Qual::Pred(e) => Qual::Pred(e.subst(name, replacement)),
                            Qual::GroupBy(p, e) => {
                                Qual::GroupBy(p.clone(), e.subst(name, replacement))
                            }
                        }
                    };
                    if !shadowed && q.bound_vars().iter().any(|v| v == name) {
                        shadowed = true;
                    }
                    quals.push(q);
                }
                let head = if shadowed {
                    (*c.head).clone()
                } else {
                    c.head.subst(name, replacement)
                };
                CExpr::Comp(Comprehension {
                    head: Box::new(head),
                    quals,
                })
            }
        }
    }

    /// True if the expression contains any of the given dataset names as a
    /// free variable (used to decide local vs. distributed evaluation).
    pub fn mentions_any(&self, names: &HashSet<String>) -> bool {
        self.free_vars().iter().any(|v| names.contains(v))
    }
}

/// A counter handing out globally fresh variable names.
#[derive(Debug, Default)]
pub struct NameGen {
    next: u64,
}

impl NameGen {
    /// Creates a fresh-name generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Produces a fresh name with the given prefix, e.g. `v#12`. The `#`
    /// cannot appear in surface identifiers, so fresh names never collide
    /// with program variables.
    pub fn fresh(&mut self, prefix: &str) -> String {
        let n = self.next;
        self.next += 1;
        format!("{prefix}#{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_binds_tuples() {
        let p = Pattern::pair(
            Pattern::pair(Pattern::var("i"), Pattern::var("j")),
            Pattern::var("v"),
        );
        let v = Value::pair(
            Value::pair(Value::Long(1), Value::Long(2)),
            Value::Double(3.0),
        );
        let mut binds = Vec::new();
        assert!(p.bind(&v, &mut binds));
        assert_eq!(
            binds,
            vec![
                ("i".to_string(), Value::Long(1)),
                ("j".to_string(), Value::Long(2)),
                ("v".to_string(), Value::Double(3.0)),
            ]
        );
    }

    #[test]
    fn pattern_mismatch_reports_false() {
        let p = Pattern::pair(Pattern::var("a"), Pattern::var("b"));
        let mut binds = Vec::new();
        assert!(!p.bind(&Value::Long(5), &mut binds));
    }

    #[test]
    fn wildcard_binds_nothing() {
        let p = Pattern::pair(Pattern::Wild, Pattern::var("v"));
        let mut binds = Vec::new();
        assert!(p.bind(&Value::pair(Value::Long(1), Value::Long(2)), &mut binds));
        assert_eq!(binds, vec![("v".to_string(), Value::Long(2))]);
    }

    #[test]
    fn free_vars_respect_generator_binding() {
        // { x + y | x ← X } : free = {X, y}
        let comp = CExpr::Comp(Comprehension::new(
            CExpr::Bin(
                BinOp::Add,
                Box::new(CExpr::var("x")),
                Box::new(CExpr::var("y")),
            ),
            vec![Qual::Gen(Pattern::var("x"), CExpr::var("X"))],
        ));
        let fv = comp.free_vars();
        assert!(fv.contains("X"));
        assert!(fv.contains("y"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn subst_stops_at_shadowing() {
        // { x | x ← X }[x := 9] leaves the bound x alone but hits X's side.
        let comp = CExpr::Comp(Comprehension::new(
            CExpr::var("x"),
            vec![Qual::Gen(Pattern::var("x"), CExpr::var("x"))],
        ));
        let out = comp.subst("x", &CExpr::long(9));
        let CExpr::Comp(c) = out else { panic!() };
        assert_eq!(c.quals[0], Qual::Gen(Pattern::var("x"), CExpr::long(9)));
        assert_eq!(*c.head, CExpr::var("x"), "head is shadowed");
    }

    #[test]
    fn fresh_names_are_distinct() {
        let mut ng = NameGen::new();
        let a = ng.fresh("v");
        let b = ng.fresh("v");
        assert_ne!(a, b);
        assert!(a.contains('#'));
    }

    #[test]
    fn singleton_detection() {
        let s = CExpr::singleton(CExpr::long(3));
        assert_eq!(s.as_singleton(), Some(&CExpr::long(3)));
        assert!(CExpr::long(3).as_singleton().is_none());
    }
}
