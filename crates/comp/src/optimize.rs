//! Comprehension optimization (§4 and §3.6).
//!
//! Three rewrites, each meaning-preserving:
//!
//! * **Rule (16)** — group-by on a constant key forms a single group, so the
//!   group-by is replaced by let-bindings that lift the prefix variables to
//!   bags directly. This is how `n += W[i]` becomes a total aggregation.
//! * **Rule (17)** — group-by on a *unique* key (an affine term consisting
//!   of all array indexes bound before the group-by) forms singleton groups;
//!   the group-by is replaced by lets and every lifted variable becomes a
//!   singleton bag. This is how `V[i] += W[i]` avoids a shuffle.
//! * **Loop-iteration elimination (§3.6)** — a generator `i ← range(lo, hi)`
//!   joined to an array traversal through an invertible affine index
//!   equation `I = f(i)` is eliminated: the traversal itself enumerates the
//!   indexes, guarded by `inRange(F(I), lo, hi)`.
//!
//! A final dead-let pass removes bindings introduced by the rewrites that
//! nothing references.

use std::collections::HashSet;

use diablo_runtime::{BinOp, Func};

use crate::ir::{CExpr, Comprehension, NameGen, Pattern, Qual};
use crate::normalize::normalize;

/// Optimizes an expression: normalizes, then applies Rule (16), Rule (17),
/// and range elimination to fixpoint.
pub fn optimize(e: &CExpr, ng: &mut NameGen) -> CExpr {
    let mut cur = normalize(e, ng);
    for _ in 0..8 {
        let next = opt_expr(&cur, ng);
        let next = normalize(&next, ng);
        if next == cur {
            return next;
        }
        cur = next;
    }
    cur
}

#[allow(clippy::only_used_in_recursion)]
fn opt_expr(e: &CExpr, ng: &mut NameGen) -> CExpr {
    match e {
        CExpr::Var(_) | CExpr::Const(_) => e.clone(),
        CExpr::Bin(op, a, b) => {
            CExpr::Bin(*op, Box::new(opt_expr(a, ng)), Box::new(opt_expr(b, ng)))
        }
        CExpr::Un(op, a) => CExpr::Un(*op, Box::new(opt_expr(a, ng))),
        CExpr::Call(f, args) => CExpr::Call(*f, args.iter().map(|a| opt_expr(a, ng)).collect()),
        CExpr::Tuple(fs) => CExpr::Tuple(fs.iter().map(|f| opt_expr(f, ng)).collect()),
        CExpr::Record(fs) => CExpr::Record(
            fs.iter()
                .map(|(n, f)| (n.clone(), opt_expr(f, ng)))
                .collect(),
        ),
        CExpr::Proj(inner, f) => CExpr::Proj(Box::new(opt_expr(inner, ng)), f.clone()),
        CExpr::Agg(op, inner) => CExpr::Agg(*op, Box::new(opt_expr(inner, ng))),
        CExpr::Merge {
            left,
            right,
            combine,
        } => CExpr::Merge {
            left: Box::new(opt_expr(left, ng)),
            right: Box::new(opt_expr(right, ng)),
            combine: *combine,
        },
        CExpr::Range(lo, hi) => {
            CExpr::Range(Box::new(opt_expr(lo, ng)), Box::new(opt_expr(hi, ng)))
        }
        CExpr::Comp(c) => {
            let mut c = Comprehension {
                head: Box::new(opt_expr(&c.head, ng)),
                quals: c
                    .quals
                    .iter()
                    .map(|q| match q {
                        Qual::Gen(p, e) => Qual::Gen(p.clone(), opt_expr(e, ng)),
                        Qual::Let(p, e) => Qual::Let(p.clone(), opt_expr(e, ng)),
                        Qual::Pred(e) => Qual::Pred(opt_expr(e, ng)),
                        Qual::GroupBy(p, e) => Qual::GroupBy(p.clone(), opt_expr(e, ng)),
                    })
                    .collect(),
            };
            c = dedup_array_accesses(c);
            c = eliminate_ranges(c);
            if let Some(rewritten) = rule16_constant_key(&c) {
                return CExpr::Comp(rewritten);
            }
            if let Some(rewritten) = rule17_unique_key(&c) {
                return CExpr::Comp(rewritten);
            }
            CExpr::Comp(drop_dead_lets(c))
        }
    }
}

/// Variables bound by the qualifiers `quals`.
fn bound_vars(quals: &[Qual]) -> HashSet<String> {
    quals.iter().flat_map(|q| q.bound_vars()).collect()
}

// --------------------------------------------------------------- Rule (16)

/// `{ e | q1, group by p : c, q2 } →
///  { e | let p = c, ∀vi: let vi = {vi | q1}, q2 }`
/// when the key `c` is constant with respect to the prefix `q1`.
fn rule16_constant_key(c: &Comprehension) -> Option<Comprehension> {
    let gpos = c
        .quals
        .iter()
        .position(|q| matches!(q, Qual::GroupBy(_, _)))?;
    let (q1, rest) = c.quals.split_at(gpos);
    let Qual::GroupBy(p, key) = &rest[0] else {
        unreachable!()
    };
    let q2 = &rest[1..];
    let prefix_vars = bound_vars(q1);
    if key.free_vars().iter().any(|v| prefix_vars.contains(v)) {
        return None; // key depends on the prefix — not constant
    }
    // Which lifted variables are actually used downstream?
    let key_vars: HashSet<String> = p.var_list().into_iter().collect();
    let mut used = (*c.head).free_vars();
    for q in q2 {
        match q {
            Qual::Gen(_, e) | Qual::Let(_, e) | Qual::Pred(e) | Qual::GroupBy(_, e) => {
                used.extend(e.free_vars());
            }
        }
    }
    let mut new_quals: Vec<Qual> = vec![Qual::Let(p.clone(), key.clone())];
    for q in q1 {
        for v in q.bound_vars() {
            if !key_vars.contains(&v) && used.contains(&v) {
                let lifted = CExpr::Comp(Comprehension::new(CExpr::Var(v.clone()), q1.to_vec()));
                new_quals.push(Qual::Let(Pattern::Var(v), lifted));
            }
        }
    }
    new_quals.extend(q2.iter().cloned());
    Some(Comprehension {
        head: c.head.clone(),
        quals: new_quals,
    })
}

// --------------------------------------------------------------- Rule (17)

/// The index variables contributed by a generator: the variables in the key
/// part of an array traversal `(k, v) ← A` / `((i, j), v) ← A`, or the
/// variable of a range generator. `None` means the generator's shape is not
/// recognized and the uniqueness analysis must bail.
fn generator_index_vars(q: &Qual) -> Option<Option<Vec<String>>> {
    match q {
        Qual::Gen(Pattern::Var(i), CExpr::Range(_, _)) => Some(Some(vec![i.clone()])),
        Qual::Gen(Pattern::Tuple(ps), dom) if ps.len() == 2 && matches!(dom, CExpr::Var(_)) => {
            // (key_pattern, value) ← Dataset
            let mut vars = Vec::new();
            ps[0].vars(&mut vars);
            Some(Some(vars))
        }
        Qual::Gen(_, _) => Some(None), // unrecognized generator
        _ => None,                     // not a generator
    }
}

/// Rule (17): a group-by whose key consists of exactly the index variables
/// of *all* generators before it is unique — each group is a singleton.
fn rule17_unique_key(c: &Comprehension) -> Option<Comprehension> {
    let gpos = c
        .quals
        .iter()
        .position(|q| matches!(q, Qual::GroupBy(_, _)))?;
    let (q1, rest) = c.quals.split_at(gpos);
    let Qual::GroupBy(p, key) = &rest[0] else {
        unreachable!()
    };
    let q2 = &rest[1..];

    // Gather index variables from every generator in the prefix.
    let mut index_vars: HashSet<String> = HashSet::new();
    for q in q1 {
        if let Some(vars) = generator_index_vars(q) {
            match vars {
                Some(vs) => index_vars.extend(vs),
                None => return None,
            }
        }
    }
    if index_vars.is_empty() {
        return None;
    }
    // The key must be a variable or tuple of variables covering exactly the
    // index variables.
    let key_vars = key_var_list(key)?;
    let key_set: HashSet<String> = key_vars.iter().cloned().collect();
    if key_set != index_vars {
        return None;
    }

    // Replace the group-by with a let for the key pattern. Every lifted
    // variable forms a singleton group, so downstream uses are substituted
    // with the singleton bag `{v}` directly (a let would shadow itself).
    let key_pat_vars: HashSet<String> = p.var_list().into_iter().collect();
    let lifted: Vec<String> = q1
        .iter()
        .flat_map(|q| q.bound_vars())
        .filter(|v| !key_pat_vars.contains(v))
        .collect();
    let subst_lifted = |e: &CExpr| -> CExpr {
        let mut out = e.clone();
        for v in &lifted {
            out = out.subst(v, &CExpr::singleton(CExpr::Var(v.clone())));
        }
        out
    };
    let mut new_quals: Vec<Qual> = q1.to_vec();
    new_quals.push(Qual::Let(p.clone(), key.clone()));
    for q in q2 {
        new_quals.push(match q {
            Qual::Gen(p, e) => Qual::Gen(p.clone(), subst_lifted(e)),
            Qual::Let(p, e) => Qual::Let(p.clone(), subst_lifted(e)),
            Qual::Pred(e) => Qual::Pred(subst_lifted(e)),
            Qual::GroupBy(p, e) => Qual::GroupBy(p.clone(), subst_lifted(e)),
        });
    }
    Some(Comprehension {
        head: Box::new(subst_lifted(&c.head)),
        quals: new_quals,
    })
}

/// If the expression is a variable or a tuple of variables, returns them.
fn key_var_list(e: &CExpr) -> Option<Vec<String>> {
    match e {
        CExpr::Var(v) => Some(vec![v.clone()]),
        CExpr::Tuple(fs) => {
            let mut out = Vec::with_capacity(fs.len());
            for f in fs {
                match f {
                    CExpr::Var(v) => out.push(v.clone()),
                    _ => return None,
                }
            }
            Some(out)
        }
        _ => None,
    }
}

// -------------------------------------- common array-access elimination

/// Deduplicates generators that access the *same array element*.
///
/// `E⟦·⟧` lifts every array read independently, so `P[i] * P[i]` produces
/// two traversals of `P` each pinned by `index = i`. Since arrays are
/// key-value maps with unique keys (§3.4), two generators over the same
/// array whose index variables are pinned (by equality conditions) to the
/// same expressions bind the same element; the second generator and its
/// conditions are removed and its variables aliased to the first's. This
/// is a correctness-preserving strength reduction of the "unnecessary
/// joins" the paper attributes to its translator (§6).
fn dedup_array_accesses(c: Comprehension) -> Comprehension {
    let mut c = c;
    loop {
        match try_dedup_one(&c) {
            Some(next) => c = next,
            None => return c,
        }
    }
}

/// The access signature of a dataset generator: array name, pinned index
/// expressions, the qualifier positions of the pins, the pattern's index
/// variables, and its value variable.
type AccessSig = (String, Vec<CExpr>, Vec<usize>, Vec<String>, String);

/// Computes the [`AccessSig`] of a dataset generator: the array name and,
/// for each index variable of the pattern, the expression it is pinned to
/// by a later equality condition. `None` when any index is unpinned.
fn access_signature(quals: &[Qual], gpos: usize, limit: usize) -> Option<AccessSig> {
    let Qual::Gen(Pattern::Tuple(ps), CExpr::Var(array)) = &quals[gpos] else {
        return None;
    };
    if ps.len() != 2 {
        return None;
    }
    let mut index_vars = Vec::new();
    ps[0].vars(&mut index_vars);
    let Pattern::Var(value_var) = &ps[1] else {
        return None;
    };
    let own_vars: HashSet<&String> = index_vars.iter().collect();
    let mut pins: Vec<CExpr> = Vec::new();
    let mut pin_positions: Vec<usize> = Vec::new();
    for iv in &index_vars {
        let mut found = false;
        for (qpos, q) in quals.iter().enumerate().take(limit).skip(gpos + 1) {
            let Qual::Pred(CExpr::Bin(BinOp::Eq, a, b)) = q else {
                continue;
            };
            for (lhs, rhs) in [(a, b), (b, a)] {
                if matches!(lhs.as_ref(), CExpr::Var(v) if v == iv)
                    && rhs.free_vars().iter().all(|v| !own_vars.contains(v))
                {
                    pins.push(rhs.as_ref().clone());
                    pin_positions.push(qpos);
                    found = true;
                    break;
                }
            }
            if found {
                break;
            }
        }
        if !found {
            return None;
        }
    }
    Some((
        array.clone(),
        pins,
        pin_positions,
        index_vars,
        value_var.clone(),
    ))
}

fn try_dedup_one(c: &Comprehension) -> Option<Comprehension> {
    let limit = c
        .quals
        .iter()
        .position(|q| matches!(q, Qual::GroupBy(_, _)))
        .unwrap_or(c.quals.len());
    // Collect signatures for all dataset generators before the group-by.
    let sigs: Vec<(usize, AccessSig)> = (0..limit)
        .filter_map(|g| access_signature(&c.quals, g, limit).map(|s| (g, s)))
        .collect();
    for (ai, (_ga, sa)) in sigs.iter().enumerate() {
        for (gb, sb) in sigs.iter().skip(ai + 1) {
            if sa.0 != sb.0 || sa.1 != sb.1 {
                continue;
            }
            // Generator *gb duplicates *ga: remove it and its pins, alias
            // its variables to *ga's.
            let drop: HashSet<usize> = std::iter::once(*gb).chain(sb.2.iter().copied()).collect();
            let renames: Vec<(String, String)> =
                sb.3.iter()
                    .cloned()
                    .zip(sa.3.iter().cloned())
                    .chain(std::iter::once((sb.4.clone(), sa.4.clone())))
                    .collect();
            let apply = |e: &CExpr| -> CExpr {
                let mut out = e.clone();
                for (from, to) in &renames {
                    out = out.subst(from, &CExpr::Var(to.clone()));
                }
                out
            };
            let quals: Vec<Qual> = c
                .quals
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, q)| match q {
                    Qual::Gen(p, e) => Qual::Gen(p.clone(), apply(e)),
                    Qual::Let(p, e) => Qual::Let(p.clone(), apply(e)),
                    Qual::Pred(e) => Qual::Pred(apply(e)),
                    Qual::GroupBy(p, e) => Qual::GroupBy(p.clone(), apply(e)),
                })
                .collect();
            let head = apply(&c.head);
            return Some(Comprehension {
                head: Box::new(head),
                quals,
            });
        }
    }
    None
}

// ------------------------------------------------- range elimination (§3.6)

/// An invertible affine use `I = f(i)`; `invert(I)` produces `F(I)` with
/// `f(F(k)) = k`.
fn invert_affine(
    f: &CExpr,
    i: &str,
    locals: &HashSet<String>,
) -> Option<Box<dyn Fn(CExpr) -> CExpr>> {
    let is_invariant = |e: &CExpr| e.free_vars().iter().all(|v| !locals.contains(v));
    match f {
        CExpr::Var(v) if v == i => Some(Box::new(|k| k)),
        CExpr::Bin(BinOp::Add, a, b) => {
            if matches!(a.as_ref(), CExpr::Var(v) if v == i) && is_invariant(b) {
                let c = b.as_ref().clone();
                return Some(Box::new(move |k| {
                    CExpr::Bin(BinOp::Sub, Box::new(k), Box::new(c.clone()))
                }));
            }
            if matches!(b.as_ref(), CExpr::Var(v) if v == i) && is_invariant(a) {
                let c = a.as_ref().clone();
                return Some(Box::new(move |k| {
                    CExpr::Bin(BinOp::Sub, Box::new(k), Box::new(c.clone()))
                }));
            }
            None
        }
        CExpr::Bin(BinOp::Sub, a, b) => {
            if matches!(a.as_ref(), CExpr::Var(v) if v == i) && is_invariant(b) {
                let c = b.as_ref().clone();
                return Some(Box::new(move |k| {
                    CExpr::Bin(BinOp::Add, Box::new(k), Box::new(c.clone()))
                }));
            }
            if matches!(b.as_ref(), CExpr::Var(v) if v == i) && is_invariant(a) {
                let c = a.as_ref().clone();
                return Some(Box::new(move |k| {
                    CExpr::Bin(BinOp::Sub, Box::new(c.clone()), Box::new(k))
                }));
            }
            None
        }
        _ => None,
    }
}

/// Eliminates `i ← range(lo, hi)` generators that are joined to an array
/// traversal through an equality `I = f(i)` with invertible affine `f`.
fn eliminate_ranges(c: Comprehension) -> Comprehension {
    let mut c = c;
    loop {
        match try_eliminate_one_range(&c) {
            Some(next) => c = next,
            None => return c,
        }
    }
}

fn try_eliminate_one_range(c: &Comprehension) -> Option<Comprehension> {
    let locals = bound_vars(&c.quals);
    // The rewrite is only valid before any group-by (generators after a
    // group-by see lifted variables; our translation never puts range
    // generators there, but be safe).
    let limit = c
        .quals
        .iter()
        .position(|q| matches!(q, Qual::GroupBy(_, _)))
        .unwrap_or(c.quals.len());

    for rpos in 0..limit {
        let Qual::Gen(Pattern::Var(i), CExpr::Range(lo, hi)) = &c.quals[rpos] else {
            continue;
        };
        // Range bounds must be loop-invariant (they are, by construction).
        if lo.free_vars().iter().any(|v| locals.contains(v))
            || hi.free_vars().iter().any(|v| locals.contains(v))
        {
            continue;
        }
        // Find a later equality pred `I = f(i)` (either side) where `I` is
        // an index variable of a dataset generator at position gpos.
        for ppos in rpos + 1..limit {
            let Qual::Pred(CExpr::Bin(BinOp::Eq, a, b)) = &c.quals[ppos] else {
                continue;
            };
            for (lhs, rhs) in [(a, b), (b, a)] {
                let CExpr::Var(index_var) = lhs.as_ref() else {
                    continue;
                };
                if index_var == i {
                    continue;
                }
                // index_var must come from a dataset traversal generator.
                let Some(gpos) = (0..limit).find(|&g| {
                    matches!(generator_index_vars(&c.quals[g]), Some(Some(ref vs))
                        if vs.contains(index_var)
                            && !matches!(&c.quals[g], Qual::Gen(_, CExpr::Range(_, _))))
                }) else {
                    continue;
                };
                // f(i) must be invertible and mention i.
                if !rhs.free_vars().contains(i) {
                    continue;
                }
                let mut invariant_locals = locals.clone();
                invariant_locals.remove(i);
                let Some(invert) = invert_affine(rhs, i, &invariant_locals) else {
                    continue;
                };
                // Every other use of `i` must be at a position after the
                // dataset generator (where `index_var` is in scope).
                let fi = invert(CExpr::Var(index_var.clone()));
                let mut ok = true;
                for (qpos, q) in c.quals.iter().enumerate() {
                    if qpos == rpos || qpos == ppos {
                        continue;
                    }
                    let uses_i = match q {
                        Qual::Gen(_, e) | Qual::Let(_, e) | Qual::Pred(e) | Qual::GroupBy(_, e) => {
                            e.free_vars().contains(i)
                        }
                    };
                    if uses_i && qpos <= gpos {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                // Rebuild: drop the range generator and the pred; insert
                // inRange right after the dataset generator; substitute i.
                let in_range = Qual::Pred(CExpr::Call(
                    Func::InRange,
                    vec![fi.clone(), lo.as_ref().clone(), hi.as_ref().clone()],
                ));
                let mut new_quals: Vec<Qual> = Vec::with_capacity(c.quals.len());
                for (qpos, q) in c.quals.iter().enumerate() {
                    if qpos == rpos || qpos == ppos {
                        // dropped
                    } else {
                        let q = subst_in_qual(q, i, &fi);
                        new_quals.push(q);
                    }
                    if qpos == gpos {
                        new_quals.push(in_range.clone());
                    }
                }
                let head = c.head.subst(i, &fi);
                return Some(Comprehension {
                    head: Box::new(head),
                    quals: new_quals,
                });
            }
        }
    }
    None
}

fn subst_in_qual(q: &Qual, name: &str, replacement: &CExpr) -> Qual {
    match q {
        Qual::Gen(p, e) => Qual::Gen(p.clone(), e.subst(name, replacement)),
        Qual::Let(p, e) => Qual::Let(p.clone(), e.subst(name, replacement)),
        Qual::Pred(e) => Qual::Pred(e.subst(name, replacement)),
        Qual::GroupBy(p, e) => Qual::GroupBy(p.clone(), e.subst(name, replacement)),
    }
}

// -------------------------------------------------------------- dead lets

/// Removes let-bindings whose variables are never used downstream.
fn drop_dead_lets(c: Comprehension) -> Comprehension {
    let mut keep: Vec<bool> = vec![true; c.quals.len()];
    // Walk backwards tracking used variables.
    let mut used: HashSet<String> = (*c.head).free_vars();
    for (idx, q) in c.quals.iter().enumerate().rev() {
        match q {
            Qual::Let(p, e) => {
                let vars = p.var_list();
                if vars.iter().all(|v| !used.contains(v)) {
                    keep[idx] = false;
                } else {
                    used.extend(e.free_vars());
                }
            }
            Qual::Gen(_, e) | Qual::Pred(e) | Qual::GroupBy(_, e) => {
                used.extend(e.free_vars());
            }
        }
    }
    let quals = c
        .quals
        .into_iter()
        .zip(keep)
        .filter_map(|(q, k)| k.then_some(q))
        .collect();
    Comprehension {
        head: c.head,
        quals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};
    use diablo_runtime::{AggOp, Value};

    fn pairs(entries: &[(i64, i64)]) -> Value {
        Value::bag(
            entries
                .iter()
                .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
                .collect(),
        )
    }

    fn canon(v: &Value) -> Value {
        match v.as_bag() {
            Some(items) => {
                let mut s = items.to_vec();
                s.sort();
                Value::bag(s)
            }
            None => v.clone(),
        }
    }

    fn assert_same_meaning(e: &CExpr, env: &Env) -> CExpr {
        let mut ng = NameGen::new();
        let o = optimize(e, &mut ng);
        assert_eq!(
            canon(&eval(e, env).unwrap()),
            canon(&eval(&o, env).unwrap()),
            "optimized: {o:?}"
        );
        o
    }

    /// `{ (k, +/w) | (i, w) ← W, group by k : () }`
    fn total_agg_comp() -> CExpr {
        CExpr::Comp(Comprehension::new(
            CExpr::pair(
                CExpr::var("k"),
                CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("w"))),
            ),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i"), Pattern::var("w")),
                    CExpr::var("W"),
                ),
                Qual::GroupBy(Pattern::var("k"), CExpr::Const(Value::Unit)),
            ],
        ))
    }

    #[test]
    fn rule16_eliminates_constant_key_group_by() {
        let e = total_agg_comp();
        let mut env = Env::new();
        env.insert("W".into(), pairs(&[(0, 1), (1, 2), (2, 3)]));
        let o = assert_same_meaning(&e, &env);
        let CExpr::Comp(c) = &o else { panic!() };
        assert!(
            c.quals.iter().all(|q| !matches!(q, Qual::GroupBy(_, _))),
            "group-by gone: {c:?}"
        );
        let out = eval(&o, &env).unwrap();
        assert_eq!(
            out.as_bag().unwrap(),
            &[Value::pair(Value::Unit, Value::Long(6))]
        );
    }

    #[test]
    fn rule17_eliminates_unique_key_group_by() {
        // { (k, +/w) | (i, w) ← W, group by k : i } — i is W's key.
        let e = CExpr::Comp(Comprehension::new(
            CExpr::pair(
                CExpr::var("k"),
                CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("w"))),
            ),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i"), Pattern::var("w")),
                    CExpr::var("W"),
                ),
                Qual::GroupBy(Pattern::var("k"), CExpr::var("i")),
            ],
        ));
        let mut env = Env::new();
        env.insert("W".into(), pairs(&[(0, 5), (1, 7)]));
        let o = assert_same_meaning(&e, &env);
        let CExpr::Comp(c) = &o else { panic!() };
        assert!(
            c.quals.iter().all(|q| !matches!(q, Qual::GroupBy(_, _))),
            "{c:?}"
        );
        // The aggregation over a singleton should have been folded away.
        assert!(!format!("{c:?}").contains("Agg"), "{c:?}");
    }

    #[test]
    fn rule17_does_not_fire_on_non_unique_keys() {
        // Matrix-multiplication-shaped: key (i, j) but indexes {i, k, k2, j}.
        let e = CExpr::Comp(Comprehension::new(
            CExpr::Tuple(vec![
                CExpr::var("gi"),
                CExpr::var("gj"),
                CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("v"))),
            ]),
            vec![
                Qual::Gen(
                    Pattern::pair(
                        Pattern::pair(Pattern::var("i"), Pattern::var("k")),
                        Pattern::var("m"),
                    ),
                    CExpr::var("M"),
                ),
                Qual::Gen(
                    Pattern::pair(
                        Pattern::pair(Pattern::var("k2"), Pattern::var("j")),
                        Pattern::var("n"),
                    ),
                    CExpr::var("N"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("k"), CExpr::var("k2"))),
                Qual::Let(
                    Pattern::var("v"),
                    CExpr::Bin(
                        BinOp::Mul,
                        Box::new(CExpr::var("m")),
                        Box::new(CExpr::var("n")),
                    ),
                ),
                Qual::GroupBy(
                    Pattern::pair(Pattern::var("gi"), Pattern::var("gj")),
                    CExpr::pair(CExpr::var("i"), CExpr::var("j")),
                ),
            ],
        ));
        let mut ng = NameGen::new();
        let o = optimize(&e, &mut ng);
        let CExpr::Comp(c) = &o else { panic!() };
        assert!(
            c.quals.iter().any(|q| matches!(q, Qual::GroupBy(_, _))),
            "group-by must remain: {c:?}"
        );
    }

    #[test]
    fn range_join_becomes_traversal() {
        // { (i, w) | i ← range(1, 10), (j, w) ← W, j == i }
        let e = CExpr::Comp(Comprehension::new(
            CExpr::pair(CExpr::var("i"), CExpr::var("w")),
            vec![
                Qual::Gen(
                    Pattern::var("i"),
                    CExpr::Range(Box::new(CExpr::long(1)), Box::new(CExpr::long(10))),
                ),
                Qual::Gen(
                    Pattern::pair(Pattern::var("j"), Pattern::var("w")),
                    CExpr::var("W"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("j"), CExpr::var("i"))),
            ],
        ));
        let mut env = Env::new();
        env.insert(
            "W".into(),
            pairs(&[(0, 100), (5, 500), (10, 1000), (11, 1100)]),
        );
        let o = assert_same_meaning(&e, &env);
        let CExpr::Comp(c) = &o else { panic!() };
        assert!(
            c.quals
                .iter()
                .all(|q| !matches!(q, Qual::Gen(_, CExpr::Range(_, _)))),
            "range generator eliminated: {c:?}"
        );
        assert!(
            c.quals
                .iter()
                .any(|q| matches!(q, Qual::Pred(CExpr::Call(Func::InRange, _)))),
            "inRange guard added: {c:?}"
        );
        let mut out = eval(&o, &env).unwrap().as_bag().unwrap().to_vec();
        out.sort();
        assert_eq!(out, pairs(&[(5, 500), (10, 1000)]).as_bag().unwrap());
    }

    #[test]
    fn offset_range_join_inverts_the_affine_index() {
        // { w | i ← range(0, 5), (j, w) ← W, j == i + 2 } — reads W[2..7].
        let e = CExpr::Comp(Comprehension::new(
            CExpr::var("w"),
            vec![
                Qual::Gen(
                    Pattern::var("i"),
                    CExpr::Range(Box::new(CExpr::long(0)), Box::new(CExpr::long(5))),
                ),
                Qual::Gen(
                    Pattern::pair(Pattern::var("j"), Pattern::var("w")),
                    CExpr::var("W"),
                ),
                Qual::Pred(CExpr::eq(
                    CExpr::var("j"),
                    CExpr::Bin(
                        BinOp::Add,
                        Box::new(CExpr::var("i")),
                        Box::new(CExpr::long(2)),
                    ),
                )),
            ],
        ));
        let mut env = Env::new();
        env.insert("W".into(), pairs(&[(1, 1), (2, 2), (7, 7), (8, 8)]));
        let o = assert_same_meaning(&e, &env);
        let mut out = eval(&o, &env).unwrap().as_bag().unwrap().to_vec();
        out.sort();
        assert_eq!(out, vec![Value::Long(2), Value::Long(7)]);
    }

    #[test]
    fn pure_range_sources_survive() {
        // { (i, 0) | i ← range(1, 3) } — nothing to join with.
        let e = CExpr::Comp(Comprehension::new(
            CExpr::pair(CExpr::var("i"), CExpr::long(0)),
            vec![Qual::Gen(
                Pattern::var("i"),
                CExpr::Range(Box::new(CExpr::long(1)), Box::new(CExpr::long(3))),
            )],
        ));
        let env = Env::new();
        let o = assert_same_meaning(&e, &env);
        let CExpr::Comp(c) = &o else { panic!() };
        assert!(matches!(&c.quals[0], Qual::Gen(_, CExpr::Range(_, _))));
    }

    #[test]
    fn matrix_multiplication_ranges_all_eliminate() {
        // The running example of §1.1, exactly as the translator builds it.
        let mm = CExpr::Comp(Comprehension::new(
            CExpr::pair(
                CExpr::pair(CExpr::var("gi"), CExpr::var("gj")),
                CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("v"))),
            ),
            vec![
                Qual::Gen(
                    Pattern::var("i"),
                    CExpr::Range(Box::new(CExpr::long(0)), Box::new(CExpr::long(1))),
                ),
                Qual::Gen(
                    Pattern::var("j"),
                    CExpr::Range(Box::new(CExpr::long(0)), Box::new(CExpr::long(1))),
                ),
                Qual::Gen(
                    Pattern::var("k"),
                    CExpr::Range(Box::new(CExpr::long(0)), Box::new(CExpr::long(1))),
                ),
                Qual::Gen(
                    Pattern::pair(
                        Pattern::pair(Pattern::var("I"), Pattern::var("J")),
                        Pattern::var("m"),
                    ),
                    CExpr::var("M"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("I"), CExpr::var("i"))),
                Qual::Pred(CExpr::eq(CExpr::var("J"), CExpr::var("k"))),
                Qual::Gen(
                    Pattern::pair(
                        Pattern::pair(Pattern::var("I2"), Pattern::var("J2")),
                        Pattern::var("n"),
                    ),
                    CExpr::var("N"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("I2"), CExpr::var("k"))),
                Qual::Pred(CExpr::eq(CExpr::var("J2"), CExpr::var("j"))),
                Qual::Let(
                    Pattern::var("v"),
                    CExpr::Bin(
                        BinOp::Mul,
                        Box::new(CExpr::var("m")),
                        Box::new(CExpr::var("n")),
                    ),
                ),
                Qual::GroupBy(
                    Pattern::pair(Pattern::var("gi"), Pattern::var("gj")),
                    CExpr::pair(CExpr::var("i"), CExpr::var("j")),
                ),
            ],
        ));
        let mat = |vals: &[(i64, i64, i64)]| {
            Value::bag(
                vals.iter()
                    .map(|&(i, j, v)| {
                        Value::pair(Value::pair(Value::Long(i), Value::Long(j)), Value::Long(v))
                    })
                    .collect(),
            )
        };
        let mut env = Env::new();
        env.insert(
            "M".into(),
            mat(&[(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]),
        );
        env.insert(
            "N".into(),
            mat(&[(0, 0, 5), (0, 1, 6), (1, 0, 7), (1, 1, 8)]),
        );
        let o = assert_same_meaning(&mm, &env);
        let CExpr::Comp(c) = &o else { panic!() };
        assert!(
            c.quals
                .iter()
                .all(|q| !matches!(q, Qual::Gen(_, CExpr::Range(_, _)))),
            "all three ranges eliminated: {c:?}"
        );
        let mut out = eval(&o, &env).unwrap().as_bag().unwrap().to_vec();
        out.sort();
        assert_eq!(
            out,
            mat(&[(0, 0, 19), (0, 1, 22), (1, 0, 43), (1, 1, 50)])
                .as_bag()
                .unwrap()
        );
    }

    #[test]
    fn duplicate_array_accesses_are_merged() {
        // { v1 * v2 | (i1, v1) ← P, i1 == i, (i2, v2) ← P, i2 == i } — the
        // shape E⟦P[i] * P[i]⟧ produces. One access must remain.
        let e = CExpr::Comp(Comprehension::new(
            CExpr::Bin(
                BinOp::Mul,
                Box::new(CExpr::var("v1")),
                Box::new(CExpr::var("v2")),
            ),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i1"), Pattern::var("v1")),
                    CExpr::var("P"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("i1"), CExpr::var("i"))),
                Qual::Gen(
                    Pattern::pair(Pattern::var("i2"), Pattern::var("v2")),
                    CExpr::var("P"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("i2"), CExpr::var("i"))),
            ],
        ));
        let mut env = Env::new();
        env.insert("P".into(), pairs(&[(1, 3), (2, 5)]));
        env.insert("i".into(), Value::Long(2));
        let o = assert_same_meaning(&e, &env);
        let CExpr::Comp(c) = &o else { panic!() };
        let gens = c
            .quals
            .iter()
            .filter(|q| matches!(q, Qual::Gen(_, CExpr::Var(_))))
            .count();
        assert_eq!(gens, 1, "one traversal of P remains: {c:?}");
        assert_eq!(
            eval(&o, &env).unwrap().as_bag().unwrap(),
            &[Value::Long(25)]
        );
    }

    #[test]
    fn distinct_accesses_are_not_merged() {
        // P[i] * P[i+1] must keep two generators.
        let e = CExpr::Comp(Comprehension::new(
            CExpr::Bin(
                BinOp::Mul,
                Box::new(CExpr::var("v1")),
                Box::new(CExpr::var("v2")),
            ),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i1"), Pattern::var("v1")),
                    CExpr::var("P"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("i1"), CExpr::var("i"))),
                Qual::Gen(
                    Pattern::pair(Pattern::var("i2"), Pattern::var("v2")),
                    CExpr::var("P"),
                ),
                Qual::Pred(CExpr::eq(
                    CExpr::var("i2"),
                    CExpr::Bin(
                        BinOp::Add,
                        Box::new(CExpr::var("i")),
                        Box::new(CExpr::long(1)),
                    ),
                )),
            ],
        ));
        let mut ng = NameGen::new();
        let o = optimize(&e, &mut ng);
        let CExpr::Comp(c) = &o else { panic!() };
        let gens = c
            .quals
            .iter()
            .filter(|q| matches!(q, Qual::Gen(_, CExpr::Var(_))))
            .count();
        assert_eq!(gens, 2, "{c:?}");
    }

    #[test]
    fn dead_lets_are_removed() {
        let e = CExpr::Comp(Comprehension::new(
            CExpr::var("x"),
            vec![
                Qual::Gen(Pattern::var("x"), CExpr::var("X")),
                Qual::Let(Pattern::var("unused"), CExpr::long(3)),
            ],
        ));
        let mut ng = NameGen::new();
        let o = optimize(&e, &mut ng);
        let CExpr::Comp(c) = &o else { panic!() };
        assert_eq!(c.quals.len(), 1, "{c:?}");
    }
}
