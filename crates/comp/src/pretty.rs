//! Pretty printer for the comprehension calculus, matching the paper's
//! notation: `{ e | p ← X, let v = e, pred, group by k }`.

use crate::ir::{CExpr, Comprehension, Pattern, Qual};

/// Pretty-prints a comprehension expression.
pub fn pretty_cexpr(e: &CExpr) -> String {
    match e {
        CExpr::Var(v) => v.clone(),
        CExpr::Const(v) => v.to_string(),
        CExpr::Bin(op, a, b) => {
            format!("({} {} {})", pretty_cexpr(a), op.symbol(), pretty_cexpr(b))
        }
        CExpr::Un(op, a) => match op {
            diablo_runtime::UnOp::Neg => format!("(-{})", pretty_cexpr(a)),
            diablo_runtime::UnOp::Not => format!("(!{})", pretty_cexpr(a)),
        },
        CExpr::Call(f, args) => {
            let args = args.iter().map(pretty_cexpr).collect::<Vec<_>>().join(", ");
            format!("{}({args})", f.name())
        }
        CExpr::Tuple(fs) => {
            let fs = fs.iter().map(pretty_cexpr).collect::<Vec<_>>().join(", ");
            format!("({fs})")
        }
        CExpr::Record(fs) => {
            let fs = fs
                .iter()
                .map(|(n, e)| format!("{n} = {}", pretty_cexpr(e)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("<| {fs} |>")
        }
        CExpr::Proj(e, f) => format!("{}.{f}", pretty_cexpr(e)),
        CExpr::Comp(c) => pretty_comp(c),
        CExpr::Agg(op, e) => format!("{}/{}", op.op.symbol(), pretty_cexpr(e)),
        CExpr::Merge {
            left,
            right,
            combine,
        } => match combine {
            None => format!("({} ⊳ {})", pretty_cexpr(left), pretty_cexpr(right)),
            Some(op) => format!(
                "({} ⊳[{}] {})",
                pretty_cexpr(left),
                op.symbol(),
                pretty_cexpr(right)
            ),
        },
        CExpr::Range(lo, hi) => format!("range({}, {})", pretty_cexpr(lo), pretty_cexpr(hi)),
    }
}

/// Pretty-prints a comprehension.
pub fn pretty_comp(c: &Comprehension) -> String {
    if c.quals.is_empty() {
        return format!("{{ {} }}", pretty_cexpr(&c.head));
    }
    let quals = c
        .quals
        .iter()
        .map(pretty_qual)
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{ {} | {quals} }}", pretty_cexpr(&c.head))
}

/// Pretty-prints a qualifier.
pub fn pretty_qual(q: &Qual) -> String {
    match q {
        Qual::Gen(p, e) => format!("{} <- {}", pretty_pattern(p), pretty_cexpr(e)),
        Qual::Let(p, e) => format!("let {} = {}", pretty_pattern(p), pretty_cexpr(e)),
        Qual::Pred(e) => pretty_cexpr(e),
        Qual::GroupBy(p, e) => format!("group by {} : {}", pretty_pattern(p), pretty_cexpr(e)),
    }
}

/// Pretty-prints a pattern.
pub fn pretty_pattern(p: &Pattern) -> String {
    match p {
        Pattern::Var(v) => v.clone(),
        Pattern::Tuple(ps) => {
            let ps = ps.iter().map(pretty_pattern).collect::<Vec<_>>().join(", ");
            format!("({ps})")
        }
        Pattern::Wild => "_".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_runtime::{AggOp, BinOp};

    #[test]
    fn prints_the_intro_comprehension() {
        // { (k, +/v) | (i, k, v) ← A, group by k }
        let c = Comprehension::new(
            CExpr::pair(
                CExpr::var("k"),
                CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("v"))),
            ),
            vec![
                Qual::Gen(
                    Pattern::Tuple(vec![
                        Pattern::var("i"),
                        Pattern::var("k"),
                        Pattern::var("v"),
                    ]),
                    CExpr::var("A"),
                ),
                Qual::GroupBy(Pattern::var("k"), CExpr::var("k")),
            ],
        );
        assert_eq!(
            pretty_comp(&c),
            "{ (k, +/v) | (i, k, v) <- A, group by k : k }"
        );
    }

    #[test]
    fn prints_merges_and_ranges() {
        let e = CExpr::Merge {
            left: Box::new(CExpr::var("V")),
            right: Box::new(CExpr::Range(
                Box::new(CExpr::long(1)),
                Box::new(CExpr::long(9)),
            )),
            combine: Some(BinOp::Add),
        };
        assert_eq!(pretty_cexpr(&e), "(V ⊳[+] range(1, 9))");
    }
}
