//! Direct in-memory evaluation of comprehension expressions.
//!
//! This gives the calculus its reference semantics, independent of the
//! distributed engine. The driver uses it for scalar-only target
//! expressions (e.g. `while` conditions); the test suite uses it to check
//! that normalization and optimization are meaning-preserving; the
//! Casper-style baseline uses it to validate synthesized candidates.
//!
//! Environments map variable names to [`Value`]s. Program arrays appear as
//! bags of `(key, value)` pairs.

use std::collections::HashMap;

use diablo_runtime::{merge_pairs, BinOp, RuntimeError, Value};

use crate::ir::{CExpr, Comprehension, Qual};

/// An evaluation environment.
pub type Env = HashMap<String, Value>;

/// Result alias for evaluation.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Evaluates an expression under an environment.
pub fn eval(e: &CExpr, env: &Env) -> Result<Value> {
    match e {
        CExpr::Var(v) => env
            .get(v)
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("unbound variable `{v}` in comprehension"))),
        CExpr::Const(v) => Ok(v.clone()),
        CExpr::Bin(op, a, b) => {
            let a = eval(a, env)?;
            let b = eval(b, env)?;
            op.apply(&a, &b)
        }
        CExpr::Un(op, a) => op.apply(&eval(a, env)?),
        CExpr::Call(f, args) => {
            let vals = args
                .iter()
                .map(|a| eval(a, env))
                .collect::<Result<Vec<_>>>()?;
            f.apply(&vals)
        }
        CExpr::Tuple(fs) => {
            let vals = fs
                .iter()
                .map(|f| eval(f, env))
                .collect::<Result<Vec<_>>>()?;
            Ok(Value::tuple(vals))
        }
        CExpr::Record(fs) => {
            let vals = fs
                .iter()
                .map(|(n, f)| Ok((n.clone(), eval(f, env)?)))
                .collect::<Result<Vec<_>>>()?;
            Ok(Value::record(vals))
        }
        CExpr::Proj(e, field) => {
            let v = eval(e, env)?;
            v.field(field)
                .cloned()
                .ok_or_else(|| RuntimeError::new(format!("value {v} has no field `{field}`")))
        }
        CExpr::Comp(c) => Ok(Value::bag(eval_comp(c, env)?)),
        CExpr::Agg(op, e) => {
            let v = eval(e, env)?;
            let items = v
                .as_bag()
                .ok_or_else(|| RuntimeError::new("aggregation over a non-bag"))?;
            op.reduce(items.iter())
        }
        CExpr::Merge {
            left,
            right,
            combine,
        } => {
            let l = eval(left, env)?;
            let r = eval(right, env)?;
            let (Some(xs), Some(ys)) = (l.as_bag(), r.as_bag()) else {
                return Err(RuntimeError::new("⊳ expects bags"));
            };
            match combine {
                None => Ok(Value::bag(merge_pairs(xs, ys)?)),
                Some(op) => Ok(Value::bag(merge_with(xs, ys, *op)?)),
            }
        }
        CExpr::Range(lo, hi) => {
            let lo = eval(lo, env)?
                .as_long()
                .ok_or_else(|| RuntimeError::new("range bound must be long"))?;
            let hi = eval(hi, env)?
                .as_long()
                .ok_or_else(|| RuntimeError::new("range bound must be long"))?;
            Ok(Value::bag((lo..=hi).map(Value::Long).collect()))
        }
    }
}

/// Merge with a combining monoid: keys on both sides combine `old ⊕ new`;
/// keys on one side pass through. Duplicate keys within `ys` also combine.
pub fn merge_with(xs: &[Value], ys: &[Value], op: BinOp) -> Result<Vec<Value>> {
    let mut index: HashMap<Value, usize> = HashMap::with_capacity(xs.len() + ys.len());
    let mut out: Vec<(Value, Value)> = Vec::with_capacity(xs.len() + ys.len());
    for p in xs {
        let (k, v) = diablo_runtime::array::key_value(p)?;
        match index.get(&k) {
            Some(&i) => out[i].1 = v, // right bias within the old side
            None => {
                index.insert(k.clone(), out.len());
                out.push((k, v));
            }
        }
    }
    for p in ys {
        let (k, v) = diablo_runtime::array::key_value(p)?;
        match index.get(&k) {
            Some(&i) => {
                let combined = op.apply(&out[i].1, &v)?;
                out[i].1 = combined;
            }
            None => {
                index.insert(k.clone(), out.len());
                out.push((k, v));
            }
        }
    }
    Ok(out.into_iter().map(|(k, v)| Value::pair(k, v)).collect())
}

/// Evaluates a comprehension to the vector of its produced values.
pub fn eval_comp(c: &Comprehension, env: &Env) -> Result<Vec<Value>> {
    // Each in-flight binding set extends the outer environment.
    let mut envs: Vec<Env> = vec![env.clone()];
    // Variables bound since the start (or the last group-by), in order —
    // these are the ones a group-by lifts to bags.
    let mut local_vars: Vec<String> = Vec::new();
    for q in &c.quals {
        match q {
            Qual::Gen(p, dom) => {
                let mut next = Vec::new();
                for env in &envs {
                    let d = eval(dom, env)?;
                    let items = d.as_bag().ok_or_else(|| {
                        RuntimeError::new(format!(
                            "generator domain must be a bag, got {}",
                            d.type_name()
                        ))
                    })?;
                    for item in items {
                        let mut binds = Vec::new();
                        if !p.bind(item, &mut binds) {
                            return Err(RuntimeError::new(format!(
                                "pattern {p:?} does not match {item}"
                            )));
                        }
                        let mut e2 = env.clone();
                        for (n, v) in binds {
                            e2.insert(n, v);
                        }
                        next.push(e2);
                    }
                }
                envs = next;
                for v in p.var_list() {
                    local_vars.push(v);
                }
            }
            Qual::Let(p, e) => {
                for env in &mut envs {
                    let v = eval(e, env)?;
                    let mut binds = Vec::new();
                    if !p.bind(&v, &mut binds) {
                        return Err(RuntimeError::new(format!(
                            "let pattern {p:?} does not match {v}"
                        )));
                    }
                    for (n, v) in binds {
                        env.insert(n, v);
                    }
                }
                for v in p.var_list() {
                    local_vars.push(v);
                }
            }
            Qual::Pred(e) => {
                let mut next = Vec::with_capacity(envs.len());
                for env in envs {
                    let v = eval(e, &env)?;
                    match v.as_bool() {
                        Some(true) => next.push(env),
                        Some(false) => {}
                        None => {
                            return Err(RuntimeError::new(format!(
                                "condition evaluated to {}, not bool",
                                v.type_name()
                            )))
                        }
                    }
                }
                envs = next;
            }
            Qual::GroupBy(p, key) => {
                let key_vars: Vec<String> = p.var_list();
                // Group environments by key; preserve first-seen key order
                // for determinism.
                let mut order: Vec<Value> = Vec::new();
                let mut groups: HashMap<Value, Vec<Env>> = HashMap::new();
                for env in envs {
                    let k = eval(key, &env)?;
                    match groups.get_mut(&k) {
                        Some(g) => g.push(env),
                        None => {
                            order.push(k.clone());
                            groups.insert(k, vec![env]);
                        }
                    }
                }
                let lifted: Vec<String> = local_vars
                    .iter()
                    .filter(|v| !key_vars.contains(v))
                    .cloned()
                    .collect();
                let mut next = Vec::with_capacity(order.len());
                for k in order {
                    let members = &groups[&k];
                    // Start from the shared outer environment.
                    let mut e2 = env.clone();
                    let mut binds = Vec::new();
                    if !p.bind(&k, &mut binds) {
                        return Err(RuntimeError::new(format!(
                            "group-by pattern {p:?} does not match key {k}"
                        )));
                    }
                    for (n, v) in binds {
                        e2.insert(n, v);
                    }
                    for var in &lifted {
                        let bag: Vec<Value> =
                            members.iter().filter_map(|m| m.get(var).cloned()).collect();
                        e2.insert(var.clone(), Value::bag(bag));
                    }
                    next.push(e2);
                }
                envs = next;
                local_vars = key_vars;
                for v in &lifted {
                    local_vars.push(v.clone());
                }
            }
        }
    }
    envs.iter().map(|env| eval(&c.head, env)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Pattern;
    use diablo_runtime::AggOp;

    fn long_pairs(entries: &[(i64, i64)]) -> Value {
        Value::bag(
            entries
                .iter()
                .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
                .collect(),
        )
    }

    #[test]
    fn generator_and_filter() {
        // { v | (i, v) ← V, v > 10 }
        let comp = Comprehension::new(
            CExpr::var("v"),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i"), Pattern::var("v")),
                    CExpr::var("V"),
                ),
                Qual::Pred(CExpr::Bin(
                    BinOp::Gt,
                    Box::new(CExpr::var("v")),
                    Box::new(CExpr::long(10)),
                )),
            ],
        );
        let mut env = Env::new();
        env.insert("V".into(), long_pairs(&[(0, 5), (1, 15), (2, 25)]));
        let out = eval_comp(&comp, &env).unwrap();
        assert_eq!(out, vec![Value::Long(15), Value::Long(25)]);
    }

    #[test]
    fn group_by_lifts_and_aggregates() {
        // { (k, +/v) | (i, v) ← V, group by k : i % 2 } with V indexed 0..=3.
        let comp = Comprehension::new(
            CExpr::pair(
                CExpr::var("k"),
                CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("v"))),
            ),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i"), Pattern::var("v")),
                    CExpr::var("V"),
                ),
                Qual::GroupBy(
                    Pattern::var("k"),
                    CExpr::Bin(
                        BinOp::Mod,
                        Box::new(CExpr::var("i")),
                        Box::new(CExpr::long(2)),
                    ),
                ),
            ],
        );
        let mut env = Env::new();
        env.insert(
            "V".into(),
            long_pairs(&[(0, 1), (1, 10), (2, 100), (3, 1000)]),
        );
        let mut out = eval_comp(&comp, &env).unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![
                Value::pair(Value::Long(0), Value::Long(101)),
                Value::pair(Value::Long(1), Value::Long(1010)),
            ]
        );
    }

    #[test]
    fn join_via_two_generators() {
        // { m * n | (i, m) ← M, (j, n) ← N, i == j }
        let comp = Comprehension::new(
            CExpr::Bin(
                BinOp::Mul,
                Box::new(CExpr::var("m")),
                Box::new(CExpr::var("n")),
            ),
            vec![
                Qual::Gen(
                    Pattern::pair(Pattern::var("i"), Pattern::var("m")),
                    CExpr::var("M"),
                ),
                Qual::Gen(
                    Pattern::pair(Pattern::var("j"), Pattern::var("n")),
                    CExpr::var("N"),
                ),
                Qual::Pred(CExpr::eq(CExpr::var("i"), CExpr::var("j"))),
            ],
        );
        let mut env = Env::new();
        env.insert("M".into(), long_pairs(&[(1, 2), (2, 3)]));
        env.insert("N".into(), long_pairs(&[(1, 10), (3, 100)]));
        let out = eval_comp(&comp, &env).unwrap();
        assert_eq!(out, vec![Value::Long(20)]);
    }

    #[test]
    fn nested_comprehension_in_head() {
        // { (i, {v | v ← inner}) | (i, v0) ← V } — bags nest.
        let inner = CExpr::Comp(Comprehension::new(
            CExpr::var("w"),
            vec![Qual::Gen(Pattern::var("w"), CExpr::var("W"))],
        ));
        let comp = Comprehension::new(
            CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(inner)),
            vec![],
        );
        let mut env = Env::new();
        env.insert(
            "W".into(),
            Value::bag(vec![Value::Long(1), Value::Long(2), Value::Long(3)]),
        );
        let out = eval_comp(&comp, &env).unwrap();
        assert_eq!(out, vec![Value::Long(6)]);
    }

    #[test]
    fn range_generates_inclusive() {
        let e = CExpr::Range(Box::new(CExpr::long(2)), Box::new(CExpr::long(4)));
        let v = eval(&e, &Env::new()).unwrap();
        assert_eq!(
            v.as_bag().unwrap(),
            &[Value::Long(2), Value::Long(3), Value::Long(4)]
        );
    }

    #[test]
    fn merge_plain_and_combining() {
        let mut env = Env::new();
        env.insert("X".into(), long_pairs(&[(1, 10), (2, 20)]));
        env.insert("Y".into(), long_pairs(&[(2, 5), (3, 30)]));
        let plain = CExpr::Merge {
            left: Box::new(CExpr::var("X")),
            right: Box::new(CExpr::var("Y")),
            combine: None,
        };
        let mut got = eval(&plain, &env).unwrap().as_bag().unwrap().to_vec();
        got.sort();
        assert_eq!(
            got,
            long_pairs(&[(1, 10), (2, 5), (3, 30)]).as_bag().unwrap()
        );

        let combining = CExpr::Merge {
            left: Box::new(CExpr::var("X")),
            right: Box::new(CExpr::var("Y")),
            combine: Some(BinOp::Add),
        };
        let mut got = eval(&combining, &env).unwrap().as_bag().unwrap().to_vec();
        got.sort();
        assert_eq!(
            got,
            long_pairs(&[(1, 10), (2, 25), (3, 30)]).as_bag().unwrap()
        );
    }

    #[test]
    fn group_by_key_tuple_pattern() {
        // Matrix-multiplication-shaped group-by: group by (i, j).
        let comp = Comprehension::new(
            CExpr::Tuple(vec![
                CExpr::var("i"),
                CExpr::var("j"),
                CExpr::Agg(AggOp::new(BinOp::Add).unwrap(), Box::new(CExpr::var("v"))),
            ]),
            vec![
                Qual::Gen(
                    Pattern::Tuple(vec![
                        Pattern::var("i"),
                        Pattern::var("j"),
                        Pattern::var("v"),
                    ]),
                    CExpr::var("T"),
                ),
                Qual::GroupBy(
                    Pattern::pair(Pattern::var("i"), Pattern::var("j")),
                    CExpr::pair(CExpr::var("i"), CExpr::var("j")),
                ),
            ],
        );
        let mut env = Env::new();
        let t = Value::bag(vec![
            Value::tuple(vec![Value::Long(0), Value::Long(0), Value::Long(1)]),
            Value::tuple(vec![Value::Long(0), Value::Long(0), Value::Long(2)]),
            Value::tuple(vec![Value::Long(0), Value::Long(1), Value::Long(5)]),
        ]);
        env.insert("T".into(), t);
        let mut out = eval_comp(&comp, &env).unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![
                Value::tuple(vec![Value::Long(0), Value::Long(0), Value::Long(3)]),
                Value::tuple(vec![Value::Long(0), Value::Long(1), Value::Long(5)]),
            ]
        );
    }

    #[test]
    fn unbound_variable_is_an_error() {
        assert!(eval(&CExpr::var("nope"), &Env::new()).is_err());
    }

    #[test]
    fn pattern_mismatch_is_an_error() {
        let comp = Comprehension::new(
            CExpr::var("a"),
            vec![Qual::Gen(
                Pattern::pair(Pattern::var("a"), Pattern::var("b")),
                CExpr::Comp(Comprehension::new(CExpr::long(1), vec![])),
            )],
        );
        assert!(eval_comp(&comp, &Env::new()).is_err());
    }
}
