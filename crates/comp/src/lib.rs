//! # diablo-comp
//!
//! The monoid comprehension calculus (§3.3) — the target language of the
//! DIABLO translation and the input of the DISC planner.
//!
//! A comprehension `{ e | q1, ..., qn }` has a head expression `e` and
//! qualifiers: generators `p ← e`, let-bindings `let p = e`, boolean
//! conditions, and `group by p : e`. A group-by lifts every pattern variable
//! bound before it (except the group-by key variables) from type `t` to a
//! *bag* of `t`; aggregations `⊕/v` then reduce those bags.
//!
//! The crate provides:
//!
//! * [`ir`] — the IR ([`CExpr`], [`Qual`], [`Pattern`], [`Comprehension`]);
//! * [`eval`] — a direct in-memory evaluator giving the calculus its
//!   reference semantics (used by tests, by the driver for scalar-only
//!   expressions, and by the Casper-style baseline's validator);
//! * [`normalize`] — Rule (2) unnesting of nested comprehensions,
//!   singleton-generator elimination, let inlining, predicate pushdown;
//! * [`optimize`] — Rule (16) constant-key group-by elimination, Rule (17)
//!   unique-key group-by elimination, and the loop-iteration elimination of
//!   §3.6 (`range` joins become array traversals guarded by `inRange`);
//! * [`pretty`] — a printer matching the paper's notation.

pub mod eval;
pub mod ir;
pub mod normalize;
pub mod optimize;
pub mod pretty;

pub use eval::{eval, eval_comp, Env};
pub use ir::{CExpr, Comprehension, Pattern, Qual};
pub use normalize::normalize;
pub use optimize::optimize;
pub use pretty::pretty_cexpr;
