//! Serialized-size estimation for dataset-size reporting.
//!
//! The paper reports dataset sizes by multiplying element counts by the Java
//! standard-serialization size of one element (§6: a
//! `((Long, Long), Double)` serializes to 234 bytes). Java serialization
//! carries heavy per-object headers that have no analogue here, so we report
//! an honest *in-memory payload* estimate instead: fixed 8-byte scalars plus
//! small structural overheads. `EXPERIMENTS.md` documents the substitution;
//! only relative sizes matter for the figure shapes.

use crate::value::Value;

/// Estimated serialized size of a value in bytes.
pub fn serialized_size(v: &Value) -> usize {
    match v {
        Value::Unit => 1,
        Value::Bool(_) => 1,
        Value::Long(_) => 8,
        Value::Double(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::Tuple(fs) => 2 + fs.iter().map(serialized_size).sum::<usize>(),
        Value::Record(fields) => {
            2 + fields
                .iter()
                .map(|(n, v)| 2 + n.len() + serialized_size(v))
                .sum::<usize>()
        }
        Value::Bag(items) => 4 + items.iter().map(serialized_size).sum::<usize>(),
    }
}

/// Estimated total size of a slice of rows.
pub fn slice_size(rows: &[Value]) -> usize {
    rows.iter().map(serialized_size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_matrix_element_size_is_fixed() {
        let elem = Value::pair(
            Value::pair(Value::Long(0), Value::Long(1)),
            Value::Double(3.5),
        );
        // ((long, long), double): 2 + (2 + 8 + 8) + 8 = 28 bytes.
        assert_eq!(serialized_size(&elem), 28);
    }

    #[test]
    fn strings_scale_with_length() {
        assert_eq!(serialized_size(&Value::str("abcd")), 8);
        assert!(serialized_size(&Value::str("abcdefgh")) > serialized_size(&Value::str("ab")));
    }

    #[test]
    fn slice_size_sums_rows() {
        let rows = vec![Value::Long(1), Value::Long(2)];
        assert_eq!(slice_size(&rows), 16);
    }
}
