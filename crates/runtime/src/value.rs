//! The dynamic [`Value`] model.
//!
//! Every datum in the system — a scalar read out of a loop variable, an
//! element of a sparse matrix, a whole group produced by a `group by`, a row
//! flowing through the dataflow engine — is a `Value`.
//!
//! `Value` implements a *total* order and hashing (doubles are compared with
//! `f64::total_cmp` and hashed by bit pattern) so that any value can be used
//! as a group-by or join key in the engine's shuffles.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed runtime value.
///
/// Collections (`Tuple`, `Record`, `Bag`) are reference counted so that rows
/// can be cloned cheaply when they fan out through joins and group-bys.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// The unit value `()`; used as the group-by key of total aggregations.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer (`int`/`long` in the loop language).
    Long(i64),
    /// A 64-bit float (`float`/`double` in the loop language).
    Double(f64),
    /// An immutable string.
    Str(Arc<str>),
    /// A tuple `(v1, ..., vn)`.
    Tuple(Arc<[Value]>),
    /// A record `⟨A1 = v1, ..., An = vn⟩` with named fields.
    Record(Arc<Vec<(String, Value)>>),
    /// A bag of values. Produced by lifting variables in a `group by` and by
    /// nested comprehensions.
    Bag(Arc<Vec<Value>>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds a tuple value from a vector of fields.
    pub fn tuple(fields: Vec<Value>) -> Value {
        Value::Tuple(Arc::from(fields))
    }

    /// Builds a pair `(a, b)` — the shape of every sparse-array element.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::tuple(vec![a, b])
    }

    /// Builds a record value from named fields.
    pub fn record(fields: Vec<(String, Value)>) -> Value {
        Value::Record(Arc::new(fields))
    }

    /// Builds a bag value.
    pub fn bag(items: Vec<Value>) -> Value {
        Value::Bag(Arc::new(items))
    }

    /// The empty bag.
    pub fn empty_bag() -> Value {
        Value::Bag(Arc::new(Vec::new()))
    }

    /// Returns the long payload, coercing booleans (`true = 1`).
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Value::Long(n) => Some(*n),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Returns the numeric payload as a double, promoting longs and
    /// coercing booleans (`true = 1.0`). The surface type checker forbids
    /// boolean arithmetic, so the coercion is only reachable from
    /// dynamically built expressions (e.g. synthesized candidates that
    /// encode a guard as `(p) * e`).
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(x) => Some(*x),
            Value::Long(n) => Some(*n as f64),
            Value::Bool(b) => Some(f64::from(*b)),
            _ => None,
        }
    }

    /// Returns the boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the tuple fields.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(fs) => Some(fs),
            _ => None,
        }
    }

    /// Returns the bag contents.
    pub fn as_bag(&self) -> Option<&[Value]> {
        match self {
            Value::Bag(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a record field by name, or a tuple position `_1`, `_2`, ….
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            Value::Tuple(fs) => {
                let idx: usize = name.strip_prefix('_')?.parse().ok()?;
                fs.get(idx.checked_sub(1)?)
            }
            _ => None,
        }
    }

    /// True if the value is numeric (long or double).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Long(_) | Value::Double(_))
    }

    /// A short name for the value's runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Long(_) => "long",
            Value::Double(_) => "double",
            Value::Str(_) => "string",
            Value::Tuple(_) => "tuple",
            Value::Record(_) => "record",
            Value::Bag(_) => "bag",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

/// Rank used to order values of different runtime types, so that the order
/// is total even across heterogeneous bags.
fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Unit => 0,
        Value::Bool(_) => 1,
        Value::Long(_) => 2,
        Value::Double(_) => 2, // longs and doubles compare numerically
        Value::Str(_) => 3,
        Value::Tuple(_) => 4,
        Value::Record(_) => 5,
        Value::Bag(_) => 6,
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Unit, Unit) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Long(a), Long(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Long(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Long(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Record(a), Record(b)) => {
                for ((na, va), (nb, vb)) in a.iter().zip(b.iter()) {
                    let c = na.cmp(nb).then_with(|| va.cmp(vb));
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Bag(a), Bag(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Unit => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Longs and doubles that compare equal must hash equally, so a
            // long hashes as the bit pattern of its double image. Every i64
            // key used in practice (array indexes) is far below 2^53, where
            // the long → double mapping is injective.
            Value::Long(n) => {
                2u8.hash(state);
                (*n as f64).to_bits().hash(state);
            }
            Value::Double(x) => {
                2u8.hash(state);
                x.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Tuple(fs) => {
                4u8.hash(state);
                for f in fs.iter() {
                    f.hash(state);
                }
            }
            Value::Record(fields) => {
                5u8.hash(state);
                for (n, v) in fields.iter() {
                    n.hash(state);
                    v.hash(state);
                }
            }
            Value::Bag(items) => {
                6u8.hash(state);
                for v in items.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Long(n) => write!(f, "{n}"),
            Value::Double(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tuple(fs) => {
                write!(f, "(")?;
                for (i, v) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Record(fields) => {
                write!(f, "<|")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} = {v}")?;
                }
                write!(f, "|>")
            }
            Value::Bag(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Long(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Double(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn long_double_numeric_equality() {
        assert_eq!(Value::Long(3), Value::Double(3.0));
        assert_ne!(Value::Long(3), Value::Double(3.5));
        assert_eq!(hash_of(&Value::Long(3)), hash_of(&Value::Double(3.0)));
    }

    #[test]
    fn tuple_ordering_is_lexicographic() {
        let a = Value::tuple(vec![Value::Long(1), Value::Long(2)]);
        let b = Value::tuple(vec![Value::Long(1), Value::Long(3)]);
        assert!(a < b);
        let c = Value::tuple(vec![Value::Long(1)]);
        assert!(c < a, "shorter tuple with equal prefix sorts first");
    }

    #[test]
    fn field_lookup_on_records_and_tuples() {
        let r = Value::record(vec![
            ("x".into(), Value::Double(1.5)),
            ("y".into(), Value::Double(2.5)),
        ]);
        assert_eq!(r.field("y"), Some(&Value::Double(2.5)));
        assert_eq!(r.field("z"), None);

        let t = Value::tuple(vec![Value::Long(10), Value::Long(20)]);
        assert_eq!(t.field("_1"), Some(&Value::Long(10)));
        assert_eq!(t.field("_2"), Some(&Value::Long(20)));
        assert_eq!(t.field("_3"), None);
        assert_eq!(t.field("_0"), None, "tuple positions are 1-based");
    }

    #[test]
    fn nan_has_a_total_order() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Double(1.0) < nan);
    }

    #[test]
    fn display_round_trips_simple_shapes() {
        let v = Value::pair(
            Value::tuple(vec![Value::Long(1), Value::Long(2)]),
            Value::Double(3.5),
        );
        assert_eq!(v.to_string(), "((1, 2), 3.5)");
    }

    #[test]
    fn cross_type_comparison_is_stable() {
        assert!(Value::Unit < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Long(0));
        assert!(Value::Long(9) < Value::str("a"));
        assert!(Value::str("z") < Value::tuple(vec![]));
    }
}
