//! Scalar operator semantics.
//!
//! The loop language (paper Fig. 1) allows "any binary operation ⋆" in
//! expressions and any *commutative* operation `⊕` in incremental updates
//! `d ⊕= e` (§3.5). This module defines those operators over [`Value`]s:
//!
//! * [`BinOp`] — binary operators, with [`BinOp::is_commutative`] encoding
//!   which ones may appear in incremental updates;
//! * [`UnOp`] — unary negation / logical not;
//! * [`Func`] — builtin functions (`sqrt`, `pow`, `inRange`, …). `inRange`
//!   is the range predicate introduced by loop-iteration elimination (§3.6);
//! * [`AggOp`] — the reductions `⊕/v` applied to lifted bags after a
//!   `group by`.
//!
//! Numeric promotion follows the usual convention: `long ⋆ long = long`,
//! anything involving a `double` is a `double`. Addition on tuples is
//! element-wise, which is how the K-Means running-average state
//! `(sum_x, sum_y, count)` is merged; `argmin` on pairs `(index, distance)`
//! picks the pair with the smaller distance, which is the `^` monoid of the
//! paper's K-Means program (Appendix B).

use crate::value::Value;
use crate::{Result, RuntimeError};

/// Binary operators of the loop language and comprehension calculus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` — numeric addition; element-wise on tuples.
    Add,
    /// `-` — numeric subtraction.
    Sub,
    /// `*` — numeric multiplication.
    Mul,
    /// `/` — numeric division (long division on two longs).
    Div,
    /// `%` — remainder.
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `min` — numeric minimum.
    Min,
    /// `max` — numeric maximum.
    Max,
    /// `^` on pairs `(index, distance)`: the operand with smaller distance.
    ArgMin,
}

impl BinOp {
    /// True for operations that are commutative (and associative), i.e. the
    /// monoids `⊕` the paper admits in incremental updates `d ⊕= e` (§1.1:
    /// "for some commutative operation ⊕").
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::Min
                | BinOp::Max
                | BinOp::And
                | BinOp::Or
                | BinOp::ArgMin
        )
    }

    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::ArgMin => "^",
        }
    }

    /// Applies the operator to two values.
    pub fn apply(self, a: &Value, b: &Value) -> Result<Value> {
        use BinOp::*;
        match self {
            Add => numeric_or_structural_add(a, b),
            Sub => arith(a, b, "-", |x, y| x - y, |x, y| x.wrapping_sub(y)),
            Mul => arith(a, b, "*", |x, y| x * y, |x, y| x.wrapping_mul(y)),
            Div => match (a, b) {
                (Value::Long(x), Value::Long(y)) => {
                    if *y == 0 {
                        Err(RuntimeError::new("division by zero"))
                    } else {
                        Ok(Value::Long(x / y))
                    }
                }
                _ => {
                    let (x, y) = both_doubles(a, b, "/")?;
                    Ok(Value::Double(x / y))
                }
            },
            Mod => match (a, b) {
                (Value::Long(x), Value::Long(y)) => {
                    if *y == 0 {
                        Err(RuntimeError::new("modulo by zero"))
                    } else {
                        Ok(Value::Long(x % y))
                    }
                }
                _ => {
                    let (x, y) = both_doubles(a, b, "%")?;
                    Ok(Value::Double(x % y))
                }
            },
            Eq => Ok(Value::Bool(a == b)),
            Ne => Ok(Value::Bool(a != b)),
            Lt => Ok(Value::Bool(a < b)),
            Le => Ok(Value::Bool(a <= b)),
            Gt => Ok(Value::Bool(a > b)),
            Ge => Ok(Value::Bool(a >= b)),
            And => {
                let (x, y) = both_bools(a, b, "&&")?;
                Ok(Value::Bool(x && y))
            }
            Or => {
                let (x, y) = both_bools(a, b, "||")?;
                Ok(Value::Bool(x || y))
            }
            Min => Ok(if a <= b { a.clone() } else { b.clone() }),
            Max => Ok(if a >= b { a.clone() } else { b.clone() }),
            ArgMin => argmin(a, b),
        }
    }
}

/// `+` over numbers, and element-wise over equal-length tuples (used by the
/// K-Means average-accumulator monoid).
fn numeric_or_structural_add(a: &Value, b: &Value) -> Result<Value> {
    match (a, b) {
        (Value::Long(x), Value::Long(y)) => Ok(Value::Long(x.wrapping_add(*y))),
        (Value::Tuple(xs), Value::Tuple(ys)) => {
            if xs.len() != ys.len() {
                return Err(RuntimeError::new(format!(
                    "cannot add tuples of lengths {} and {}",
                    xs.len(),
                    ys.len()
                )));
            }
            let fields = xs
                .iter()
                .zip(ys.iter())
                .map(|(x, y)| numeric_or_structural_add(x, y))
                .collect::<Result<Vec<_>>>()?;
            Ok(Value::tuple(fields))
        }
        _ => {
            let (x, y) = both_doubles(a, b, "+")?;
            Ok(Value::Double(x + y))
        }
    }
}

/// `argmin` over pairs `(payload, distance)`: keeps the operand with the
/// smaller second component. Commutative and associative (ties keep the
/// left operand; with a total order on doubles this is still a monoid up to
/// the tie-breaking choice, which the paper also accepts for `^`).
fn argmin(a: &Value, b: &Value) -> Result<Value> {
    let da = a
        .field("_2")
        .and_then(Value::as_double)
        .ok_or_else(|| RuntimeError::new("argmin expects pairs (x, distance)"))?;
    let db = b
        .field("_2")
        .and_then(Value::as_double)
        .ok_or_else(|| RuntimeError::new("argmin expects pairs (x, distance)"))?;
    Ok(if da <= db { a.clone() } else { b.clone() })
}

fn arith(
    a: &Value,
    b: &Value,
    sym: &str,
    fd: impl Fn(f64, f64) -> f64,
    fl: impl Fn(i64, i64) -> i64,
) -> Result<Value> {
    match (a, b) {
        (Value::Long(x), Value::Long(y)) => Ok(Value::Long(fl(*x, *y))),
        _ => {
            let (x, y) = both_doubles(a, b, sym)?;
            Ok(Value::Double(fd(x, y)))
        }
    }
}

fn both_doubles(a: &Value, b: &Value, sym: &str) -> Result<(f64, f64)> {
    match (a.as_double(), b.as_double()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(RuntimeError::new(format!(
            "operator `{sym}` expects numbers, got {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

fn both_bools(a: &Value, b: &Value, sym: &str) -> Result<(bool, bool)> {
    match (a.as_bool(), b.as_bool()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(RuntimeError::new(format!(
            "operator `{sym}` expects booleans, got {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Numeric negation `-e`.
    Neg,
    /// Logical negation `!e`.
    Not,
}

impl UnOp {
    /// Applies the operator.
    pub fn apply(self, v: &Value) -> Result<Value> {
        match self {
            UnOp::Neg => match v {
                Value::Long(n) => Ok(Value::Long(-n)),
                Value::Double(x) => Ok(Value::Double(-x)),
                _ => Err(RuntimeError::new(format!(
                    "cannot negate {}",
                    v.type_name()
                ))),
            },
            UnOp::Not => match v {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                _ => Err(RuntimeError::new(format!(
                    "cannot apply ! to {}",
                    v.type_name()
                ))),
            },
        }
    }
}

/// Builtin scalar functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Func {
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// `pow(x, y)`.
    Pow,
    /// `inRange(x, lo, hi)` — the §3.6 range predicate: `lo ≤ x ≤ hi`.
    InRange,
    /// Truncating conversion to long.
    ToLong,
    /// Conversion to double.
    ToDouble,
}

impl Func {
    /// Resolves a surface-syntax function name.
    pub fn by_name(name: &str) -> Option<Func> {
        Some(match name {
            "sqrt" => Func::Sqrt,
            "abs" => Func::Abs,
            "exp" => Func::Exp,
            "log" => Func::Log,
            "pow" => Func::Pow,
            "inRange" => Func::InRange,
            "toLong" => Func::ToLong,
            "toDouble" => Func::ToDouble,
            _ => return None,
        })
    }

    /// The surface name of the function.
    pub fn name(self) -> &'static str {
        match self {
            Func::Sqrt => "sqrt",
            Func::Abs => "abs",
            Func::Exp => "exp",
            Func::Log => "log",
            Func::Pow => "pow",
            Func::InRange => "inRange",
            Func::ToLong => "toLong",
            Func::ToDouble => "toDouble",
        }
    }

    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            Func::Pow => 2,
            Func::InRange => 3,
            _ => 1,
        }
    }

    /// Applies the function to its arguments.
    pub fn apply(self, args: &[Value]) -> Result<Value> {
        if args.len() != self.arity() {
            return Err(RuntimeError::new(format!(
                "{} expects {} argument(s), got {}",
                self.name(),
                self.arity(),
                args.len()
            )));
        }
        let num = |v: &Value| {
            v.as_double().ok_or_else(|| {
                RuntimeError::new(format!(
                    "{} expects a number, got {}",
                    self.name(),
                    v.type_name()
                ))
            })
        };
        match self {
            Func::Sqrt => Ok(Value::Double(num(&args[0])?.sqrt())),
            Func::Abs => match &args[0] {
                Value::Long(n) => Ok(Value::Long(n.abs())),
                v => Ok(Value::Double(num(v)?.abs())),
            },
            Func::Exp => Ok(Value::Double(num(&args[0])?.exp())),
            Func::Log => Ok(Value::Double(num(&args[0])?.ln())),
            Func::Pow => Ok(Value::Double(num(&args[0])?.powf(num(&args[1])?))),
            Func::InRange => {
                let x = num(&args[0])?;
                let lo = num(&args[1])?;
                let hi = num(&args[2])?;
                Ok(Value::Bool(lo <= x && x <= hi))
            }
            Func::ToLong => Ok(Value::Long(num(&args[0])? as i64)),
            Func::ToDouble => Ok(Value::Double(num(&args[0])?)),
        }
    }
}

/// A reduction `⊕/v` over a bag, for a commutative monoid `⊕`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AggOp {
    /// The underlying commutative binary operation.
    pub op: BinOp,
}

impl AggOp {
    /// Creates an aggregation for a commutative operator.
    ///
    /// Returns `None` if `op` is not commutative — such operators may not be
    /// used in incremental updates (§3.5).
    pub fn new(op: BinOp) -> Option<AggOp> {
        op.is_commutative().then_some(AggOp { op })
    }

    /// The identity element of the monoid, when one exists for dynamic
    /// values. `Add`'s identity is `Long(0)` (numeric promotion makes it an
    /// identity for doubles too); tuple addition and `argmin` have no
    /// value-independent identity, so they return `None` and reductions over
    /// empty bags of those monoids are errors.
    pub fn identity(self) -> Option<Value> {
        match self.op {
            BinOp::Add => Some(Value::Long(0)),
            BinOp::Mul => Some(Value::Long(1)),
            BinOp::And => Some(Value::Bool(true)),
            BinOp::Or => Some(Value::Bool(false)),
            _ => None,
        }
    }

    /// Reduces a bag with the monoid. Empty bags reduce to the identity when
    /// one exists.
    pub fn reduce<'a>(self, items: impl IntoIterator<Item = &'a Value>) -> Result<Value> {
        let mut acc: Option<Value> = None;
        for v in items {
            acc = Some(match acc {
                None => v.clone(),
                Some(a) => self.op.apply(&a, v)?,
            });
        }
        match acc {
            Some(v) => Ok(v),
            None => self.identity().ok_or_else(|| {
                RuntimeError::new(format!(
                    "reduction {}/ over an empty bag has no identity",
                    self.op.symbol()
                ))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_promotion() {
        assert_eq!(
            BinOp::Add.apply(&Value::Long(2), &Value::Long(3)).unwrap(),
            Value::Long(5)
        );
        assert_eq!(
            BinOp::Add
                .apply(&Value::Long(2), &Value::Double(0.5))
                .unwrap(),
            Value::Double(2.5)
        );
        assert_eq!(
            BinOp::Div.apply(&Value::Long(7), &Value::Long(2)).unwrap(),
            Value::Long(3)
        );
        assert_eq!(
            BinOp::Div
                .apply(&Value::Double(7.0), &Value::Long(2))
                .unwrap(),
            Value::Double(3.5)
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(BinOp::Div.apply(&Value::Long(1), &Value::Long(0)).is_err());
        assert!(BinOp::Mod.apply(&Value::Long(1), &Value::Long(0)).is_err());
    }

    #[test]
    fn tuple_addition_is_elementwise() {
        let a = Value::tuple(vec![Value::Double(1.0), Value::Double(2.0), Value::Long(1)]);
        let b = Value::tuple(vec![Value::Double(0.5), Value::Double(1.5), Value::Long(1)]);
        let sum = BinOp::Add.apply(&a, &b).unwrap();
        assert_eq!(
            sum,
            Value::tuple(vec![Value::Double(1.5), Value::Double(3.5), Value::Long(2)])
        );
    }

    #[test]
    fn argmin_picks_smaller_distance() {
        let a = Value::pair(Value::Long(3), Value::Double(0.5));
        let b = Value::pair(Value::Long(7), Value::Double(0.2));
        assert_eq!(BinOp::ArgMin.apply(&a, &b).unwrap(), b);
        assert_eq!(BinOp::ArgMin.apply(&b, &a).unwrap(), b);
        // Ties keep the left operand.
        let c = Value::pair(Value::Long(9), Value::Double(0.2));
        assert_eq!(BinOp::ArgMin.apply(&b, &c).unwrap(), b);
    }

    #[test]
    fn commutativity_flags() {
        for op in [
            BinOp::Add,
            BinOp::Mul,
            BinOp::Min,
            BinOp::Max,
            BinOp::And,
            BinOp::Or,
            BinOp::ArgMin,
        ] {
            assert!(op.is_commutative(), "{op:?}");
        }
        for op in [BinOp::Sub, BinOp::Div, BinOp::Mod, BinOp::Lt, BinOp::Eq] {
            assert!(!op.is_commutative(), "{op:?}");
        }
    }

    #[test]
    fn aggregation_reduces_bags() {
        let agg = AggOp::new(BinOp::Add).unwrap();
        let items = [Value::Long(1), Value::Long(2), Value::Long(3)];
        assert_eq!(agg.reduce(items.iter()).unwrap(), Value::Long(6));
        assert_eq!(agg.reduce([].iter()).unwrap(), Value::Long(0));

        let agg = AggOp::new(BinOp::Min).unwrap();
        assert!(
            agg.reduce([].iter()).is_err(),
            "min over empty bag has no identity"
        );
        assert_eq!(AggOp::new(BinOp::Sub), None, "subtraction is not a monoid");
    }

    #[test]
    fn in_range_matches_paper_semantics() {
        // inRange(i, 0, d-1) is the predicate 0 <= i <= d-1 (§1.1).
        let f = Func::InRange;
        assert_eq!(
            f.apply(&[Value::Long(0), Value::Long(0), Value::Long(9)])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            f.apply(&[Value::Long(9), Value::Long(0), Value::Long(9)])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            f.apply(&[Value::Long(10), Value::Long(0), Value::Long(9)])
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn builtin_functions() {
        assert_eq!(
            Func::Sqrt.apply(&[Value::Double(9.0)]).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(Func::Abs.apply(&[Value::Long(-4)]).unwrap(), Value::Long(4));
        assert_eq!(
            Func::Pow
                .apply(&[Value::Double(2.0), Value::Double(10.0)])
                .unwrap(),
            Value::Double(1024.0)
        );
        assert_eq!(
            Func::ToLong.apply(&[Value::Double(3.7)]).unwrap(),
            Value::Long(3)
        );
        assert!(Func::by_name("sqrt").is_some());
        assert!(Func::by_name("nope").is_none());
    }
}
