//! Densely packed (tiled) matrices and the `pack`/`unpack` mappings of §5.
//!
//! The paper stores a tiled matrix as `{((long, long), Array[T])}`: a bag of
//! tiles where each tile carries its upper-left coordinate and a dense array
//! of elements. `unpack` maps a tiled matrix to the sparse representation
//!
//! ```text
//! unpack(N) = { ((I + k/m, J + k%m), v) | ((I,J), L) ← N, (k,v) ← scan(L) }
//! ```
//!
//! and `pack` groups sparse elements into `n × m` tiles:
//!
//! ```text
//! pack(M) = { ((I*n, J*m), form(z, n*m)) | ((i,j),v) ← M,
//!             let z = (i%n)*m + (j%m), group by (I: i/n, J: j/m) }
//! ```
//!
//! This module implements both directions plus tile-local dense kernels
//! (`add`, `multiply`) and the no-shuffle tile merge `⊳'`, which the §5
//! ablation benchmark compares against the sparse path.

use std::collections::HashMap;

use crate::value::Value;
use crate::{Result, RuntimeError};

/// A matrix packed into fixed-size dense tiles.
///
/// Absent tiles are implicitly zero, matching the sparse-array semantics of
/// the rest of the system. Elements inside a tile are stored row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct TiledMatrix {
    /// Number of rows in each tile (`n` in the paper).
    pub tile_rows: usize,
    /// Number of columns in each tile (`m` in the paper).
    pub tile_cols: usize,
    /// Tiles keyed by tile coordinate `(i / n, j / m)`.
    pub tiles: HashMap<(i64, i64), Vec<f64>>,
}

impl TiledMatrix {
    /// Creates an empty tiled matrix with the given tile shape.
    pub fn new(tile_rows: usize, tile_cols: usize) -> Self {
        assert!(
            tile_rows > 0 && tile_cols > 0,
            "tile shape must be positive"
        );
        TiledMatrix {
            tile_rows,
            tile_cols,
            tiles: HashMap::new(),
        }
    }

    /// `pack`: builds a tiled matrix from sparse `((i, j), v)` entries.
    pub fn pack(
        tile_rows: usize,
        tile_cols: usize,
        entries: impl IntoIterator<Item = (i64, i64, f64)>,
    ) -> Self {
        let mut m = TiledMatrix::new(tile_rows, tile_cols);
        for (i, j, v) in entries {
            m.set(i, j, v);
        }
        m
    }

    /// `pack` from a bag of sparse-matrix [`Value`] pairs `((i, j), v)`.
    pub fn pack_values(tile_rows: usize, tile_cols: usize, rows: &[Value]) -> Result<Self> {
        let mut m = TiledMatrix::new(tile_rows, tile_cols);
        for row in rows {
            let (k, v) = crate::array::key_value(row)?;
            let ij = k
                .as_tuple()
                .filter(|t| t.len() == 2)
                .ok_or_else(|| RuntimeError::new("matrix key must be (i, j)"))?;
            let (i, j) = (
                ij[0]
                    .as_long()
                    .ok_or_else(|| RuntimeError::new("matrix row index must be long"))?,
                ij[1]
                    .as_long()
                    .ok_or_else(|| RuntimeError::new("matrix col index must be long"))?,
            );
            let x = v
                .as_double()
                .ok_or_else(|| RuntimeError::new("tiled matrices hold doubles"))?;
            m.set(i, j, x);
        }
        Ok(m)
    }

    /// `unpack`: iterates the non-zero elements as sparse `(i, j, v)` entries.
    ///
    /// Explicit zeros inside an allocated tile are *not* emitted, so
    /// `unpack(pack(M)) = M` for matrices without explicit zero entries.
    pub fn unpack(&self) -> Vec<(i64, i64, f64)> {
        let mut out = Vec::new();
        let mut keys: Vec<_> = self.tiles.keys().copied().collect();
        keys.sort_unstable();
        for (ti, tj) in keys {
            let tile = &self.tiles[&(ti, tj)];
            for (k, &v) in tile.iter().enumerate() {
                if v != 0.0 {
                    let i = ti * self.tile_rows as i64 + (k / self.tile_cols) as i64;
                    let j = tj * self.tile_cols as i64 + (k % self.tile_cols) as i64;
                    out.push((i, j, v));
                }
            }
        }
        out
    }

    /// `unpack` into a bag of sparse-matrix [`Value`] pairs.
    pub fn unpack_values(&self) -> Vec<Value> {
        self.unpack()
            .into_iter()
            .map(|(i, j, v)| {
                Value::pair(
                    Value::pair(Value::Long(i), Value::Long(j)),
                    Value::Double(v),
                )
            })
            .collect()
    }

    fn locate(&self, i: i64, j: i64) -> ((i64, i64), usize) {
        let n = self.tile_rows as i64;
        let m = self.tile_cols as i64;
        let key = (i.div_euclid(n), j.div_euclid(m));
        let off = (i.rem_euclid(n) as usize) * self.tile_cols + j.rem_euclid(m) as usize;
        (key, off)
    }

    /// Reads element `(i, j)`, treating absent tiles as zero.
    pub fn get(&self, i: i64, j: i64) -> f64 {
        let (key, off) = self.locate(i, j);
        self.tiles.get(&key).map_or(0.0, |t| t[off])
    }

    /// Writes element `(i, j)`, allocating the enclosing tile if needed.
    pub fn set(&mut self, i: i64, j: i64, v: f64) {
        let (key, off) = self.locate(i, j);
        let len = self.tile_rows * self.tile_cols;
        self.tiles.entry(key).or_insert_with(|| vec![0.0; len])[off] = v;
    }

    /// Number of allocated tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// The no-shuffle tile merge `self ⊳' other`: tiles of `other` replace
    /// tiles of `self` at the same tile coordinate.
    pub fn merge(&self, other: &TiledMatrix) -> TiledMatrix {
        assert_eq!(
            (self.tile_rows, self.tile_cols),
            (other.tile_rows, other.tile_cols),
            "merged tiled matrices must share a tile shape"
        );
        let mut tiles = self.tiles.clone();
        for (k, t) in &other.tiles {
            tiles.insert(*k, t.clone());
        }
        TiledMatrix {
            tile_rows: self.tile_rows,
            tile_cols: self.tile_cols,
            tiles,
        }
    }

    /// Tile-wise dense addition.
    pub fn add(&self, other: &TiledMatrix) -> TiledMatrix {
        assert_eq!(
            (self.tile_rows, self.tile_cols),
            (other.tile_rows, other.tile_cols),
            "added tiled matrices must share a tile shape"
        );
        let mut out = self.clone();
        let len = self.tile_rows * self.tile_cols;
        for (k, t) in &other.tiles {
            let dst = out.tiles.entry(*k).or_insert_with(|| vec![0.0; len]);
            for (d, s) in dst.iter_mut().zip(t.iter()) {
                *d += s;
            }
        }
        out
    }

    /// Tiled matrix multiplication: for square tiles (`tile_rows ==
    /// tile_cols`), multiplies tile blocks with a dense inner kernel.
    pub fn multiply(&self, other: &TiledMatrix) -> TiledMatrix {
        assert_eq!(
            self.tile_cols, other.tile_rows,
            "inner tile shapes must agree"
        );
        let n = self.tile_rows;
        let k_dim = self.tile_cols;
        let m = other.tile_cols;
        let mut out = TiledMatrix::new(n, m);
        // Index other's tiles by their row coordinate for the join on k.
        let mut by_row: HashMap<i64, Vec<(i64, &Vec<f64>)>> = HashMap::new();
        for (&(tk, tj), tile) in &other.tiles {
            by_row.entry(tk).or_default().push((tj, tile));
        }
        for (&(ti, tk), a) in &self.tiles {
            let Some(rhs) = by_row.get(&tk) else { continue };
            for &(tj, b) in rhs {
                let dst = out
                    .tiles
                    .entry((ti, tj))
                    .or_insert_with(|| vec![0.0; n * m]);
                // Dense n×k · k×m kernel, row-major, ikj loop order.
                for i in 0..n {
                    for k in 0..k_dim {
                        let aik = a[i * k_dim + k];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[k * m..(k + 1) * m];
                        let drow = &mut dst[i * m..(i + 1) * m];
                        for (d, &bv) in drow.iter_mut().zip(brow.iter()) {
                            *d += aik * bv;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let entries = vec![(0, 0, 1.0), (0, 3, 2.0), (5, 7, 3.0), (2, 2, 4.0)];
        let m = TiledMatrix::pack(4, 4, entries.clone());
        let mut back = m.unpack();
        back.sort_by_key(|a| (a.0, a.1));
        let mut want = entries;
        want.sort_by_key(|a| (a.0, a.1));
        assert_eq!(back, want);
    }

    #[test]
    fn get_set_cross_tile_boundaries() {
        let mut m = TiledMatrix::new(2, 3);
        m.set(0, 0, 1.0);
        m.set(1, 2, 2.0);
        m.set(2, 3, 3.0); // second tile row, second tile column
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 2.0);
        assert_eq!(m.get(2, 3), 3.0);
        assert_eq!(m.get(9, 9), 0.0, "absent tiles read as zero");
        assert_eq!(m.tile_count(), 2);
    }

    #[test]
    fn tiled_multiply_matches_dense_reference() {
        let d = 6usize;
        let a: Vec<(i64, i64, f64)> = (0..d as i64)
            .flat_map(|i| (0..d as i64).map(move |j| (i, j, (i * 3 + j) as f64 % 5.0 + 1.0)))
            .collect();
        let b: Vec<(i64, i64, f64)> = (0..d as i64)
            .flat_map(|i| (0..d as i64).map(move |j| (i, j, (i + 2 * j) as f64 % 7.0 + 1.0)))
            .collect();
        let ta = TiledMatrix::pack(2, 2, a.clone());
        let tb = TiledMatrix::pack(2, 2, b.clone());
        let tc = ta.multiply(&tb);
        for i in 0..d as i64 {
            for j in 0..d as i64 {
                let mut want = 0.0;
                for k in 0..d as i64 {
                    let av = a.iter().find(|e| e.0 == i && e.1 == k).map_or(0.0, |e| e.2);
                    let bv = b.iter().find(|e| e.0 == k && e.1 == j).map_or(0.0, |e| e.2);
                    want += av * bv;
                }
                assert!((tc.get(i, j) - want).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn tiled_add_accumulates_per_tile() {
        let a = TiledMatrix::pack(2, 2, vec![(0, 0, 1.0), (3, 3, 2.0)]);
        let b = TiledMatrix::pack(2, 2, vec![(0, 0, 5.0), (1, 1, 7.0)]);
        let c = a.add(&b);
        assert_eq!(c.get(0, 0), 6.0);
        assert_eq!(c.get(1, 1), 7.0);
        assert_eq!(c.get(3, 3), 2.0);
    }

    #[test]
    fn merge_is_tile_granular_and_right_biased() {
        let a = TiledMatrix::pack(2, 2, vec![(0, 0, 1.0), (0, 1, 9.0), (3, 3, 2.0)]);
        let b = TiledMatrix::pack(2, 2, vec![(0, 0, 5.0)]);
        let c = a.merge(&b);
        assert_eq!(c.get(0, 0), 5.0);
        // Tile-granular: the whole (0,0) tile is replaced, so (0,1) from `a`
        // is gone — exactly the semantics of ⊳' on tiles.
        assert_eq!(c.get(0, 1), 0.0);
        assert_eq!(c.get(3, 3), 2.0);
    }

    #[test]
    fn pack_values_rejects_malformed_rows() {
        assert!(TiledMatrix::pack_values(2, 2, &[Value::Long(3)]).is_err());
        let bad_key = Value::pair(Value::Long(0), Value::Double(1.0));
        assert!(TiledMatrix::pack_values(2, 2, &[bad_key]).is_err());
    }

    #[test]
    fn unpack_values_produces_sparse_rows() {
        let m = TiledMatrix::pack(2, 2, vec![(1, 1, 4.5)]);
        let rows = m.unpack_values();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0],
            Value::pair(
                Value::pair(Value::Long(1), Value::Long(1)),
                Value::Double(4.5)
            )
        );
    }

    #[test]
    fn negative_indices_use_euclidean_tiling() {
        let mut m = TiledMatrix::new(4, 4);
        m.set(-1, -1, 2.0);
        assert_eq!(m.get(-1, -1), 2.0);
    }
}
