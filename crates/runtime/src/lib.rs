//! # diablo-runtime
//!
//! The dynamic value model and array substrate shared by every layer of the
//! DIABLO reproduction: the sequential interpreter, the monoid-comprehension
//! evaluator, and the distributed dataflow engine all move [`Value`]s around.
//!
//! The paper (Fegaras & Noor, *Translation of Array-Based Loops to
//! Distributed Data-Parallel Programs*, VLDB 2020) represents a sparse array
//! as a bag of key/value pairs (§3.4): a `vector[T]` is `{(long, T)}` and a
//! `matrix[T]` is `{((long, long), T)}`. This crate provides:
//!
//! * [`Value`] — a dynamically typed value (longs, doubles, booleans,
//!   strings, tuples, records, and bags) with total ordering and hashing so
//!   any value can serve as a shuffle key;
//! * [`ops`] — the scalar operator semantics (`+`, `*`, `min`, argmin, …)
//!   including the commutative monoid operations `⊕` used by incremental
//!   updates `d ⊕= e`;
//! * [`array`] — the array-merge operator `X ⊳ Y` of §3.4 and helpers for
//!   treating bags of pairs as sparse arrays;
//! * [`tile`] — densely packed (tiled) matrices and the `pack`/`unpack`
//!   conversions of §5;
//! * [`size`] — a serialized-size estimator mirroring how the paper reports
//!   dataset sizes in bytes (§6).

pub mod array;
pub mod ops;
pub mod size;
pub mod tile;
pub mod value;

pub use array::{merge_bags, merge_pairs};
pub use ops::{AggOp, BinOp, Func, UnOp};
pub use size::serialized_size;
pub use tile::TiledMatrix;
pub use value::Value;

/// Errors produced while evaluating operations over [`Value`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl RuntimeError {
    /// Creates a new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Prefixes the message with a source context (e.g. the statement a
    /// deferred operator error came from). Idempotent for a given prefix,
    /// so an error replayed through the same tagged step is not tagged
    /// twice.
    pub fn with_context(self, context: &str) -> Self {
        let prefix = format!("[{context}] ");
        if self.message.starts_with(&prefix) {
            self
        } else {
            Self {
                message: format!("{prefix}{}", self.message),
            }
        }
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// Convenient result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;
