//! Sparse-array helpers and the array-merge operator `X ⊳ Y` (§3.4).
//!
//! A sparse array is a bag of `(key, value)` pairs. The merge `X ⊳ Y` is the
//! union of `X` and `Y`, except that when a key appears in both, the value
//! from `Y` (the update) wins:
//!
//! ```text
//! X ⊳ Y = { (k,b) | (k,a) ← X, (k',b) ← Y, k = k' }
//!       ⊎ { (k,a) | (k,a) ← X, k ∉ Π₁(Y) }
//!       ⊎ { (k,b) | (k,b) ← Y, k ∉ Π₁(X) }
//! ```
//!
//! An update `V[e1] := e2` is then the assignment `V := V ⊳ {(e1, e2)}`.

use std::collections::HashMap;

use crate::value::Value;
use crate::{Result, RuntimeError};

/// Splits a sparse-array element into its key and value.
pub fn key_value(pair: &Value) -> Result<(Value, Value)> {
    match pair.as_tuple() {
        Some([k, v]) => Ok((k.clone(), v.clone())),
        _ => Err(RuntimeError::new(format!(
            "sparse array element must be a (key, value) pair, got {pair}"
        ))),
    }
}

/// Merges two sparse arrays given as slices of pairs: `x ⊳ y`.
///
/// Keys present in `y` override keys in `x`; if `y` itself contains
/// duplicates of a key the later pair wins (matching the paper's use of `⊳`
/// with single-assignment update bags). The relative order of surviving `x`
/// entries is preserved, then the new `y` entries follow in order.
pub fn merge_pairs(x: &[Value], y: &[Value]) -> Result<Vec<Value>> {
    // Index the update side.
    let mut updates: HashMap<Value, Value> = HashMap::with_capacity(y.len());
    let mut order: Vec<Value> = Vec::with_capacity(y.len());
    for pair in y {
        let (k, v) = key_value(pair)?;
        if updates.insert(k.clone(), v).is_none() {
            order.push(k);
        }
    }
    let mut out = Vec::with_capacity(x.len() + y.len());
    let mut consumed: HashMap<&Value, bool> = HashMap::with_capacity(order.len());
    for pair in x {
        let (k, a) = key_value(pair)?;
        match updates.get(&k) {
            Some(b) => {
                out.push(Value::pair(k.clone(), b.clone()));
                consumed.insert(updates.get_key_value(&k).unwrap().0, true);
            }
            None => out.push(Value::pair(k, a)),
        }
    }
    for k in &order {
        if !consumed.get(k).copied().unwrap_or(false) {
            out.push(Value::pair(k.clone(), updates[k].clone()));
        }
    }
    Ok(out)
}

/// Merges two sparse arrays given as bag values.
pub fn merge_bags(x: &Value, y: &Value) -> Result<Value> {
    let xs = x
        .as_bag()
        .ok_or_else(|| RuntimeError::new(format!("⊳ expects bags, got {}", x.type_name())))?;
    let ys = y
        .as_bag()
        .ok_or_else(|| RuntimeError::new(format!("⊳ expects bags, got {}", y.type_name())))?;
    Ok(Value::bag(merge_pairs(xs, ys)?))
}

/// Builds a sparse vector bag `{(i, v)}` from an iterator of `(i64, Value)`.
pub fn vector_from(entries: impl IntoIterator<Item = (i64, Value)>) -> Vec<Value> {
    entries
        .into_iter()
        .map(|(i, v)| Value::pair(Value::Long(i), v))
        .collect()
}

/// Builds a sparse matrix bag `{((i, j), v)}` from `(i64, i64, Value)`.
pub fn matrix_from(entries: impl IntoIterator<Item = (i64, i64, Value)>) -> Vec<Value> {
    entries
        .into_iter()
        .map(|(i, j, v)| Value::pair(Value::pair(Value::Long(i), Value::Long(j)), v))
        .collect()
}

/// Looks up a key in a sparse array slice, returning the *last* match (the
/// most recent update), mirroring right-biased merge semantics.
pub fn lookup<'a>(pairs: &'a [Value], key: &Value) -> Option<&'a Value> {
    pairs.iter().rev().find_map(|p| match p.as_tuple() {
        Some([k, v]) if k == key => Some(v),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecpairs(entries: &[(i64, i64)]) -> Vec<Value> {
        entries
            .iter()
            .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
            .collect()
    }

    #[test]
    fn merge_matches_paper_example() {
        // {(3,10),(1,20)} ⊳ {(1,30),(4,40)} = {(3,10),(1,30),(4,40)} (§3.4)
        let x = vecpairs(&[(3, 10), (1, 20)]);
        let y = vecpairs(&[(1, 30), (4, 40)]);
        let merged = merge_pairs(&x, &y).unwrap();
        assert_eq!(merged, vecpairs(&[(3, 10), (1, 30), (4, 40)]));
    }

    #[test]
    fn merge_with_empty_sides() {
        let x = vecpairs(&[(1, 10)]);
        assert_eq!(merge_pairs(&x, &[]).unwrap(), x);
        assert_eq!(merge_pairs(&[], &x).unwrap(), x);
        assert_eq!(merge_pairs(&[], &[]).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn later_updates_win_within_y() {
        let x = vecpairs(&[]);
        let y = vecpairs(&[(1, 10), (1, 20)]);
        assert_eq!(merge_pairs(&x, &y).unwrap(), vecpairs(&[(1, 20)]));
    }

    #[test]
    fn non_pair_elements_are_rejected() {
        let bad = vec![Value::Long(5)];
        assert!(merge_pairs(&bad, &[]).is_err());
    }

    #[test]
    fn lookup_returns_latest() {
        let pairs = vecpairs(&[(1, 10), (2, 20), (1, 30)]);
        assert_eq!(lookup(&pairs, &Value::Long(1)), Some(&Value::Long(30)));
        assert_eq!(lookup(&pairs, &Value::Long(3)), None);
    }

    #[test]
    fn matrix_builder_shapes_keys_as_pairs() {
        let m = matrix_from([(0, 1, Value::Double(2.5))]);
        let (k, v) = key_value(&m[0]).unwrap();
        assert_eq!(k, Value::pair(Value::Long(0), Value::Long(1)));
        assert_eq!(v, Value::Double(2.5));
    }
}
