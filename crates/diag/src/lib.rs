//! Structured diagnostics for the DIABLO front end and engine.
//!
//! Every analysis in the pipeline — lexing, parsing, type checking, the §3.2
//! parallelizability restrictions, and the program lints — reports through one
//! vocabulary: a [`Diagnostic`] carries a stable `D0xx` [code](codes), a
//! [`Severity`], a primary [`Span`], optional secondary labels (e.g. *both*
//! statements of a conflicting pair), and optional help text. A
//! [`Diagnostics`] sink accumulates them instead of stopping at the first
//! failure, so one `diabloc check` run reports every fault in a program.
//!
//! Rendering comes in two forms: [`render`]/[`render_all`] print rustc-style
//! source snippets with caret underlines, and [`to_json`] emits a stable
//! machine-readable form for `--json` consumers. This crate has no
//! dependencies and sits below `diablo-lang`.

/// A source location (1-based line and column).
///
/// Spans are diagnostic metadata, not syntax: two spans always compare
/// equal, so AST nodes that differ only in source position are `==`.
#[derive(Debug, Clone, Copy, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl PartialEq for Span {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl std::hash::Hash for Span {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}

impl Span {
    /// The dummy span used for synthesized nodes.
    pub const SYNTH: Span = Span { line: 0, col: 0 };

    /// Creates a span.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// True if this is the synthesized (no source location) span.
    pub fn is_synth(&self) -> bool {
        self.line == 0
    }
}

/// Stable diagnostic codes.
///
/// Codes are part of the CLI/JSON contract: once shipped they keep their
/// meaning. Errors are `D00x`–`D01x`, lints (warnings) are `D02x`.
pub mod codes {
    /// Syntax error (lexer or parser).
    pub const SYNTAX: &str = "D001";
    /// Type error.
    pub const TYPE: &str = "D002";
    /// Definition 3.1 restriction 1: non-incremental destination not affine.
    pub const NOT_AFFINE: &str = "D010";
    /// Definition 3.1 restriction 2: loop-carried dependence.
    pub const DEPENDENCE: &str = "D011";
    /// Soundness: two non-incremental writes to the same array at different
    /// locations in one loop.
    pub const WRITE_WRITE: &str = "D012";
    /// Soundness: an array both written and incremented in one loop.
    pub const WRITE_AGGREGATE: &str = "D013";
    /// Soundness: an array incremented with different operators at different
    /// locations in one loop.
    pub const AGGREGATE_AGGREGATE: &str = "D014";
    /// A while-loop inside a for-loop makes the loop sequential.
    pub const WHILE_IN_FOR: &str = "D015";
    /// `var` declarations cannot appear inside for-loops.
    pub const DECL_IN_LOOP: &str = "D016";
    /// Lint: accepted update compiles to a group-by shuffle (Rule (17) does
    /// not eliminate it).
    pub const SHUFFLE: &str = "D020";
    /// Lint: aggregation whose merge function is not associative/commutative.
    pub const NON_MONOID: &str = "D021";
    /// Lint: variable or input dataset is never used.
    pub const UNUSED: &str = "D022";
    /// Lint: assignment overwritten before ever being read.
    pub const DEAD_STORE: &str = "D023";
    /// Lint: affine subscript provably out of bounds for a constant range.
    pub const BOUNDS: &str = "D024";
    /// Lint: an opaque expression forces a columnar-eligible fused chain
    /// back to tuple-at-a-time execution under the columnar backend.
    pub const ROW_FALLBACK: &str = "D025";
}

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The program is rejected.
    Error,
    /// The program is accepted but suspicious.
    Warning,
    /// Informational.
    Note,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// A single structured diagnostic.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Primary message, shown on the header line.
    pub message: String,
    /// Primary span (the offending source location).
    pub span: Span,
    /// Secondary labeled spans (e.g. the other statement of a conflict pair).
    pub labels: Vec<(Span, String)>,
    /// Optional help text, shown after the snippet.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
            labels: Vec::new(),
            help: None,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message, span)
        }
    }

    /// Creates a note diagnostic.
    pub fn note(code: &'static str, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, message, span)
        }
    }

    /// Attaches a secondary labeled span.
    pub fn with_label(mut self, span: Span, label: impl Into<String>) -> Diagnostic {
        self.labels.push((span, label.into()));
        self
    }

    /// Attaches help text.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Compact one-line form: `warning[D020] 3:5: message`.
    pub fn one_line(&self) -> String {
        if self.span.is_synth() {
            format!("{}[{}]: {}", self.severity.label(), self.code, self.message)
        } else {
            format!(
                "{}[{}] {}:{}: {}",
                self.severity.label(),
                self.code,
                self.span.line,
                self.span.col,
                self.message
            )
        }
    }
}

/// An accumulating diagnostics sink.
///
/// Emission order is preserved, so the first emitted error matches the error
/// a fail-fast pass would have reported.
#[derive(Debug, Default)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty sink.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Adds a diagnostic.
    pub fn emit(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// True if any error-severity diagnostic was emitted.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// The first error-severity diagnostic, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diags.iter().find(|d| d.severity == Severity::Error)
    }

    /// All diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of diagnostics of any severity.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Consumes the sink, returning the diagnostics in emission order.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// Extends the sink with already-built diagnostics.
    pub fn extend(&mut self, diags: impl IntoIterator<Item = Diagnostic>) {
        self.diags.extend(diags);
    }
}

/// Renders one diagnostic rustc-style against the program source.
///
/// ```text
/// error[D010]: destination `A` ... (Definition 3.1, restriction 1)
///   --> prog.dbl:4:5
///    |
///  4 |     A[i+j] := B[i];
///    |     ^^^^^^
///    = help: ...
/// ```
pub fn render(diag: &Diagnostic, source: &str, filename: &str) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let mut out = String::new();
    out.push_str(&format!(
        "{}[{}]: {}\n",
        diag.severity.label(),
        diag.code,
        diag.message
    ));
    render_snippet(&mut out, diag.span, None, '^', &lines, filename);
    for (span, label) in &diag.labels {
        render_snippet(&mut out, *span, Some(label), '-', &lines, filename);
    }
    if let Some(help) = &diag.help {
        out.push_str(&format!("   = help: {help}\n"));
    }
    out
}

/// Renders every diagnostic in the sink, separated by blank lines, followed
/// by an error-count summary when errors are present.
pub fn render_all(diags: &Diagnostics, source: &str, filename: &str) -> String {
    let mut out = String::new();
    for d in diags.iter() {
        out.push_str(&render(d, source, filename));
        out.push('\n');
    }
    let errs = diags.error_count();
    if errs > 0 {
        let plural = if errs == 1 { "" } else { "s" };
        out.push_str(&format!("{errs} error{plural} emitted\n"));
    }
    out
}

fn render_snippet(
    out: &mut String,
    span: Span,
    label: Option<&str>,
    underline: char,
    lines: &[&str],
    filename: &str,
) {
    if span.is_synth() {
        if let Some(label) = label {
            out.push_str(&format!("   = note: {label}\n"));
        }
        return;
    }
    out.push_str(&format!("  --> {filename}:{}:{}\n", span.line, span.col));
    let Some(line) = lines.get(span.line as usize - 1) else {
        return;
    };
    let gutter = format!("{}", span.line);
    let pad = " ".repeat(gutter.len());
    out.push_str(&format!(" {pad} |\n"));
    out.push_str(&format!(" {gutter} | {line}\n"));
    let col = span.col.max(1) as usize - 1;
    // Underline the identifier-character run starting at the span column, or
    // a single character when the span points at punctuation.
    let rest: String = line.chars().skip(col).collect();
    let width = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .count()
        .max(1);
    let carets: String = std::iter::repeat_n(underline, width).collect();
    match label {
        Some(label) => out.push_str(&format!(" {pad} | {}{carets} {label}\n", " ".repeat(col))),
        None => out.push_str(&format!(" {pad} | {}{carets}\n", " ".repeat(col))),
    }
}

/// Serializes diagnostics as a stable JSON document:
///
/// ```json
/// {"diagnostics":[{"code":"D010","severity":"error","message":"...",
///   "line":4,"col":5,"labels":[{"line":2,"col":5,"message":"..."}],
///   "help":"..."}]}
/// ```
pub fn to_json(diags: &Diagnostics) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":{},\"severity\":{},\"message\":{},\"line\":{},\"col\":{}",
            json_str(d.code),
            json_str(d.severity.label()),
            json_str(&d.message),
            d.span.line,
            d.span.col
        ));
        out.push_str(",\"labels\":[");
        for (j, (span, label)) in d.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"line\":{},\"col\":{},\"message\":{}}}",
                span.line,
                span.col,
                json_str(label)
            ));
        }
        out.push(']');
        if let Some(help) = &d.help {
            out.push_str(&format!(",\"help\":{}", json_str(help)));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_compare_equal() {
        assert_eq!(Span::new(1, 2), Span::new(9, 9));
        assert!(Span::SYNTH.is_synth());
        assert!(!Span::new(1, 1).is_synth());
    }

    #[test]
    fn sink_accumulates_and_orders() {
        let mut sink = Diagnostics::new();
        sink.emit(Diagnostic::warning(codes::SHUFFLE, "w", Span::new(1, 1)));
        sink.emit(Diagnostic::error(
            codes::NOT_AFFINE,
            "first",
            Span::new(2, 1),
        ));
        sink.emit(Diagnostic::error(
            codes::DEPENDENCE,
            "second",
            Span::new(3, 1),
        ));
        assert!(sink.has_errors());
        assert_eq!(sink.error_count(), 2);
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.first_error().unwrap().message, "first");
    }

    #[test]
    fn renders_caret_snippet() {
        let src = "var x: long;\nx := y + 1;\n";
        let d = Diagnostic::error(codes::TYPE, "unknown variable `y`", Span::new(2, 6))
            .with_help("declare it with `var y: long;`");
        let r = render(&d, src, "p.dbl");
        assert!(r.contains("error[D002]: unknown variable `y`"), "{r}");
        assert!(r.contains("--> p.dbl:2:6"), "{r}");
        assert!(r.contains(" 2 | x := y + 1;"), "{r}");
        assert!(r.contains("   |      ^\n"), "{r}");
        assert!(r.contains("= help: declare it"), "{r}");
    }

    #[test]
    fn renders_secondary_labels() {
        let src = "A[i] := 1;\nA[j] := 2;\n";
        let d = Diagnostic::error(codes::WRITE_WRITE, "conflict on `A`", Span::new(2, 1))
            .with_label(Span::new(1, 1), "`A` is also written here");
        let r = render(&d, src, "p.dbl");
        assert!(r.contains("--> p.dbl:2:1"), "{r}");
        assert!(r.contains("--> p.dbl:1:1"), "{r}");
        assert!(r.contains("- `A` is also written here"), "{r}");
    }

    #[test]
    fn synth_span_skips_snippet() {
        let d = Diagnostic::error(codes::TYPE, "duplicate input", Span::SYNTH);
        let r = render(&d, "whatever", "p.dbl");
        assert!(!r.contains("-->"), "{r}");
        assert_eq!(d.one_line(), "error[D002]: duplicate input");
    }

    #[test]
    fn underline_covers_identifier() {
        let src = "total := bogus;\n";
        let d = Diagnostic::error(codes::TYPE, "unknown", Span::new(1, 10));
        let r = render(&d, src, "p.dbl");
        assert!(r.contains("^^^^^"), "{r}");
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut sink = Diagnostics::new();
        sink.emit(
            Diagnostic::error(codes::SYNTAX, "expected `;`, found \"x\"", Span::new(3, 7))
                .with_label(Span::new(1, 2), "while parsing this")
                .with_help("add a semicolon"),
        );
        let j = to_json(&sink);
        assert!(j.starts_with("{\"diagnostics\":["), "{j}");
        assert!(j.contains("\"code\":\"D001\""), "{j}");
        assert!(j.contains("\\\"x\\\""), "{j}");
        assert!(j.contains("\"labels\":[{\"line\":1,\"col\":2"), "{j}");
        assert!(j.contains("\"help\":\"add a semicolon\""), "{j}");
        let empty = to_json(&Diagnostics::new());
        assert_eq!(empty, "{\"diagnostics\":[]}");
    }

    #[test]
    fn one_line_compact() {
        let d = Diagnostic::warning(codes::SHUFFLE, "will shuffle", Span::new(4, 5));
        assert_eq!(d.one_line(), "warning[D020] 4:5: will shuffle");
    }
}
