//! Table 1 micro-benchmarks: translation time per translator.
//!
//! DIABLO's compositional translation is measured on every benchmark
//! program; the MOLD-like template search and the Casper-like synthesizer
//! are measured on representative programs (they are orders of magnitude
//! slower, so only a few keep the bench runtime sane).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use diablo_baselines::casper_like::casper_translate_with_budget;
use diablo_baselines::mold_translate;
use diablo_workloads as wl;

fn bench_diablo_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/diablo");
    g.sample_size(20);
    for (name, src) in wl::programs::all_programs() {
        g.bench_function(name, |b| {
            b.iter(|| diablo_core::compile(black_box(src)).expect("compiles"))
        });
    }
    g.finish();
}

fn bench_mold_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/mold_like");
    g.sample_size(10);
    for name in [
        "Sum",
        "Word Count",
        "Linear Regression",
        "Matrix Multiplication",
    ] {
        let src = wl::programs::all_programs()
            .into_iter()
            .find(|(n, _)| *n == name)
            .expect("known program")
            .1;
        g.bench_function(name, |b| {
            b.iter(|| mold_translate(black_box(src)).expect("translates"))
        });
    }
    g.finish();
}

fn bench_casper_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/casper_like");
    g.sample_size(10);
    let sum = wl::sum(1_000, 3);
    g.bench_function("Sum", |b| {
        b.iter(|| casper_translate_with_budget(black_box(&sum), 300_000).expect("synthesizes"))
    });
    let wc = wl::word_count(1_000, 4);
    g.bench_function("Word Count", |b| {
        b.iter(|| casper_translate_with_budget(black_box(&wc), 300_000).expect("synthesizes"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_diablo_translate,
    bench_mold_translate,
    bench_casper_translate
);
criterion_main!(benches);
