//! Figure 3 micro-benchmarks: DIABLO-generated vs hand-written plans at a
//! fixed input size, one group per panel (A-L).
//!
//! The harness binary (`cargo run -p diablo-bench --bin harness -- fig3a`)
//! produces the full size sweeps; these benches give statistically robust
//! single-size comparisons.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use diablo_bench::{run_diablo, run_handwritten, session_for};
use diablo_dataflow::Context;
use diablo_workloads as wl;
use diablo_workloads::Workload;

fn panel(c: &mut Criterion, id: &str, w: &Workload) {
    let ctx = Context::default_parallel();
    let mut g = c.benchmark_group(format!("figure3/{id}"));
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    let compiled = diablo_core::compile(w.source).expect("compiles");
    g.bench_function("diablo", |b| {
        b.iter(|| {
            let mut s = session_for(w, &ctx);
            s.run(&compiled).expect("runs");
        })
    });
    g.bench_function("handwritten", |b| {
        b.iter(|| {
            run_handwritten(w, &ctx).expect("handwritten");
        })
    });
    g.finish();
    // Touch the helpers so panels stay comparable with the harness.
    let _ = run_diablo(w, &ctx);
}

fn figure3(c: &mut Criterion) {
    panel(c, "a_conditional_sum", &wl::conditional_sum(50_000, 1));
    panel(c, "b_equal", &wl::equal(50_000, 2));
    panel(c, "c_string_match", &wl::string_match(50_000, 3));
    panel(c, "d_word_count", &wl::word_count(50_000, 4));
    panel(c, "e_histogram", &wl::histogram(20_000, 5));
    panel(c, "f_linear_regression", &wl::linear_regression(20_000, 6));
    panel(c, "g_group_by", &wl::group_by(50_000, 7));
    panel(c, "h_matrix_addition", &wl::matrix_addition(60, 8));
    panel(
        c,
        "i_matrix_multiplication",
        &wl::matrix_multiplication(24, 9),
    );
    panel(c, "j_pagerank", &wl::pagerank(150, 2, 10));
    panel(c, "k_kmeans", &wl::kmeans(2_000, 10, 1, 11));
    panel(
        c,
        "l_matrix_factorization",
        &wl::matrix_factorization(20, 2, 1, 12),
    );
}

criterion_group!(benches, figure3);
criterion_main!(benches);
