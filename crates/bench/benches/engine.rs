//! Dataflow-engine micro-benchmarks: the cost of the primitive DISC
//! operations every translated plan is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use diablo_dataflow::Context;
use diablo_runtime::{BinOp, Value};

fn pairs(ctx: &Context, n: usize, keys: i64) -> diablo_dataflow::Dataset {
    ctx.from_vec(
        (0..n)
            .map(|i| Value::pair(Value::Long(i as i64 % keys), Value::Long(1)))
            .collect(),
    )
}

fn engine(c: &mut Criterion) {
    let ctx = Context::default_parallel();
    let n = 100_000;
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));

    let data = pairs(&ctx, n, 1_000);
    g.bench_function("map", |b| {
        b.iter(|| data.map(|v| Ok(v.clone())).expect("map"))
    });
    g.bench_function("filter", |b| {
        b.iter(|| {
            data.filter(|v| {
                Ok(diablo_runtime::array::key_value(v)
                    .map(|(k, _)| k.as_long().unwrap_or(0) % 2 == 0)
                    .unwrap_or(false))
            })
            .expect("filter")
        })
    });
    g.bench_function("reduce", |b| {
        b.iter(|| {
            data.map(|v| Ok(diablo_runtime::array::key_value(v).expect("kv").1))
                .expect("map")
                .reduce(|a, b| BinOp::Add.apply(a, b))
                .expect("reduce")
        })
    });
    g.bench_function("reduce_by_key", |b| {
        b.iter(|| {
            data.reduce_by_key(|a, b| BinOp::Add.apply(a, b))
                .expect("rbk")
                .materialize()
                .expect("rbk reduce")
        })
    });
    g.bench_function("group_by_key", |b| {
        b.iter(|| {
            data.group_by_key()
                .expect("gbk")
                .materialize()
                .expect("group")
        })
    });

    let right = pairs(&ctx, 1_000, 1_000);
    let left = pairs(&ctx, 10_000, 1_000);
    g.bench_function("join_10k_x_1k", |b| {
        b.iter(|| {
            left.join(&right)
                .expect("join")
                .materialize()
                .expect("expand")
        })
    });
    g.bench_function("merge_combining", |b| {
        b.iter(|| {
            left.merge(&right, Some(|a: &Value, b: &Value| BinOp::Add.apply(a, b)))
                .expect("merge")
                .materialize()
                .expect("combine")
        })
    });
    g.finish();
}

criterion_group!(benches, engine);
criterion_main!(benches);
