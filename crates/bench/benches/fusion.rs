//! Narrow-stage fusion ablation: a deep chain of narrow operators over a
//! large input, executed (a) operator-at-a-time — forcing a
//! materialization between every step, the engine's old eager behavior —
//! and (b) fused, the lazy engine's one-pass-per-chain execution.
//!
//! The fused run must never be slower: it performs one physical stage and
//! allocates one output vector per partition where the eager run pays one
//! full materialization (and one clone per surviving row) per operator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use diablo_dataflow::{Context, Dataset};
use diablo_runtime::{BinOp, Value};

const ROWS: i64 = 1_000_000;

/// Stacks 8 narrow stages (maps and filters) on `d`. With `eager`, every
/// stage is materialized before the next is applied.
fn deep_chain(d: &Dataset, eager: bool) -> Dataset {
    let mut cur = d.clone();
    let step = |d: &Dataset, i: usize| -> Dataset {
        if i.is_multiple_of(2) {
            d.map(|v| BinOp::Add.apply(v, &Value::Long(1)))
                .expect("map")
        } else {
            d.filter(|v| Ok(v.as_long().unwrap_or(0) % 7 != 0))
                .expect("filter")
        }
    };
    for i in 0..8 {
        cur = step(&cur, i);
        if eager {
            cur = cur.materialize().expect("materialize");
        }
    }
    cur
}

fn fusion(c: &mut Criterion) {
    let ctx = Context::default_parallel();
    let data = ctx.range(0, ROWS - 1);

    let mut g = c.benchmark_group("fusion/8_narrow_stages_1M_rows");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));

    g.bench_function("eager_per_operator", |b| {
        b.iter(|| {
            let out = deep_chain(&data, true);
            out.count()
        })
    });
    g.bench_function("fused_single_stage", |b| {
        b.iter(|| {
            let out = deep_chain(&data, false);
            out.count()
        })
    });
    g.finish();

    // Report the stage counts behind the wall-clock difference.
    let s = ctx.stats();
    s.reset();
    deep_chain(&data, true).count();
    let eager = s.snapshot();
    s.reset();
    deep_chain(&data, false).count();
    let fused = s.snapshot();
    println!(
        "  plan shape: eager {} physical stages vs fused {} (both {} logical ops)",
        eager.physical_stages, fused.physical_stages, fused.stages
    );
    assert!(fused.physical_stages < eager.physical_stages);
}

criterion_group!(benches, fusion);
criterion_main!(benches);
