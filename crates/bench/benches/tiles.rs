//! §5 ablation: sparse DIABLO matrix multiplication vs the packed (tiled)
//! path, with and without the pack/unpack conversion layer the paper's
//! fusion removes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use diablo_bench::session_for;
use diablo_dataflow::Context;
use diablo_runtime::TiledMatrix;
use diablo_workloads as wl;

fn tiles(c: &mut Criterion) {
    let ctx = Context::default_parallel();
    let d = 48usize;
    let w = wl::matrix_multiplication(d, 7);
    let compiled = diablo_core::compile(w.source).expect("compiles");
    let m_rows = w.collections[0].1.clone();
    let n_rows = w.collections[1].1.clone();

    let mut g = c.benchmark_group("tiles/matrix_multiplication_48");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));

    g.bench_function("sparse_diablo", |b| {
        b.iter(|| {
            let mut s = session_for(&w, &ctx);
            s.run(&compiled).expect("runs");
        })
    });

    let tm = TiledMatrix::pack_values(8, 8, &m_rows).expect("pack");
    let tn = TiledMatrix::pack_values(8, 8, &n_rows).expect("pack");
    g.bench_function("tiled_kernel", |b| b.iter(|| tm.multiply(&tn)));

    g.bench_function("tiled_with_pack_unpack", |b| {
        b.iter(|| {
            let tm = TiledMatrix::pack_values(8, 8, &m_rows).expect("pack");
            let tn = TiledMatrix::pack_values(8, 8, &n_rows).expect("pack");
            tm.multiply(&tn).unpack_values()
        })
    });
    g.finish();
}

criterion_group!(benches, tiles);
criterion_main!(benches);
