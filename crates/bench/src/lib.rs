//! # diablo-bench
//!
//! Measurement helpers behind the `harness` binary and the Criterion
//! benches: run a [`Workload`] through (a) the DIABLO pipeline on the
//! engine, (b) the sequential reference interpreter, (c) the hand-written
//! engine program, and (d) a Casper-synthesized summary where one exists —
//! timing each. The `harness` binary assembles these into the paper's
//! tables and figures.

use std::time::{Duration, Instant};

use diablo_baselines::handwritten;
use diablo_dataflow::{Context, Dataset};
use diablo_exec::Session;
use diablo_interp::Interpreter;
use diablo_runtime::{RuntimeError, Value};
use diablo_workloads::Workload;

/// Result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Times one closure invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Median wall-clock time of `runs` invocations (plus one discarded
/// warm-up run, mirroring the paper's methodology of §6).
pub fn time_median(runs: usize, mut f: impl FnMut()) -> Duration {
    assert!(runs >= 1);
    let mut times: Vec<Duration> = Vec::with_capacity(runs);
    for i in 0..=runs {
        let start = Instant::now();
        f();
        let t = start.elapsed();
        if i > 0 || runs == 1 {
            times.push(t);
        }
    }
    times.sort();
    times[times.len() / 2]
}

/// Compiles a workload's program, returning the compile time.
pub fn compile_time(w: &Workload) -> Duration {
    let (r, t) = time_once(|| diablo_core::compile(w.source));
    r.expect("benchmark programs compile");
    t
}

/// Builds a session with the workload's inputs bound.
pub fn session_for(w: &Workload, ctx: &Context) -> Session {
    let mut s = Session::new(ctx.clone());
    for (name, v) in &w.scalars {
        s.bind_scalar(name, v.clone());
    }
    for (name, rows) in &w.collections {
        s.bind_input(name, rows.clone());
    }
    s
}

/// Runs the DIABLO-compiled program on the engine; returns the run time
/// (compile time excluded — Figure 3 measures execution).
pub fn run_diablo(w: &Workload, ctx: &Context) -> Duration {
    let compiled = diablo_core::compile(w.source).expect("compiles");
    let mut s = session_for(w, ctx);
    let (r, t) = time_once(|| s.run(&compiled));
    r.unwrap_or_else(|e| panic!("{}: {e}", w.name));
    t
}

/// Runs the DIABLO-compiled program and collects every output
/// collection (in engine partition order) alongside the run time — for
/// conformance-style benches (`harness out-of-core`) that compare rows
/// across engine configurations, not just clocks.
pub fn run_diablo_outputs(w: &Workload, ctx: &Context) -> (Vec<(String, Vec<Value>)>, Duration) {
    let compiled = diablo_core::compile(w.source).expect("compiles");
    let mut s = session_for(w, ctx);
    let (r, t) = time_once(|| s.run(&compiled));
    r.unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let outputs = w
        .outputs
        .iter()
        .map(|out| {
            (
                out.to_string(),
                s.dataset(out)
                    .unwrap_or_else(|| panic!("{}: output {out} not bound", w.name))
                    .collect(),
            )
        })
        .collect();
    (outputs, t)
}

/// Runs the workload on the sequential reference interpreter.
pub fn run_interp(w: &Workload) -> Duration {
    let tp =
        diablo_lang::typecheck(diablo_lang::parse(w.source).expect("parses")).expect("type checks");
    let mut interp = Interpreter::new();
    for (name, v) in &w.scalars {
        interp.bind_scalar(name, v.clone());
    }
    for (name, rows) in &w.collections {
        interp.bind_collection(name, rows.clone()).expect("binds");
    }
    let (r, t) = time_once(|| interp.run(&tp));
    r.unwrap_or_else(|e| panic!("{}: {e}", w.name));
    t
}

/// Runs the hand-written engine program for a Figure 3 workload; returns
/// `None` for workloads without one.
pub fn run_handwritten(w: &Workload, ctx: &Context) -> Option<Duration> {
    let data: Vec<(&str, Dataset)> = w
        .collections
        .iter()
        .map(|(n, rows)| (*n, ctx.from_vec(rows.clone())))
        .collect();
    let get = |name: &str| -> Dataset {
        data.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| d.clone())
            .expect("input bound")
    };
    let scalar = |name: &str| -> Value {
        w.scalars
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.clone())
            .expect("scalar bound")
    };
    let t = match w.name {
        "Conditional Sum" => {
            let v = get("V");
            time_once(|| handwritten::conditional_sum(&v).unwrap()).1
        }
        "Equal" => {
            let v = get("V");
            let x = scalar("x");
            time_once(|| handwritten::equal(&v, &x).unwrap()).1
        }
        "String Match" => {
            let words = get("words");
            time_once(|| handwritten::string_match(&words).unwrap()).1
        }
        "Word Count" => {
            let words = get("words");
            time_once(|| handwritten::word_count(&words).unwrap()).1
        }
        "Histogram" => {
            let p = get("P");
            time_once(|| handwritten::histogram(&p).unwrap()).1
        }
        "Linear Regression" => {
            let p = get("P");
            let n = scalar("n").as_long().expect("n");
            time_once(|| handwritten::linear_regression(&p, n).unwrap()).1
        }
        "Group By" => {
            let v = get("V");
            time_once(|| handwritten::group_by(&v).unwrap()).1
        }
        "Matrix Addition" => {
            let (m, n) = (get("M"), get("N"));
            time_once(|| handwritten::matrix_addition(&m, &n).unwrap()).1
        }
        "Matrix Multiplication" => {
            let (m, n) = (get("M"), get("N"));
            time_once(|| handwritten::matrix_multiplication(&m, &n).unwrap()).1
        }
        "PageRank" => {
            let e = get("E");
            let vertices = scalar("vertices").as_long().expect("vertices");
            let steps = scalar("num_steps").as_long().expect("steps") as usize;
            time_once(|| handwritten::pagerank(&e, vertices, steps).unwrap()).1
        }
        "KMeans" => {
            let p = get("P");
            let initial: Vec<(f64, f64)> = w
                .collections
                .iter()
                .find(|(n, _)| *n == "C0")
                .expect("C0")
                .1
                .iter()
                .map(|row| {
                    let (_, xy) = diablo_runtime::array::key_value(row).expect("pair");
                    let f = xy.as_tuple().expect("point");
                    (f[0].as_double().unwrap(), f[1].as_double().unwrap())
                })
                .collect();
            let steps = scalar("num_steps").as_long().expect("steps") as usize;
            time_once(|| handwritten::kmeans(&p, &initial, steps).unwrap()).1
        }
        "Matrix Factorization" => {
            let r = get("R");
            let p0 = get("Pinit");
            let q0 = get("Qinit");
            let steps = scalar("num_steps").as_long().expect("steps") as usize;
            let a = scalar("a").as_double().expect("a");
            let b = scalar("b").as_double().expect("b");
            time_once(|| handwritten::matrix_factorization(&r, &p0, &q0, steps, a, b).unwrap()).1
        }
        _ => return None,
    };
    Some(t)
}

/// Executes a Casper-synthesized summary on the engine (map + reduce, or
/// map + reduceByKey), returning its run time.
pub fn run_casper_program(
    prog: &diablo_baselines::casper_like::CasperProgram,
    w: &Workload,
    ctx: &Context,
) -> Result<Duration> {
    use diablo_comp::eval as ceval;
    let rows = ctx.from_vec(w.collections[0].1.clone());
    let scalars: Vec<(String, Value)> = w
        .scalars
        .iter()
        .map(|(n, v)| (n.to_string(), v.clone()))
        .collect();
    let map_expr = prog.map_expr.clone();
    let key_expr = prog.key_expr.clone();
    let op = prog.reduce_op;
    let start = Instant::now();
    let mapped = rows.map(move |row| {
        let (_, v) = diablo_runtime::array::key_value(row)?;
        let mut env = diablo_comp::Env::new();
        env.insert("v".into(), v);
        for (n, val) in &scalars {
            env.insert(n.clone(), val.clone());
        }
        let value = ceval(&map_expr, &env)?;
        match &key_expr {
            Some(k) => Ok(Value::pair(ceval(k, &env)?, value)),
            None => Ok(value),
        }
    })?;
    if prog.key_expr.is_some() {
        let _ = mapped.reduce_by_key(move |a, b| op.apply(a, b))?;
    } else {
        let _ = mapped.reduce(move |a, b| op.apply(a, b))?;
    }
    Ok(start.elapsed())
}

/// Formats a duration in seconds with 4 decimal places.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Formats one flat JSON object from `(key, value)` string pairs (a tiny
/// hand-rolled serializer — no serde offline). Values that parse as a
/// number are emitted unquoted, everything else as an escaped string, so
/// `("par_secs", "0.0042")` becomes `"par_secs":0.0042` while
/// `("backend", "tile")` becomes `"backend":"tile"`.
pub fn json_row(fields: &[(&str, &str)]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&esc(k));
        out.push_str("\":");
        if v.parse::<f64>().is_ok() {
            out.push_str(v);
        } else {
            out.push('"');
            out.push_str(&esc(v));
            out.push('"');
        }
    }
    out.push('}');
    out
}

/// Formats bytes as MB.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// The effective engine settings of a context as owned `(key, value)`
/// pairs for [`json_row`], so every `BENCH_*.json` row is
/// self-describing: a timing without its backend, worker count, memory
/// budget, and scheduler is unreproducible. Push these into each row's
/// field list (they include the `backend` key — do not add it twice).
pub fn settings_fields(ctx: &Context) -> Vec<(&'static str, String)> {
    let snap = ctx.stats_snapshot();
    vec![
        ("backend", snap.backend),
        ("workers", snap.workers.to_string()),
        ("partitions", snap.partitions.to_string()),
        ("morsel_size", snap.morsel_size.to_string()),
        (
            "memory_budget",
            if snap.memory_budget == u64::MAX {
                "unbounded".to_string()
            } else {
                snap.memory_budget.to_string()
            },
        ),
        (
            "dataset_budget",
            if snap.dataset_budget == u64::MAX {
                "unbounded".to_string()
            } else {
                snap.dataset_budget.to_string()
            },
        ),
        ("scheduler", snap.scheduler),
        ("ordered", snap.ordered.to_string()),
    ]
}

/// Nearest-rank percentile (`p` in 0..=100) of a latency sample. Sorts a
/// copy; returns zero for an empty sample.
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Formats a duration in milliseconds with 3 decimal places.
pub fn millis(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diablo_and_handwritten_run_every_figure3_workload() {
        let ctx = Context::new(2, 4);
        for w in diablo_workloads::figure3_workloads(1, 5) {
            let td = run_diablo(&w, &ctx);
            let th = run_handwritten(&w, &ctx).expect(w.name);
            assert!(td > Duration::ZERO && th > Duration::ZERO);
        }
    }

    #[test]
    fn interpreter_runs_a_workload() {
        let w = diablo_workloads::word_count(500, 2);
        assert!(run_interp(&w) > Duration::ZERO);
    }

    #[test]
    fn median_timer_is_stable() {
        let t = time_median(3, || {
            std::hint::black_box((0..1000).sum::<i64>());
        });
        assert!(t < Duration::from_millis(100));
    }

    #[test]
    fn casper_summary_runs_on_the_engine() {
        let ctx = Context::new(2, 4);
        let w = diablo_workloads::sum(2_000, 3);
        let prog = diablo_baselines::casper_translate(&w).expect("synthesizes");
        let t = run_casper_program(&prog, &w, &ctx).unwrap();
        assert!(t > Duration::ZERO);
    }

    #[test]
    fn json_rows_quote_strings_and_not_numbers() {
        let row = json_row(&[
            ("bench", "table2"),
            ("backend", "tile"),
            ("par_secs", "0.0042"),
            ("rows", "100"),
        ]);
        assert_eq!(
            row,
            "{\"bench\":\"table2\",\"backend\":\"tile\",\"par_secs\":0.0042,\"rows\":100}"
        );
    }
}
