//! The benchmark harness: regenerates every table and figure of the paper.
//!
//! ```text
//! harness table1           # Table 1: translator times (DIABLO vs MOLD-like vs Casper-like)
//! harness table2           # Table 2: parallel (engine) vs sequential (interpreter)
//! harness fig3a .. fig3l   # Figure 3 panels: DIABLO vs hand-written (vs Casper) across sizes
//! harness tiles            # §5 ablation: sparse vs tiled matrix multiplication
//! harness ordered          # hash vs sort-based (key-ordered) aggregation
//! harness all              # everything (used to fill EXPERIMENTS.md)
//! harness --json <cmd>     # machine-readable: one JSON object per row,
//!                          # each tagged with the execution backend
//! ```
//!
//! Sizes are laptop-scale; see DESIGN.md for the scale substitution. Set
//! `DIABLO_SCALE` (default 1) to grow every sweep, `DIABLO_BACKEND`
//! (`local`, `tile`, `spill`) to pick the engine's execution backend, and
//! `DIABLO_MEMORY_BUDGET` to bound shuffle memory — the JSON output
//! records which backend produced every engine measurement plus its spill
//! counters (`spilled_records`, `spilled_bytes`, `spill_files`).

use std::time::{Duration, Instant};

use diablo_baselines::casper_like::casper_translate_with_budget;
use diablo_baselines::mold_translate;
use diablo_bench::{
    compile_time, json_row, mb, run_casper_program, run_diablo, run_handwritten, run_interp, secs,
    time_once,
};
use diablo_dataflow::Context;
use diablo_runtime::TiledMatrix;
use diablo_workloads as wl;
use diablo_workloads::Workload;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let cmd = args.first().cloned().unwrap_or_else(|| "all".to_string());
    match cmd.as_str() {
        "table1" => table1(json),
        "table2" => table2(json),
        "tiles" => tiles(json),
        "ordered" => ordered(json),
        "all" => {
            table1(json);
            table2(json);
            for panel in PANELS {
                fig3(panel.0, json);
            }
            tiles(json);
            ordered(json);
        }
        other if other.starts_with("fig3") => {
            let letter = other.trim_start_matches("fig3");
            fig3(letter, json);
        }
        other => {
            eprintln!(
                "unknown command `{other}`; try table1, table2, fig3a..fig3l, tiles, ordered, all"
            );
            std::process::exit(2);
        }
    }
}

fn scale() -> usize {
    std::env::var("DIABLO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

// ------------------------------------------------------------------ Table 1

/// Table 1: translation time per program for the three translators.
fn table1(json: bool) {
    if !json {
        println!("== Table 1: compilation time (seconds) =====================================");
    }
    if !json {
        println!(
            "{:<24} {:>12} {:>14} {:>14}",
            "test program", "DIABLO", "MOLD-like", "Casper-like"
        );
    }
    let n = 2_000;
    let entries: Vec<(Workload, bool)> = vec![
        (wl::average(n, 1), true),
        (wl::conditional_count(n, 2), true),
        (wl::conditional_sum(n, 3), true),
        (wl::count(n, 4), true),
        (wl::equal(n, 5), true),
        (wl::equal_frequency(n, 6), true),
        (wl::string_match(n, 7), true),
        (wl::sum(n, 8), true),
        (wl::word_count(n, 9), true),
        (wl::histogram(n, 10), true),
        (wl::matrix_multiplication(10, 11), false),
        (wl::linear_regression(n, 12), true),
        (wl::kmeans(400, 3, 1, 13), false),
        (wl::pca(n, 14), true),
        (wl::pagerank(40, 1, 15), false),
        (wl::matrix_factorization(10, 2, 1, 16), false),
    ];
    for (w, try_casper) in &entries {
        let diablo = compile_time(w);
        let (mold, tm) = time_once(|| mold_translate(w.source));
        let mold_cell = match mold {
            Ok(_) => secs(tm),
            Err(_) => "fail".to_string(),
        };
        let casper_cell = if *try_casper {
            let (c, tc) = time_once(|| casper_translate_with_budget(w, 300_000));
            match c {
                Ok(_) => secs(tc),
                Err(e) if e.contains("budget") || e.contains("no candidate") => {
                    format!("fail({})", secs(tc))
                }
                Err(_) => "fail".to_string(),
            }
        } else {
            "fail".to_string()
        };
        if json {
            println!(
                "{}",
                json_row(&[
                    ("bench", "table1"),
                    ("program", w.name),
                    // Compile-time rows run no engine; tagged for uniform
                    // downstream grouping by the "backend" key.
                    ("backend", "n/a"),
                    ("diablo_secs", &secs(diablo)),
                    ("mold", &mold_cell),
                    ("casper", &casper_cell),
                ])
            );
        } else {
            println!(
                "{:<24} {:>12} {:>14} {:>14}",
                w.name,
                secs(diablo),
                mold_cell,
                casper_cell
            );
        }
    }
    if !json {
        println!();
    }
}

// ------------------------------------------------------------------ Table 2

/// Table 2: parallel (engine) vs sequential (interpreter) evaluation.
fn table2(json: bool) {
    if !json {
        println!("== Table 2: parallel (par) vs sequential (seq) evaluation (seconds) ========");
        println!(
            "{:<24} {:>10} {:>12} {:>10} {:>8} {:>10}",
            "test program", "count", "size (MB)", "par", "stages", "seq"
        );
    }
    let ctx = Context::default_parallel();
    let backend = ctx.executor().name();
    let s = 20 * scale();
    let workloads = vec![
        wl::conditional_sum(50_000 * s, 1),
        wl::equal(50_000 * s, 2),
        wl::string_match(50_000 * s, 3),
        wl::word_count(20_000 * s, 4),
        wl::histogram(20_000 * s, 5),
        wl::linear_regression(20_000 * s, 6),
        wl::group_by(20_000 * s, 7),
        wl::matrix_addition(16 * s, 8),
        wl::matrix_multiplication(3 * s, 9),
        wl::pagerank(20 * s, 2, 10),
        wl::kmeans(2_000 * s, 3, 1, 11),
        wl::matrix_factorization(2 * s, 2, 1, 12),
    ];
    for w in workloads {
        let before = ctx.stats().snapshot();
        let par = run_diablo(&w, &ctx);
        let stats = ctx.stats().snapshot().since(&before);
        let seq = run_interp(&w);
        if json {
            println!(
                "{}",
                json_row(&[
                    ("bench", "table2"),
                    ("program", w.name),
                    ("backend", backend),
                    ("rows", &w.input_rows().to_string()),
                    ("mb", &mb(w.input_bytes())),
                    ("par_secs", &secs(par)),
                    ("physical_stages", &stats.physical_stages.to_string()),
                    ("spilled_records", &stats.spilled_records.to_string()),
                    ("spilled_bytes", &stats.spilled_bytes.to_string()),
                    ("spill_files", &stats.spill_files.to_string()),
                    ("seq_secs", &secs(seq)),
                ])
            );
        } else {
            println!(
                "{:<24} {:>10} {:>12} {:>10} {:>8} {:>10}",
                w.name,
                w.input_rows(),
                mb(w.input_bytes()),
                secs(par),
                stats.physical_stages,
                secs(seq)
            );
        }
    }
    if !json {
        println!();
    }
}

// ----------------------------------------------------------------- Figure 3

type Maker = fn(usize, u64) -> Workload;

/// Panel id, display title, workload maker, base size, whether the Casper
/// line exists in the paper's panel.
const PANELS: &[(&str, &str, Maker, usize, bool)] = &[
    (
        "a",
        "Conditional Sum",
        |n, s| wl::conditional_sum(n, s),
        40_000,
        true,
    ),
    ("b", "Equal", |n, s| wl::equal(n, s), 40_000, true),
    (
        "c",
        "String Match",
        |n, s| wl::string_match(n, s),
        40_000,
        true,
    ),
    ("d", "Word Count", |n, s| wl::word_count(n, s), 40_000, true),
    ("e", "Histogram", |n, s| wl::histogram(n, s), 40_000, false),
    (
        "f",
        "Linear Regression",
        |n, s| wl::linear_regression(n, s),
        40_000,
        false,
    ),
    ("g", "Group By", |n, s| wl::group_by(n, s), 40_000, false),
    (
        "h",
        "Matrix Addition",
        |n, s| wl::matrix_addition(n, s),
        60,
        false,
    ),
    (
        "i",
        "Matrix Multiplication",
        |n, s| wl::matrix_multiplication(n, s),
        30,
        false,
    ),
    ("j", "PageRank", |n, s| wl::pagerank(n, 2, s), 150, false),
    (
        "k",
        "KMeans Clustering",
        |n, s| wl::kmeans(n, 10, 1, s),
        4_000,
        false,
    ),
    (
        "l",
        "Matrix Factorization",
        |n, s| wl::matrix_factorization(n, 2, 1, s),
        30,
        false,
    ),
];

/// One Figure 3 panel: a size sweep comparing DIABLO against the
/// hand-written program (and a Casper summary where the paper plots one).
fn fig3(letter: &str, json: bool) {
    let Some((_, title, maker, base, casper)) = PANELS.iter().find(|p| p.0 == letter) else {
        eprintln!("unknown panel fig3{letter}");
        std::process::exit(2);
    };
    if !json {
        println!(
            "== Figure 3{}: {title} ====================================",
            letter.to_uppercase()
        );
        // Wall-clock per system, with the number of physical (fused) engine
        // stages each plan ran next to it — the plan-shape difference behind
        // the timing gap.
        let header = if *casper {
            format!(
                "{:>12} {:>12} {:>9} {:>14} {:>9} {:>12}",
                "size (MB)", "DIABLO", "D-stages", "hand-written", "H-stages", "Casper"
            )
        } else {
            format!(
                "{:>12} {:>12} {:>9} {:>14} {:>9}",
                "size (MB)", "DIABLO", "D-stages", "hand-written", "H-stages"
            )
        };
        println!("{header}");
    }
    let ctx = Context::default_parallel();
    let backend = ctx.executor().name();
    let s = scale();
    // The Casper summary is synthesized once, on the smallest size.
    let casper_prog = if *casper {
        casper_translate_with_budget(&maker(base / 5, 100), 300_000).ok()
    } else {
        None
    };
    for step in 1..=5usize {
        let n = base * step * s;
        let w = maker(n, 100 + step as u64);
        let before = ctx.stats().snapshot();
        let diablo = run_diablo(&w, &ctx);
        let d_stats = ctx.stats().snapshot().since(&before);
        let before = ctx.stats().snapshot();
        let hand = run_handwritten(&w, &ctx).expect("handwritten");
        let h_stats = ctx.stats().snapshot().since(&before);
        let casper_secs = casper_prog
            .as_ref()
            .map(|prog| secs(run_casper_program(prog, &w, &ctx).expect("casper run")));
        if json {
            let bench = format!("fig3{letter}");
            let mut fields: Vec<(&str, &str)> =
                vec![("bench", &bench), ("program", title), ("backend", backend)];
            let mb_s = mb(w.input_bytes());
            let d_s = secs(diablo);
            let ds = d_stats.physical_stages.to_string();
            let d_spill_rec = d_stats.spilled_records.to_string();
            let d_spill_bytes = d_stats.spilled_bytes.to_string();
            let d_spill_files = d_stats.spill_files.to_string();
            let h_s = secs(hand);
            let hs = h_stats.physical_stages.to_string();
            fields.extend([
                ("mb", mb_s.as_str()),
                ("diablo_secs", d_s.as_str()),
                ("diablo_stages", ds.as_str()),
                ("spilled_records", d_spill_rec.as_str()),
                ("spilled_bytes", d_spill_bytes.as_str()),
                ("spill_files", d_spill_files.as_str()),
                ("handwritten_secs", h_s.as_str()),
                ("handwritten_stages", hs.as_str()),
            ]);
            if let Some(c) = &casper_secs {
                fields.push(("casper_secs", c.as_str()));
            }
            println!("{}", json_row(&fields));
        } else {
            let mut line = format!(
                "{:>12} {:>12} {:>9} {:>14} {:>9}",
                mb(w.input_bytes()),
                secs(diablo),
                d_stats.physical_stages,
                secs(hand),
                h_stats.physical_stages
            );
            if let Some(c) = &casper_secs {
                line = format!("{line} {c:>12}");
            }
            println!("{line}");
        }
    }
    if !json {
        println!();
    }
}

// --------------------------------------------------------- ordered shuffles

/// Hash vs sort-based aggregation: the same workloads once through the
/// hash shuffle and once through the key-ordered (range-scattered,
/// merge-read) path, with the sorted-shuffle and spill counters that
/// prove which path ran. JSON rows are tagged `mode` = `hash`/`sorted`.
fn ordered(json: bool) {
    if !json {
        println!("== Ordered aggregation: hash vs sort-based shuffle (seconds) ===============");
        println!(
            "{:<24} {:>8} {:>10} {:>14} {:>12}",
            "test program", "mode", "secs", "sorted_shufs", "spill_files"
        );
    }
    let s = scale();
    let workloads = || {
        vec![
            wl::word_count(20_000 * s, 31),
            wl::histogram(20_000 * s, 32),
            wl::group_by(20_000 * s, 33),
        ]
    };
    for mode in ["hash", "sorted"] {
        for w in workloads() {
            let ctx = Context::default_parallel();
            ctx.set_ordered(mode == "sorted");
            let backend = ctx.executor().name();
            let before = ctx.stats().snapshot();
            let t = run_diablo(&w, &ctx);
            let stats = ctx.stats().snapshot().since(&before);
            if json {
                println!(
                    "{}",
                    json_row(&[
                        ("bench", "ordered"),
                        ("program", w.name),
                        ("backend", backend),
                        ("mode", mode),
                        ("secs", &secs(t)),
                        ("sorted_shuffles", &stats.sorted_shuffles.to_string()),
                        ("spilled_records", &stats.spilled_records.to_string()),
                        ("spilled_bytes", &stats.spilled_bytes.to_string()),
                        ("spill_files", &stats.spill_files.to_string()),
                    ])
                );
            } else {
                println!(
                    "{:<24} {:>8} {:>10} {:>14} {:>12}",
                    w.name,
                    mode,
                    secs(t),
                    stats.sorted_shuffles,
                    stats.spill_files
                );
            }
        }
    }
    if !json {
        println!();
    }
}

// ------------------------------------------------------------- §5 ablation

/// §5 ablation: sparse matrix multiplication (the DIABLO plan) vs the
/// packed/tiled path with dense tile kernels and the no-shuffle merge.
fn tiles(json: bool) {
    if !json {
        println!("== §5 ablation: sparse vs tiled matrix multiplication =====================");
        println!(
            "{:>6} {:>14} {:>14} {:>16}",
            "d", "sparse (s)", "tiled (s)", "tiled+pack (s)"
        );
    }
    let ctx = Context::default_parallel();
    let backend = ctx.executor().name();
    let s = scale();
    for &d in &[20usize * s, 40 * s, 60 * s, 80 * s] {
        let w = wl::matrix_multiplication(d, 7);
        let sparse = run_diablo(&w, &ctx);
        // Tiled path: dense 8×8 tiles, dense inner kernels.
        let m_rows = &w.collections[0].1;
        let n_rows = &w.collections[1].1;
        let tm = TiledMatrix::pack_values(8, 8, m_rows).expect("pack M");
        let tn = TiledMatrix::pack_values(8, 8, n_rows).expect("pack N");
        let (_, tiled) = time_once(|| tm.multiply(&tn));
        // Including pack/unpack conversion (the layer §5 fuses away).
        let start = Instant::now();
        let tm2 = TiledMatrix::pack_values(8, 8, m_rows).expect("pack M");
        let tn2 = TiledMatrix::pack_values(8, 8, n_rows).expect("pack N");
        let prod = tm2.multiply(&tn2);
        let _ = prod.unpack_values();
        let with_pack: Duration = start.elapsed();
        if json {
            println!(
                "{}",
                json_row(&[
                    ("bench", "tiles"),
                    ("backend", backend),
                    ("d", &d.to_string()),
                    ("sparse_secs", &secs(sparse)),
                    ("tiled_secs", &secs(tiled)),
                    ("tiled_pack_secs", &secs(with_pack)),
                ])
            );
        } else {
            println!(
                "{:>6} {:>14} {:>14} {:>16}",
                d,
                secs(sparse),
                secs(tiled),
                secs(with_pack)
            );
        }
    }
    if !json {
        println!();
    }
}
