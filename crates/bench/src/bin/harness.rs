//! The benchmark harness: regenerates every table and figure of the paper.
//!
//! ```text
//! harness table1           # Table 1: translator times (DIABLO vs MOLD-like vs Casper-like)
//! harness table2           # Table 2: parallel (engine) vs sequential (interpreter)
//! harness fig3a .. fig3l   # Figure 3 panels: DIABLO vs hand-written (vs Casper) across sizes
//! harness tiles            # §5 ablation: sparse vs tiled matrix multiplication
//! harness ordered          # hash vs sort-based (key-ordered) aggregation
//! harness scaling          # morsel work-stealing vs static pool on skewed input
//!                          #   [--mode morsel|baseline] [--check]
//! harness serve            # closed-loop diablod driver: N clients × M programs,
//!                          #   cold / cache-warm / 2× overload phases with
//!                          #   throughput and p50/p99 latency [--check]
//! harness out-of-core      # WC + PageRank with the dataset cache bounded to
//!                          #   ~1/10 of the input, per backend, byte-checked
//!                          #   against the unbounded run [--check]
//! harness columnar         # columnar backend vs the row path on a scan-heavy
//!                          #   fused expression chain, Word Count, and K-Means,
//!                          #   byte- and error-identity checked [--check]
//! harness all              # everything (used to fill EXPERIMENTS.md)
//! harness --json <cmd>     # machine-readable: one JSON object per row,
//!                          # each tagged with the execution backend
//! ```
//!
//! Sizes are laptop-scale; see DESIGN.md for the scale substitution. Set
//! `DIABLO_SCALE` (default 1) to grow every sweep, `DIABLO_BACKEND`
//! (`local`, `tile`, `spill`, `morsel`, `columnar`) to pick the engine's
//! execution backend, and
//! `DIABLO_MEMORY_BUDGET` to bound shuffle memory — every engine-backed
//! JSON row carries the full effective settings (backend, workers,
//! partitions, morsel size, memory budget, scheduler, ordered) plus the
//! spill counters (`spilled_records`, `spilled_bytes`, `spill_files`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use diablo_baselines::casper_like::casper_translate_with_budget;
use diablo_baselines::{handwritten, mold_translate};
use diablo_bench::{
    compile_time, json_row, mb, millis, percentile, run_casper_program, run_diablo,
    run_diablo_outputs, run_handwritten, run_interp, secs, settings_fields, time_once,
};
use diablo_dataflow::{
    executor_named, Context, Dataset, LocalExecutor, MorselExecutor, BACKEND_NAMES,
};
use diablo_runtime::{BinOp, RuntimeError, TiledMatrix, Value};
use diablo_serve::{Client, ServeConfig, Server};
use diablo_workloads as wl;
use diablo_workloads::Workload;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let cmd = args.first().cloned().unwrap_or_else(|| "all".to_string());
    match cmd.as_str() {
        "table1" => table1(json),
        "table2" => table2(json),
        "tiles" => tiles(json),
        "ordered" => ordered(json),
        "scaling" => {
            let check = args.iter().any(|a| a == "--check");
            let mode = args
                .windows(2)
                .find(|w| w[0] == "--mode")
                .map(|w| w[1].clone());
            scaling(json, check, mode.as_deref());
        }
        "serve" => {
            let check = args.iter().any(|a| a == "--check");
            serve_bench(json, check);
        }
        "out-of-core" => {
            let check = args.iter().any(|a| a == "--check");
            out_of_core(json, check);
        }
        "columnar" => {
            let check = args.iter().any(|a| a == "--check");
            columnar(json, check);
        }
        "all" => {
            table1(json);
            table2(json);
            for panel in PANELS {
                fig3(panel.0, json);
            }
            tiles(json);
            ordered(json);
            scaling(json, false, None);
        }
        other if other.starts_with("fig3") => {
            let letter = other.trim_start_matches("fig3");
            fig3(letter, json);
        }
        other => {
            eprintln!(
                "unknown command `{other}`; try table1, table2, fig3a..fig3l, tiles, ordered, scaling, serve, out-of-core, columnar, all"
            );
            std::process::exit(2);
        }
    }
}

fn scale() -> usize {
    std::env::var("DIABLO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

// ------------------------------------------------------------------ Table 1

/// Table 1: translation time per program for the three translators.
fn table1(json: bool) {
    if !json {
        println!("== Table 1: compilation time (seconds) =====================================");
    }
    if !json {
        println!(
            "{:<24} {:>12} {:>14} {:>14}",
            "test program", "DIABLO", "MOLD-like", "Casper-like"
        );
    }
    let n = 2_000;
    let entries: Vec<(Workload, bool)> = vec![
        (wl::average(n, 1), true),
        (wl::conditional_count(n, 2), true),
        (wl::conditional_sum(n, 3), true),
        (wl::count(n, 4), true),
        (wl::equal(n, 5), true),
        (wl::equal_frequency(n, 6), true),
        (wl::string_match(n, 7), true),
        (wl::sum(n, 8), true),
        (wl::word_count(n, 9), true),
        (wl::histogram(n, 10), true),
        (wl::matrix_multiplication(10, 11), false),
        (wl::linear_regression(n, 12), true),
        (wl::kmeans(400, 3, 1, 13), false),
        (wl::pca(n, 14), true),
        (wl::pagerank(40, 1, 15), false),
        (wl::matrix_factorization(10, 2, 1, 16), false),
    ];
    for (w, try_casper) in &entries {
        let diablo = compile_time(w);
        let (mold, tm) = time_once(|| mold_translate(w.source));
        let mold_cell = match mold {
            Ok(_) => secs(tm),
            Err(_) => "fail".to_string(),
        };
        let casper_cell = if *try_casper {
            let (c, tc) = time_once(|| casper_translate_with_budget(w, 300_000));
            match c {
                Ok(_) => secs(tc),
                Err(e) if e.contains("budget") || e.contains("no candidate") => {
                    format!("fail({})", secs(tc))
                }
                Err(_) => "fail".to_string(),
            }
        } else {
            "fail".to_string()
        };
        if json {
            println!(
                "{}",
                json_row(&[
                    ("bench", "table1"),
                    ("program", w.name),
                    // Compile-time rows run no engine; tagged for uniform
                    // downstream grouping by the "backend" key.
                    ("backend", "n/a"),
                    ("diablo_secs", &secs(diablo)),
                    ("mold", &mold_cell),
                    ("casper", &casper_cell),
                ])
            );
        } else {
            println!(
                "{:<24} {:>12} {:>14} {:>14}",
                w.name,
                secs(diablo),
                mold_cell,
                casper_cell
            );
        }
    }
    if !json {
        println!();
    }
}

// ------------------------------------------------------------------ Table 2

/// Table 2: parallel (engine) vs sequential (interpreter) evaluation.
fn table2(json: bool) {
    if !json {
        println!("== Table 2: parallel (par) vs sequential (seq) evaluation (seconds) ========");
        println!(
            "{:<24} {:>10} {:>12} {:>10} {:>8} {:>10}",
            "test program", "count", "size (MB)", "par", "stages", "seq"
        );
    }
    let ctx = Context::default_parallel();
    let settings = settings_fields(&ctx);
    let s = 20 * scale();
    let workloads = vec![
        wl::conditional_sum(50_000 * s, 1),
        wl::equal(50_000 * s, 2),
        wl::string_match(50_000 * s, 3),
        wl::word_count(20_000 * s, 4),
        wl::histogram(20_000 * s, 5),
        wl::linear_regression(20_000 * s, 6),
        wl::group_by(20_000 * s, 7),
        wl::matrix_addition(16 * s, 8),
        wl::matrix_multiplication(3 * s, 9),
        wl::pagerank(20 * s, 2, 10),
        wl::kmeans(2_000 * s, 3, 1, 11),
        wl::matrix_factorization(2 * s, 2, 1, 12),
    ];
    for w in workloads {
        let before = ctx.stats().snapshot();
        let par = run_diablo(&w, &ctx);
        let stats = ctx.stats().snapshot().since(&before);
        let seq = run_interp(&w);
        if json {
            let rows_s = w.input_rows().to_string();
            let mb_s = mb(w.input_bytes());
            let par_s = secs(par);
            let stages = stats.physical_stages.to_string();
            let spill_rec = stats.spilled_records.to_string();
            let spill_bytes = stats.spilled_bytes.to_string();
            let spill_files = stats.spill_files.to_string();
            let vec_batches = stats.vectorized_batches.to_string();
            let row_fallbacks = stats.row_fallback_stages.to_string();
            let seq_s = secs(seq);
            let mut fields: Vec<(&str, &str)> = vec![("bench", "table2"), ("program", w.name)];
            fields.extend(settings.iter().map(|(k, v)| (*k, v.as_str())));
            fields.extend([
                ("rows", rows_s.as_str()),
                ("mb", mb_s.as_str()),
                ("par_secs", par_s.as_str()),
                ("physical_stages", stages.as_str()),
                ("spilled_records", spill_rec.as_str()),
                ("spilled_bytes", spill_bytes.as_str()),
                ("spill_files", spill_files.as_str()),
                ("vectorized_batches", vec_batches.as_str()),
                ("row_fallback_stages", row_fallbacks.as_str()),
                ("seq_secs", seq_s.as_str()),
            ]);
            println!("{}", json_row(&fields));
        } else {
            println!(
                "{:<24} {:>10} {:>12} {:>10} {:>8} {:>10}",
                w.name,
                w.input_rows(),
                mb(w.input_bytes()),
                secs(par),
                stats.physical_stages,
                secs(seq)
            );
        }
    }
    if !json {
        println!();
    }
}

// ----------------------------------------------------------------- Figure 3

type Maker = fn(usize, u64) -> Workload;

/// Panel id, display title, workload maker, base size, whether the Casper
/// line exists in the paper's panel.
const PANELS: &[(&str, &str, Maker, usize, bool)] = &[
    (
        "a",
        "Conditional Sum",
        |n, s| wl::conditional_sum(n, s),
        40_000,
        true,
    ),
    ("b", "Equal", |n, s| wl::equal(n, s), 40_000, true),
    (
        "c",
        "String Match",
        |n, s| wl::string_match(n, s),
        40_000,
        true,
    ),
    ("d", "Word Count", |n, s| wl::word_count(n, s), 40_000, true),
    ("e", "Histogram", |n, s| wl::histogram(n, s), 40_000, false),
    (
        "f",
        "Linear Regression",
        |n, s| wl::linear_regression(n, s),
        40_000,
        false,
    ),
    ("g", "Group By", |n, s| wl::group_by(n, s), 40_000, false),
    (
        "h",
        "Matrix Addition",
        |n, s| wl::matrix_addition(n, s),
        60,
        false,
    ),
    (
        "i",
        "Matrix Multiplication",
        |n, s| wl::matrix_multiplication(n, s),
        30,
        false,
    ),
    ("j", "PageRank", |n, s| wl::pagerank(n, 2, s), 150, false),
    (
        "k",
        "KMeans Clustering",
        |n, s| wl::kmeans(n, 10, 1, s),
        4_000,
        false,
    ),
    (
        "l",
        "Matrix Factorization",
        |n, s| wl::matrix_factorization(n, 2, 1, s),
        30,
        false,
    ),
];

/// One Figure 3 panel: a size sweep comparing DIABLO against the
/// hand-written program (and a Casper summary where the paper plots one).
fn fig3(letter: &str, json: bool) {
    let Some((_, title, maker, base, casper)) = PANELS.iter().find(|p| p.0 == letter) else {
        eprintln!("unknown panel fig3{letter}");
        std::process::exit(2);
    };
    if !json {
        println!(
            "== Figure 3{}: {title} ====================================",
            letter.to_uppercase()
        );
        // Wall-clock per system, with the number of physical (fused) engine
        // stages each plan ran next to it — the plan-shape difference behind
        // the timing gap.
        let header = if *casper {
            format!(
                "{:>12} {:>12} {:>9} {:>14} {:>9} {:>12}",
                "size (MB)", "DIABLO", "D-stages", "hand-written", "H-stages", "Casper"
            )
        } else {
            format!(
                "{:>12} {:>12} {:>9} {:>14} {:>9}",
                "size (MB)", "DIABLO", "D-stages", "hand-written", "H-stages"
            )
        };
        println!("{header}");
    }
    let ctx = Context::default_parallel();
    let settings = settings_fields(&ctx);
    let s = scale();
    // The Casper summary is synthesized once, on the smallest size.
    let casper_prog = if *casper {
        casper_translate_with_budget(&maker(base / 5, 100), 300_000).ok()
    } else {
        None
    };
    for step in 1..=5usize {
        let n = base * step * s;
        let w = maker(n, 100 + step as u64);
        let before = ctx.stats().snapshot();
        let diablo = run_diablo(&w, &ctx);
        let d_stats = ctx.stats().snapshot().since(&before);
        let before = ctx.stats().snapshot();
        let hand = run_handwritten(&w, &ctx).expect("handwritten");
        let h_stats = ctx.stats().snapshot().since(&before);
        let casper_secs = casper_prog
            .as_ref()
            .map(|prog| secs(run_casper_program(prog, &w, &ctx).expect("casper run")));
        if json {
            let bench = format!("fig3{letter}");
            let mut fields: Vec<(&str, &str)> = vec![("bench", &bench), ("program", title)];
            fields.extend(settings.iter().map(|(k, v)| (*k, v.as_str())));
            let mb_s = mb(w.input_bytes());
            let d_s = secs(diablo);
            let ds = d_stats.physical_stages.to_string();
            let d_spill_rec = d_stats.spilled_records.to_string();
            let d_spill_bytes = d_stats.spilled_bytes.to_string();
            let d_spill_files = d_stats.spill_files.to_string();
            let d_vec_batches = d_stats.vectorized_batches.to_string();
            let d_row_fallbacks = d_stats.row_fallback_stages.to_string();
            let h_s = secs(hand);
            let hs = h_stats.physical_stages.to_string();
            fields.extend([
                ("mb", mb_s.as_str()),
                ("diablo_secs", d_s.as_str()),
                ("diablo_stages", ds.as_str()),
                ("spilled_records", d_spill_rec.as_str()),
                ("spilled_bytes", d_spill_bytes.as_str()),
                ("spill_files", d_spill_files.as_str()),
                ("vectorized_batches", d_vec_batches.as_str()),
                ("row_fallback_stages", d_row_fallbacks.as_str()),
                ("handwritten_secs", h_s.as_str()),
                ("handwritten_stages", hs.as_str()),
            ]);
            if let Some(c) = &casper_secs {
                fields.push(("casper_secs", c.as_str()));
            }
            println!("{}", json_row(&fields));
        } else {
            let mut line = format!(
                "{:>12} {:>12} {:>9} {:>14} {:>9}",
                mb(w.input_bytes()),
                secs(diablo),
                d_stats.physical_stages,
                secs(hand),
                h_stats.physical_stages
            );
            if let Some(c) = &casper_secs {
                line = format!("{line} {c:>12}");
            }
            println!("{line}");
        }
    }
    if !json {
        println!();
    }
}

// --------------------------------------------------------- ordered shuffles

/// Hash vs sort-based aggregation: the same workloads once through the
/// hash shuffle and once through the key-ordered (range-scattered,
/// merge-read) path, with the sorted-shuffle and spill counters that
/// prove which path ran. JSON rows are tagged `mode` = `hash`/`sorted`.
fn ordered(json: bool) {
    if !json {
        println!("== Ordered aggregation: hash vs sort-based shuffle (seconds) ===============");
        println!(
            "{:<24} {:>8} {:>10} {:>14} {:>12}",
            "test program", "mode", "secs", "sorted_shufs", "spill_files"
        );
    }
    let s = scale();
    let workloads = || {
        vec![
            wl::word_count(20_000 * s, 31),
            wl::histogram(20_000 * s, 32),
            wl::group_by(20_000 * s, 33),
        ]
    };
    for mode in ["hash", "sorted"] {
        for w in workloads() {
            let ctx = Context::default_parallel();
            ctx.set_ordered(mode == "sorted");
            let settings = settings_fields(&ctx);
            let before = ctx.stats().snapshot();
            let t = run_diablo(&w, &ctx);
            let stats = ctx.stats().snapshot().since(&before);
            if json {
                let secs_s = secs(t);
                let sorted = stats.sorted_shuffles.to_string();
                let spill_rec = stats.spilled_records.to_string();
                let spill_bytes = stats.spilled_bytes.to_string();
                let spill_files = stats.spill_files.to_string();
                let vec_batches = stats.vectorized_batches.to_string();
                let row_fallbacks = stats.row_fallback_stages.to_string();
                let mut fields: Vec<(&str, &str)> = vec![("bench", "ordered"), ("program", w.name)];
                fields.extend(settings.iter().map(|(k, v)| (*k, v.as_str())));
                fields.extend([
                    ("mode", mode),
                    ("secs", secs_s.as_str()),
                    ("sorted_shuffles", sorted.as_str()),
                    ("spilled_records", spill_rec.as_str()),
                    ("spilled_bytes", spill_bytes.as_str()),
                    ("spill_files", spill_files.as_str()),
                    ("vectorized_batches", vec_batches.as_str()),
                    ("row_fallback_stages", row_fallbacks.as_str()),
                ]);
                println!("{}", json_row(&fields));
            } else {
                println!(
                    "{:<24} {:>8} {:>10} {:>14} {:>12}",
                    w.name,
                    mode,
                    secs(t),
                    stats.sorted_shuffles,
                    stats.spill_files
                );
            }
        }
    }
    if !json {
        println!();
    }
}

// ----------------------------------------------------------------- scaling

/// The scaling trajectory behind the morsel scheduler: skewed inputs
/// (partition 0 holds ~55% of the rows) run at several worker counts under
/// two scheduler modes — `morsel` (the work-stealing pool, splitting
/// oversized partitions into morsels) and `baseline` (the retained static
/// pool scheduling whole partitions, i.e. `DIABLO_SCHEDULER=static`).
/// Wall-clock shows the real speedup only on a many-core host, so every
/// row also reports `sched_speedup`: the load-balance bound
/// Σ(stage cost) / Σ(stage critical path) that the *schedule itself*
/// guarantees on any machine — that is what the `--check` gates assert
/// (`host_cpus` records how trustworthy the wall column is).
const SCALING_PARTS: usize = 16;

/// splitmix64 — deterministic input generation without a rand crate.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Packs rows into [`SCALING_PARTS`] partitions with ~55% in partition 0 —
/// the skew the static pool cannot balance (one worker owns the whole
/// partition) but the morsel scheduler can (it splits it into morsels).
fn skewed(rows: Vec<Value>) -> Vec<Vec<Value>> {
    let head = rows.len() * 55 / 100;
    let mut it = rows.into_iter();
    let mut parts: Vec<Vec<Value>> = vec![it.by_ref().take(head).collect()];
    let rest: Vec<Value> = it.collect();
    let per = rest.len().div_ceil(SCALING_PARTS - 1).max(1);
    let mut rest = rest.into_iter();
    for _ in 1..SCALING_PARTS {
        parts.push(rest.by_ref().take(per).collect());
    }
    parts
}

fn scaling_workers() -> Vec<usize> {
    let all = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut ws = vec![1, 2, 4, all];
    ws.sort_unstable();
    ws.dedup();
    ws
}

/// An 8-operator fused chain over longs: compiles to a single splittable
/// narrow stage, the best case for morsel balancing.
fn scaling_fusion(d: &Dataset) {
    let mut out = d.clone();
    for step in 0..8u64 {
        out = out
            .map(move |v| {
                let x = v
                    .as_long()
                    .ok_or_else(|| RuntimeError::new("expected a long"))?
                    as u64;
                let mixed = (x ^ (x >> 13)).wrapping_mul(0x9e37_79b9_7f4a_7c15 ^ step);
                Ok(Value::Long((mixed >> 1) as i64))
            })
            .expect("map");
    }
    assert!(!out.collect().is_empty());
}

/// A deliberately small vocabulary (no stem ends in `e`, so stemming is
/// exact): per-document combining then collapses each document to ≤10
/// counted pairs, keeping the shuffle light — the stage under test is the
/// splittable normalization pass, not the reduction.
const WC_STEMS: &[&str] = &[
    "market", "signal", "stream", "worker", "morsel", "vector", "kernel", "buffer", "column",
    "record",
];

/// Documents of 250 space-separated tokens: a stem from [`WC_STEMS`] plus
/// an inflection, sometimes capitalized so normalization has real work.
fn wc_docs(n: usize) -> Vec<Value> {
    let mut rng = SplitMix(11);
    const SUFFIXES: [&str; 4] = ["", "s", "ed", "ing"];
    (0..n)
        .map(|_| {
            let mut doc = String::with_capacity(2560);
            for t in 0..250 {
                if t > 0 {
                    doc.push(' ');
                }
                let stem = WC_STEMS[rng.below(WC_STEMS.len())];
                if rng.below(4) == 0 {
                    let mut chars = stem.chars();
                    let first = chars.next().unwrap().to_ascii_uppercase();
                    doc.push(first);
                    doc.push_str(chars.as_str());
                } else {
                    doc.push_str(stem);
                }
                doc.push_str(SUFFIXES[rng.below(4)]);
            }
            Value::str(doc)
        })
        .collect()
}

fn wc_stem(word: &str) -> &str {
    for suf in ["ing", "ed", "es", "s"] {
        if word.len() > suf.len() + 2 {
            if let Some(base) = word.strip_suffix(suf) {
                return base;
            }
        }
    }
    word
}

/// Word count with per-document normalization (lowercase + stemming) and
/// in-mapper combining: the heavy tokenize stage is narrow and splittable
/// (it runs as morsels), the residual shuffle moves only the combined
/// per-document counts.
fn scaling_word_count(d: &Dataset) {
    let counted = d
        .flat_map(|doc| {
            let text = doc
                .as_str()
                .ok_or_else(|| RuntimeError::new("expected a document string"))?;
            let mut counts: std::collections::BTreeMap<String, i64> = Default::default();
            for tok in text.split_whitespace() {
                let lower = tok.to_lowercase();
                *counts.entry(wc_stem(&lower).to_string()).or_insert(0) += 1;
            }
            Ok(counts
                .into_iter()
                .map(|(w, c)| Value::pair(Value::str(w), Value::Long(c)))
                .collect())
        })
        .expect("tokenize")
        .materialize()
        .expect("materialize")
        .reduce_by_key(|a, b| BinOp::Add.apply(a, b))
        .expect("count")
        .collect();
    assert!(!counted.is_empty());
}

const KM_DIM: usize = 8;
const KM_K: usize = 64;
const KM_BLOCK: usize = 512;

fn km_centroids() -> Vec<[f64; KM_DIM]> {
    let mut rng = SplitMix(7);
    (0..KM_K)
        .map(|_| std::array::from_fn(|_| rng.below(1000) as f64 / 1000.0))
        .collect()
}

/// Blocks of [`KM_BLOCK`] 8-dimensional points.
fn km_blocks(blocks: usize) -> Vec<Value> {
    let mut rng = SplitMix(13);
    (0..blocks)
        .map(|_| {
            Value::bag(
                (0..KM_BLOCK)
                    .map(|_| {
                        Value::tuple(
                            (0..KM_DIM)
                                .map(|_| Value::Double(rng.below(1000) as f64 / 1000.0))
                                .collect(),
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

/// One k-means step (assign + partial sums): the nearest-centroid search
/// (64 centroids × 8 dims per point) runs in the narrow splittable stage
/// with block-local aggregation; the shuffle carries at most `KM_K`
/// partial sums per block.
fn scaling_kmeans(d: &Dataset) {
    let cents = km_centroids();
    let new_centroids = d
        .flat_map(move |block| {
            let pts = block
                .as_bag()
                .ok_or_else(|| RuntimeError::new("expected a bag of points"))?;
            let mut acc = vec![[0.0f64; KM_DIM + 1]; KM_K];
            for p in pts {
                let t = p
                    .as_tuple()
                    .ok_or_else(|| RuntimeError::new("expected a point tuple"))?;
                let mut x = [0.0f64; KM_DIM];
                for (i, xi) in x.iter_mut().enumerate() {
                    *xi = t[i]
                        .as_double()
                        .ok_or_else(|| RuntimeError::new("expected a coordinate"))?;
                }
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (k, c) in cents.iter().enumerate() {
                    let mut s = 0.0;
                    for i in 0..KM_DIM {
                        let dx = x[i] - c[i];
                        s += dx * dx;
                    }
                    if s < best_d {
                        best_d = s;
                        best = k;
                    }
                }
                for i in 0..KM_DIM {
                    acc[best][i] += x[i];
                }
                acc[best][KM_DIM] += 1.0;
            }
            Ok(acc
                .iter()
                .enumerate()
                .filter(|(_, a)| a[KM_DIM] > 0.0)
                .map(|(k, a)| {
                    Value::pair(
                        Value::Long(k as i64),
                        Value::tuple(a.iter().map(|&f| Value::Double(f)).collect()),
                    )
                })
                .collect())
        })
        .expect("assign")
        .materialize()
        .expect("materialize")
        .reduce_by_key(|a, b| {
            let (x, y) = (a.as_tuple().unwrap(), b.as_tuple().unwrap());
            Ok(Value::tuple(
                x.iter()
                    .zip(y.iter())
                    .map(|(p, q)| Value::Double(p.as_double().unwrap() + q.as_double().unwrap()))
                    .collect(),
            ))
        })
        .expect("recenter")
        .collect();
    assert!(new_centroids.len() <= KM_K);
}

const PR_VERTICES: usize = 20_000;

/// Matrix-shaped edges `((i, j), 1)`; every vertex gets one guaranteed
/// out-edge so no rank mass is stranded.
fn pr_edges(extra: usize) -> Vec<Value> {
    let mut rng = SplitMix(17);
    let edge = |i: usize, j: usize| {
        Value::pair(
            Value::tuple(vec![Value::Long(i as i64), Value::Long(j as i64)]),
            Value::Long(1),
        )
    };
    let mut rows: Vec<Value> = (0..PR_VERTICES)
        .map(|i| edge(i, (i + 1) % PR_VERTICES))
        .collect();
    rows.extend((0..extra).map(|_| edge(rng.below(PR_VERTICES), rng.below(PR_VERTICES))));
    rows
}

fn scaling_pagerank(d: &Dataset) {
    let ranks = handwritten::pagerank(d, PR_VERTICES as i64, 2).expect("pagerank");
    assert!(!ranks.collect().is_empty());
}

type ScalingRunner = fn(&Dataset);
type ScalingWorkload = (&'static str, Option<usize>, Vec<Vec<Value>>, ScalingRunner);

fn scaling(json: bool, check: bool, mode_filter: Option<&str>) {
    if !json {
        println!("== Scaling: morsel work-stealing vs static pool on skewed input ============");
        println!(
            "{:<14} {:>9} {:>8} {:>10} {:>14} {:>9} {:>8}",
            "workload", "mode", "workers", "secs", "sched_speedup", "morsels", "steals"
        );
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // (name, morsel rows override, skewed input, pipeline). Morsel sizes
    // follow row weight: documents and point blocks are ~100–256× heavier
    // than a long, so their morsels hold proportionally fewer rows.
    let workloads: Vec<ScalingWorkload> = vec![
        (
            "fusion-chain",
            None,
            skewed((0..300_000).map(Value::Long).collect()),
            scaling_fusion as ScalingRunner,
        ),
        (
            "word-count",
            Some(256),
            skewed(wc_docs(16_000)),
            scaling_word_count,
        ),
        (
            "k-means",
            Some(64),
            skewed(km_blocks(2_000)),
            scaling_kmeans,
        ),
        (
            "page-rank",
            None,
            skewed(pr_edges(150_000)),
            scaling_pagerank,
        ),
    ];
    let mut measured: Vec<(String, String, usize, f64)> = Vec::new();
    for (name, morsel_rows, parts, run) in &workloads {
        for mode in ["morsel", "baseline"] {
            if mode_filter.is_some_and(|m| m != mode) {
                continue;
            }
            for &workers in &scaling_workers() {
                let ctx = match mode {
                    "morsel" => {
                        let c = Context::new(workers, SCALING_PARTS)
                            .with_executor(Arc::new(MorselExecutor));
                        if let Some(rows) = morsel_rows {
                            c.set_morsel_size(*rows);
                        }
                        c
                    }
                    _ => {
                        let c = Context::new(workers, SCALING_PARTS)
                            .with_executor(Arc::new(LocalExecutor));
                        c.set_static_scheduler(true);
                        c
                    }
                };
                ctx.set_memory_budget(None);
                let d = ctx.from_partitions(parts.clone());
                // Two repetitions, keeping the faster wall and the higher
                // load-balance bound: the bound is a property of the
                // schedule, and an OS hiccup during a short stage can only
                // depress the measured value, never inflate it.
                let mut t = Duration::MAX;
                let mut speedup = 1.0f64;
                let mut stats = ctx.stats().snapshot();
                for _ in 0..2 {
                    let before = ctx.stats().snapshot();
                    let (_, rep_t) = time_once(|| run(&d));
                    let rep = ctx.stats().snapshot().since(&before);
                    let rep_speedup = rep.sched_speedup().unwrap_or(1.0);
                    t = t.min(rep_t);
                    if rep_speedup >= speedup {
                        speedup = rep_speedup;
                        stats = rep;
                    }
                }
                measured.push((name.to_string(), mode.to_string(), workers, speedup));
                if json {
                    let settings = settings_fields(&ctx);
                    let secs_s = secs(t);
                    let speedup_s = format!("{speedup:.2}");
                    let morsels = stats.morsels.to_string();
                    let steals = stats.steals.to_string();
                    let depth = stats.max_queue_depth.to_string();
                    let vec_batches = stats.vectorized_batches.to_string();
                    let row_fallbacks = stats.row_fallback_stages.to_string();
                    let cpus = host_cpus.to_string();
                    let mut fields: Vec<(&str, &str)> =
                        vec![("section", "scaling"), ("workload", name)];
                    fields.extend(settings.iter().map(|(k, v)| (*k, v.as_str())));
                    fields.extend([
                        ("mode", mode),
                        ("secs", secs_s.as_str()),
                        ("sched_speedup", speedup_s.as_str()),
                        ("morsels", morsels.as_str()),
                        ("steals", steals.as_str()),
                        ("max_queue_depth", depth.as_str()),
                        ("vectorized_batches", vec_batches.as_str()),
                        ("row_fallback_stages", row_fallbacks.as_str()),
                        ("host_cpus", cpus.as_str()),
                    ]);
                    println!("{}", json_row(&fields));
                } else {
                    println!(
                        "{:<14} {:>9} {:>8} {:>10} {:>14.2} {:>9} {:>8}",
                        name,
                        mode,
                        workers,
                        secs(t),
                        speedup,
                        stats.morsels,
                        stats.steals
                    );
                }
            }
        }
    }
    if !json {
        println!();
    }
    if check {
        scaling_check(&measured);
    }
}

/// The gates CI holds the scheduler to, all on the 4-worker load-balance
/// bound (`sched_speedup`) so they are meaningful on any host: the morsel
/// scheduler must reach ≥2× on the fusion chain and ≥3× on word count and
/// k-means, while the static pool — pinned under the same 55% skew — must
/// stay below 2×.
fn scaling_check(measured: &[(String, String, usize, f64)]) {
    let get = |wl: &str, mode: &str| {
        measured
            .iter()
            .find(|(w, m, k, _)| w == wl && m == mode && *k == 4)
            .map(|(_, _, _, s)| *s)
    };
    let mut failures: Vec<String> = Vec::new();
    let gates: [(&str, &str, f64, bool); 5] = [
        ("fusion-chain", "morsel", 2.0, true),
        ("word-count", "morsel", 3.0, true),
        ("k-means", "morsel", 3.0, true),
        ("word-count", "baseline", 2.0, false),
        ("k-means", "baseline", 2.0, false),
    ];
    for (wl, mode, bound, at_least) in gates {
        let Some(s) = get(wl, mode) else { continue };
        let ok = if at_least { s >= bound } else { s < bound };
        if !ok {
            let rel = if at_least { "≥" } else { "<" };
            failures.push(format!(
                "{wl}/{mode} @4 workers: sched_speedup {s:.2} (need {rel} {bound})"
            ));
        }
    }
    if failures.is_empty() {
        eprintln!("scaling --check: all gates passed");
    } else {
        for f in &failures {
            eprintln!("scaling --check FAILED: {f}");
        }
        std::process::exit(1);
    }
}

// ------------------------------------------------------------- out-of-core

/// One out-of-core measurement: did the budgeted run match the unbounded
/// reference, and what did each side's cache counters say.
struct OocRow {
    workload: String,
    backend: String,
    identical: bool,
    budgeted_spills: u64,
    unbounded_spills: u64,
    unbounded_evictions: u64,
}

/// Out-of-core execution: Word Count and PageRank with the dataset cache
/// bounded to ~1/10 of the input bytes, on every backend, checked
/// byte-identical (rows and order) against the unbounded run. The
/// budgeted rows carry the cache counters (`dataset_spills`,
/// `dataset_spilled_bytes`, `dataset_evictions`, `dataset_recomputes`)
/// that prove the run actually went through disk rather than fitting in
/// memory after all.
fn out_of_core(json: bool, check: bool) {
    if !json {
        println!("== Out-of-core: dataset cache at ~1/10 of the input ========================");
        println!(
            "{:<12} {:>7} {:>12} {:>8} {:>10} {:>10} {:>7} {:>7} {:>7} {:>10}",
            "workload",
            "backend",
            "input_bytes",
            "budget",
            "unbounded",
            "budgeted",
            "spills",
            "evicts",
            "recomp",
            "identical"
        );
    }
    let s = scale();
    let workloads = vec![wl::word_count(6_000 * s, 7), wl::pagerank(120 * s, 3, 7)];
    let mut rows: Vec<OocRow> = Vec::new();
    for w in &workloads {
        let input = w.input_bytes() as u64;
        // At most a tenth of the input, capped at 4 KiB so even modest
        // inputs overflow the memory tier many times over.
        let budget = (input / 10).clamp(1, 4096);
        for &backend in BACKEND_NAMES {
            let exec = || executor_named(backend).expect(backend);
            let free = Context::new(4, 8).with_executor(exec());
            let before = free.stats().snapshot();
            let (reference, free_t) = run_diablo_outputs(w, &free);
            let base = free.stats().snapshot().since(&before);

            let ctx = Context::new(4, 8)
                .with_executor(exec())
                .with_dataset_budget(budget);
            let before = ctx.stats().snapshot();
            let (got, t) = run_diablo_outputs(w, &ctx);
            let stats = ctx.stats().snapshot().since(&before);
            let identical = got == reference;
            rows.push(OocRow {
                workload: w.name.to_string(),
                backend: backend.to_string(),
                identical,
                budgeted_spills: stats.dataset_spills,
                unbounded_spills: base.dataset_spills,
                unbounded_evictions: base.dataset_evictions,
            });
            if json {
                let settings = settings_fields(&ctx);
                let input_s = input.to_string();
                let free_s = secs(free_t);
                let secs_s = secs(t);
                let spills = stats.dataset_spills.to_string();
                let spilled = stats.dataset_spilled_bytes.to_string();
                let evicts = stats.dataset_evictions.to_string();
                let recomputes = stats.dataset_recomputes.to_string();
                let vec_batches = stats.vectorized_batches.to_string();
                let row_fallbacks = stats.row_fallback_stages.to_string();
                let identical_s = identical.to_string();
                let mut fields: Vec<(&str, &str)> =
                    vec![("section", "out_of_core"), ("workload", w.name)];
                fields.extend(settings.iter().map(|(k, v)| (*k, v.as_str())));
                fields.extend([
                    ("input_bytes", input_s.as_str()),
                    ("secs_unbounded", free_s.as_str()),
                    ("secs", secs_s.as_str()),
                    ("dataset_spills", spills.as_str()),
                    ("dataset_spilled_bytes", spilled.as_str()),
                    ("dataset_evictions", evicts.as_str()),
                    ("dataset_recomputes", recomputes.as_str()),
                    ("vectorized_batches", vec_batches.as_str()),
                    ("row_fallback_stages", row_fallbacks.as_str()),
                    ("identical", identical_s.as_str()),
                ]);
                println!("{}", json_row(&fields));
            } else {
                println!(
                    "{:<12} {:>7} {:>12} {:>8} {:>10} {:>10} {:>7} {:>7} {:>7} {:>10}",
                    w.name,
                    backend,
                    input,
                    budget,
                    secs(free_t),
                    secs(t),
                    stats.dataset_spills,
                    stats.dataset_evictions,
                    stats.dataset_recomputes,
                    identical
                );
            }
        }
    }
    if !json {
        println!();
    }
    if check {
        out_of_core_check(&rows);
    }
}

/// The gates CI holds out-of-core execution to: every budgeted run is
/// byte-identical to the unbounded reference, every budgeted run actually
/// spilled (the budget was genuinely undersized), and the unbounded
/// reference never touched the spill or eviction paths.
fn out_of_core_check(rows: &[OocRow]) {
    let mut failures: Vec<String> = Vec::new();
    for r in rows {
        let at = format!("{}/{}", r.workload, r.backend);
        if !r.identical {
            failures.push(format!("{at}: budgeted outputs diverged from unbounded"));
        }
        if r.budgeted_spills == 0 {
            failures.push(format!(
                "{at}: budgeted run never spilled — budget not exercised"
            ));
        }
        if r.unbounded_spills != 0 || r.unbounded_evictions != 0 {
            failures.push(format!("{at}: unbounded run spilled or evicted"));
        }
    }
    if failures.is_empty() {
        eprintln!("out-of-core --check: all gates passed");
    } else {
        for f in &failures {
            eprintln!("out-of-core --check FAILED: {f}");
        }
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------- columnar

const COLUMNAR_WORKERS: usize = 4;
const COLUMNAR_PARTS: usize = 8;

/// A scan-heavy fused chain built entirely from transparent expressions
/// (`map_expr`/`filter_expr` carrying `RowExpr` IR): ~20 scalar ops per
/// row across ten maps and two selective filters, so the stage compiler
/// lowers the whole stage to per-column loops and the output stays small.
fn columnar_chain(d: &Dataset) -> Dataset {
    use diablo_dataflow::RowExpr as E;
    let lit = |n: i64| Box::new(E::Const(Value::Long(n)));
    let input = || Box::new(E::Input);
    let bin = |op: BinOp, a: Box<E>, b: Box<E>| Box::new(E::Bin(op, a, b));
    let steps: Vec<E> = vec![
        E::Bin(BinOp::Add, bin(BinOp::Mul, input(), lit(3)), lit(7)),
        E::Bin(BinOp::Mul, input(), input()),
        E::Bin(BinOp::Mod, input(), lit(1_000_003)),
        E::Bin(BinOp::Sub, bin(BinOp::Mul, input(), lit(5)), lit(11)),
        E::Bin(BinOp::Eq, bin(BinOp::Mod, input(), lit(2)), lit(0)),
        E::Bin(BinOp::Add, input(), bin(BinOp::Mod, input(), lit(97))),
        E::Bin(BinOp::Mul, input(), lit(13)),
        E::Bin(BinOp::Mod, input(), lit(999_983)),
        E::Bin(BinOp::Lt, input(), lit(250_000)),
        E::Bin(BinOp::Add, bin(BinOp::Mul, input(), lit(31)), lit(17)),
        E::Bin(BinOp::Mod, input(), lit(101_117)),
        E::Bin(BinOp::Sub, input(), lit(1)),
    ];
    let mut out = d.clone();
    for (i, e) in steps.into_iter().enumerate() {
        out = if matches!(i, 4 | 8) {
            out.filter_expr(e).expect("filter_expr")
        } else {
            out.map_expr(e).expect("map_expr")
        };
    }
    out
}

/// One columnar-vs-row comparison the table, JSON, and `--check` gates
/// all read from.
struct ColumnarRow {
    workload: String,
    speedup: f64,
    identical: bool,
    errors_identical: bool,
    vectorized_batches: u64,
    row_fallback_stages: u64,
}

/// Columnar execution: the scan-heavy fused chain plus Word Count and
/// K-Means, each run once on the row path (`local`) and once on the
/// `columnar` backend, byte-checked (rows and order) against each other.
/// A poisoned division mid-chain additionally checks that both backends
/// surface the identical first error with its statement tag. `--check`
/// gates: everything identical, the chain actually vectorized, and the
/// columnar chain at least 3× faster than the row path.
fn columnar(json: bool, check: bool) {
    if !json {
        println!("== Columnar: vectorized batches vs the tuple-at-a-time row path ===========");
        println!(
            "{:<14} {:>9} {:>10} {:>9} {:>12} {:>10} {:>10} {:>8}",
            "workload",
            "backend",
            "secs",
            "speedup",
            "vec_batches",
            "fallbacks",
            "identical",
            "errors"
        );
    }
    let s = scale();
    let mut rows: Vec<ColumnarRow> = Vec::new();

    // -- the fused expression chain -------------------------------------
    let base: Vec<Value> = (0..1_500_000 * s as i64).map(Value::Long).collect();
    let timed = |backend: &str| {
        let ctx = Context::new(COLUMNAR_WORKERS, COLUMNAR_PARTS)
            .with_executor(executor_named(backend).expect(backend));
        ctx.set_memory_budget(None);
        let settings = settings_fields(&ctx);
        let d = ctx.from_vec(base.clone());
        let before = ctx.stats().snapshot();
        let mut out: Vec<Value> = Vec::new();
        let t = diablo_bench::time_median(2, || out = columnar_chain(&d).collect());
        let stats = ctx.stats().snapshot().since(&before);
        (t, out, stats, settings)
    };
    // The same chain with a division poisoned to hit zero on one mid-tile
    // row; both backends must surface the identical tagged first error.
    let poisoned_err = |backend: &str| -> String {
        use diablo_dataflow::RowExpr as E;
        let ctx = Context::new(COLUMNAR_WORKERS, COLUMNAR_PARTS)
            .with_executor(executor_named(backend).expect(backend));
        ctx.set_memory_budget(None);
        ctx.set_statement_label(Some("s1: F := 1000 / (V[i] - 123457)"));
        let d = ctx
            .from_vec((0..300_000).map(Value::Long).collect())
            .map_expr(E::Bin(
                BinOp::Div,
                Box::new(E::Const(Value::Long(1000))),
                Box::new(E::Bin(
                    BinOp::Sub,
                    Box::new(E::Input),
                    Box::new(E::Const(Value::Long(123_457))),
                )),
            ))
            .expect("map_expr");
        ctx.set_statement_label(None);
        d.try_collect()
            .expect_err("poisoned chain must fail")
            .message
    };
    let (row_t, row_rows, row_stats, row_settings) = timed("local");
    let (col_t, col_rows, col_stats, col_settings) = timed("columnar");
    let identical = row_rows == col_rows;
    let err_row = poisoned_err("local");
    let err_col = poisoned_err("columnar");
    let errors_identical = err_row == err_col && err_col.contains("zero");
    let speedup = row_t.as_secs_f64() / col_t.as_secs_f64().max(1e-9);
    rows.push(ColumnarRow {
        workload: "fusion-chain".into(),
        speedup,
        identical,
        errors_identical,
        vectorized_batches: col_stats.vectorized_batches,
        row_fallback_stages: col_stats.row_fallback_stages,
    });
    let emit = |workload: &str,
                backend_secs: Duration,
                speedup: f64,
                stats_vec: u64,
                stats_fallback: u64,
                settings: &[(&'static str, String)],
                identical: bool,
                errors_identical: Option<bool>| {
        if json {
            let secs_s = secs(backend_secs);
            let speedup_s = format!("{speedup:.2}");
            let vecb = stats_vec.to_string();
            let fallb = stats_fallback.to_string();
            let ident = identical.to_string();
            let mut fields: Vec<(&str, &str)> = vec![("bench", "columnar"), ("workload", workload)];
            fields.extend(settings.iter().map(|(k, v)| (*k, v.as_str())));
            fields.extend([
                ("secs", secs_s.as_str()),
                ("speedup_vs_row", speedup_s.as_str()),
                ("vectorized_batches", vecb.as_str()),
                ("row_fallback_stages", fallb.as_str()),
                ("identical", ident.as_str()),
            ]);
            let err_s;
            if let Some(e) = errors_identical {
                err_s = e.to_string();
                fields.push(("errors_identical", err_s.as_str()));
            }
            println!("{}", json_row(&fields));
        } else {
            let backend = settings
                .iter()
                .find(|(k, _)| *k == "backend")
                .map(|(_, v)| v.as_str())
                .unwrap_or("?");
            println!(
                "{:<14} {:>9} {:>10} {:>9.2} {:>12} {:>10} {:>10} {:>8}",
                workload,
                backend,
                secs(backend_secs),
                speedup,
                stats_vec,
                stats_fallback,
                identical,
                errors_identical.map_or("-".to_string(), |e| e.to_string()),
            );
        }
    };
    emit(
        "fusion-chain",
        row_t,
        1.0,
        row_stats.vectorized_batches,
        row_stats.row_fallback_stages,
        &row_settings,
        identical,
        Some(errors_identical),
    );
    emit(
        "fusion-chain",
        col_t,
        speedup,
        col_stats.vectorized_batches,
        col_stats.row_fallback_stages,
        &col_settings,
        identical,
        Some(errors_identical),
    );

    // -- full compiled workloads ----------------------------------------
    for w in [
        wl::word_count(20_000 * s, 91),
        wl::kmeans(2_000 * s, 3, 1, 92),
    ] {
        let run = |backend: &str| {
            let ctx = Context::new(COLUMNAR_WORKERS, COLUMNAR_PARTS)
                .with_executor(executor_named(backend).expect(backend));
            ctx.set_memory_budget(None);
            let settings = settings_fields(&ctx);
            let before = ctx.stats().snapshot();
            let (outs, t) = run_diablo_outputs(&w, &ctx);
            let stats = ctx.stats().snapshot().since(&before);
            (outs, t, stats, settings)
        };
        let (row_outs, row_t, row_stats, row_settings) = run("local");
        let (col_outs, col_t, col_stats, col_settings) = run("columnar");
        let identical = row_outs == col_outs;
        let speedup = row_t.as_secs_f64() / col_t.as_secs_f64().max(1e-9);
        rows.push(ColumnarRow {
            workload: w.name.to_string(),
            speedup,
            identical,
            errors_identical: true,
            vectorized_batches: col_stats.vectorized_batches,
            row_fallback_stages: col_stats.row_fallback_stages,
        });
        emit(
            w.name,
            row_t,
            1.0,
            row_stats.vectorized_batches,
            row_stats.row_fallback_stages,
            &row_settings,
            identical,
            None,
        );
        emit(
            w.name,
            col_t,
            speedup,
            col_stats.vectorized_batches,
            col_stats.row_fallback_stages,
            &col_settings,
            identical,
            None,
        );
    }
    if !json {
        println!();
    }
    if check {
        columnar_check(&rows);
    }
}

/// The gates CI holds columnar execution to: every workload byte-identical
/// to the row path, the poisoned chain's first error identical too, the
/// fused chain genuinely vectorized end to end (batches counted, zero
/// fallbacks), and at least 3× faster than tuple-at-a-time.
fn columnar_check(rows: &[ColumnarRow]) {
    let mut failures: Vec<String> = Vec::new();
    for r in rows {
        if !r.identical {
            failures.push(format!(
                "{}: columnar rows diverged from the row path",
                r.workload
            ));
        }
        if !r.errors_identical {
            failures.push(format!("{}: columnar first error diverged", r.workload));
        }
        if r.workload == "fusion-chain" {
            if r.speedup < 3.0 {
                failures.push(format!(
                    "fusion-chain: columnar speedup {:.2} (need ≥ 3.0)",
                    r.speedup
                ));
            }
            if r.vectorized_batches == 0 {
                failures.push("fusion-chain: no vectorized batches counted".into());
            }
            if r.row_fallback_stages != 0 {
                failures.push(format!(
                    "fusion-chain: {} row-path fallbacks on a transparent chain",
                    r.row_fallback_stages
                ));
            }
        }
    }
    if failures.is_empty() {
        eprintln!("columnar --check: all gates passed");
    } else {
        for f in &failures {
            eprintln!("columnar --check FAILED: {f}");
        }
        std::process::exit(1);
    }
}

// ------------------------------------------------------------------- serve

/// The serving workload mix: compute-heavy programs with small inputs and
/// small outputs, so a request's wall-clock is dominated by engine work —
/// what the cold/warm comparison is meant to expose — rather than by
/// shipping rows over the socket.
fn serve_workloads() -> Vec<wl::Workload> {
    let s = scale();
    vec![
        wl::matrix_multiplication(28 * s, 71),
        wl::matrix_multiplication(32 * s, 72),
        wl::matrix_multiplication(36 * s, 73),
        wl::pagerank(150 * s, 2, 74),
        wl::pagerank(200 * s, 3, 75),
        wl::matrix_factorization(24 * s, 2, 1, 76),
    ]
}

/// What one closed-loop phase observed, aggregated over all clients.
struct PhaseResult {
    latencies: Vec<Duration>,
    failures: u64,
    hits: u64,
    wall: Duration,
}

/// Drives the server with `clients` closed-loop threads, each running
/// every workload `rounds` times (rotated per client so concurrent
/// requests interleave distinct programs).
fn serve_drive(
    addr: &str,
    clients: usize,
    rounds: usize,
    workloads: &[wl::Workload],
    no_cache: bool,
) -> PhaseResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let wls = workloads.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect to diablod");
                let mut latencies = Vec::with_capacity(rounds * wls.len());
                let mut failures = 0u64;
                let mut hits = 0u64;
                for r in 0..rounds {
                    for i in 0..wls.len() {
                        let w = &wls[(i + c + r) % wls.len()];
                        let scalars: Vec<(String, Value)> = w
                            .scalars
                            .iter()
                            .map(|(n, v)| (n.to_string(), v.clone()))
                            .collect();
                        let rows: Vec<(String, Vec<Value>)> = w
                            .collections
                            .iter()
                            .map(|(n, r)| (n.to_string(), r.clone()))
                            .collect();
                        let t0 = Instant::now();
                        match client.run(w.source, scalars, rows, no_cache) {
                            Ok(res) => {
                                latencies.push(t0.elapsed());
                                if res.stats.cache_hit {
                                    hits += 1;
                                }
                            }
                            Err(_) => failures += 1,
                        }
                    }
                }
                (latencies, failures, hits)
            })
        })
        .collect();
    let mut out = PhaseResult {
        latencies: Vec::new(),
        failures: 0,
        hits: 0,
        wall: Duration::ZERO,
    };
    for h in handles {
        let (lats, failures, hits) = h.join().expect("client thread");
        out.latencies.extend(lats);
        out.failures += failures;
        out.hits += hits;
    }
    out.wall = started.elapsed();
    out
}

/// The closed-loop `diablod` serving benchmark: starts an in-process
/// server on an ephemeral port and drives it through three phases —
/// `cold` (every request executes, cache bypassed), `warm` (every
/// request is answerable from the plan-hash result cache, primed by the
/// cold phase since `no_cache` still stores results), and `overload`
/// (2× `max_inflight` clients, where admission control must queue the
/// excess rather than fail or OOM). `--check` gates: zero failed
/// requests anywhere, every warm request a cache hit, and warm p50 at
/// least 10× below cold p50.
fn serve_bench(json: bool, check: bool) {
    let ctx = Context::default_parallel();
    let settings = settings_fields(&ctx);
    let cfg = ServeConfig::default();
    let max_inflight = cfg.max_inflight;
    let max_inflight_s = max_inflight.to_string();
    let deadline_ms = cfg.queue_deadline.as_millis().to_string();
    let cache_budget = cfg.cache_budget.to_string();
    let server = Server::start("127.0.0.1:0", ctx, cfg).expect("start diablod");
    let addr = server.addr().to_string();
    let workloads = serve_workloads();

    if !json {
        println!("== Serving: diablod closed-loop (clients × programs) =======================");
        println!(
            "{:<10} {:>8} {:>9} {:>9} {:>10} {:>10} {:>10} {:>6} {:>9}",
            "phase",
            "clients",
            "requests",
            "failures",
            "rps",
            "p50 (ms)",
            "p99 (ms)",
            "hits",
            "wall (s)"
        );
    }

    let phases: [(&str, usize, usize, bool); 3] = [
        ("cold", max_inflight, 1, true),
        ("warm", max_inflight, 20, false),
        ("overload", 2 * max_inflight, 1, true),
    ];
    let mut results: Vec<(&str, usize, PhaseResult)> = Vec::new();
    for (phase, clients, rounds, no_cache) in phases {
        let res = serve_drive(&addr, clients, rounds, &workloads, no_cache);
        results.push((phase, clients, res));
    }

    for (phase, clients, res) in &results {
        let requests = res.latencies.len() as u64 + res.failures;
        let rps = requests as f64 / res.wall.as_secs_f64().max(1e-9);
        let p50 = percentile(&res.latencies, 50.0);
        let p99 = percentile(&res.latencies, 99.0);
        if json {
            let clients_s = clients.to_string();
            let programs = workloads.len().to_string();
            let requests_s = requests.to_string();
            let failures = res.failures.to_string();
            let rps_s = format!("{rps:.1}");
            let p50_s = millis(p50);
            let p99_s = millis(p99);
            let hits = res.hits.to_string();
            let wall = secs(res.wall);
            let mut fields: Vec<(&str, &str)> = vec![("bench", "serve"), ("phase", phase)];
            fields.extend(settings.iter().map(|(k, v)| (*k, v.as_str())));
            fields.extend([
                ("clients", clients_s.as_str()),
                ("programs", programs.as_str()),
                ("requests", requests_s.as_str()),
                ("failures", failures.as_str()),
                ("rps", rps_s.as_str()),
                ("p50_ms", p50_s.as_str()),
                ("p99_ms", p99_s.as_str()),
                ("cache_hits", hits.as_str()),
                ("wall_secs", wall.as_str()),
                ("max_inflight", max_inflight_s.as_str()),
                ("queue_deadline_ms", deadline_ms.as_str()),
                ("cache_budget", cache_budget.as_str()),
            ]);
            println!("{}", json_row(&fields));
        } else {
            println!(
                "{:<10} {:>8} {:>9} {:>9} {:>10.1} {:>10} {:>10} {:>6} {:>9}",
                phase,
                clients,
                requests,
                res.failures,
                rps,
                millis(p50),
                millis(p99),
                res.hits,
                secs(res.wall)
            );
        }
    }

    // One counters row: the server's own view of the run.
    let counters = Client::connect(&addr)
        .expect("connect to diablod")
        .stats()
        .expect("server stats");
    if json {
        let mut fields: Vec<(&str, &str)> = vec![("bench", "serve"), ("phase", "counters")];
        let owned: Vec<(String, String)> = counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        fields.extend(owned.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        println!("{}", json_row(&fields));
    } else {
        let line: Vec<String> = counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("counters   {}", line.join(" "));
        println!();
    }
    let timeouts = counters
        .iter()
        .find(|(k, _)| k == "admission_timeouts")
        .map_or(0, |(_, v)| *v);
    server.stop();

    if check {
        serve_check(&results, timeouts);
    }
}

/// The gates CI holds the serving layer to: no request may fail in any
/// phase (overload queues, it does not shed), no admission timeout may
/// fire, the warm phase must be answered entirely from the cache, and a
/// cache hit must be at least 10× faster than a cold execution at the
/// median.
fn serve_check(results: &[(&str, usize, PhaseResult)], timeouts: u64) {
    let get = |phase: &str| results.iter().find(|(p, _, _)| *p == phase).map(|r| &r.2);
    let mut failures: Vec<String> = Vec::new();
    for (phase, _, res) in results {
        if res.failures > 0 {
            failures.push(format!(
                "{phase}: {} failed requests (need 0)",
                res.failures
            ));
        }
    }
    if timeouts > 0 {
        failures.push(format!("{timeouts} admission timeouts (need 0)"));
    }
    if let Some(warm) = get("warm") {
        let misses = warm.latencies.len() as u64 - warm.hits;
        if misses > 0 {
            failures.push(format!("warm: {misses} cache misses (need 0)"));
        }
    }
    if let (Some(cold), Some(warm)) = (get("cold"), get("warm")) {
        let cold_p50 = percentile(&cold.latencies, 50.0);
        let warm_p50 = percentile(&warm.latencies, 50.0);
        if warm_p50 * 10 > cold_p50 {
            failures.push(format!(
                "warm p50 {} ms not ≥10× below cold p50 {} ms",
                millis(warm_p50),
                millis(cold_p50)
            ));
        }
    }
    if failures.is_empty() {
        eprintln!("serve --check: all gates passed");
    } else {
        for f in &failures {
            eprintln!("serve --check FAILED: {f}");
        }
        std::process::exit(1);
    }
}

// ------------------------------------------------------------- §5 ablation

/// §5 ablation: sparse matrix multiplication (the DIABLO plan) vs the
/// packed/tiled path with dense tile kernels and the no-shuffle merge.
fn tiles(json: bool) {
    if !json {
        println!("== §5 ablation: sparse vs tiled matrix multiplication =====================");
        println!(
            "{:>6} {:>14} {:>14} {:>16}",
            "d", "sparse (s)", "tiled (s)", "tiled+pack (s)"
        );
    }
    let ctx = Context::default_parallel();
    let settings = settings_fields(&ctx);
    let s = scale();
    for &d in &[20usize * s, 40 * s, 60 * s, 80 * s] {
        let w = wl::matrix_multiplication(d, 7);
        let sparse = run_diablo(&w, &ctx);
        // Tiled path: dense 8×8 tiles, dense inner kernels.
        let m_rows = &w.collections[0].1;
        let n_rows = &w.collections[1].1;
        let tm = TiledMatrix::pack_values(8, 8, m_rows).expect("pack M");
        let tn = TiledMatrix::pack_values(8, 8, n_rows).expect("pack N");
        let (_, tiled) = time_once(|| tm.multiply(&tn));
        // Including pack/unpack conversion (the layer §5 fuses away).
        let start = Instant::now();
        let tm2 = TiledMatrix::pack_values(8, 8, m_rows).expect("pack M");
        let tn2 = TiledMatrix::pack_values(8, 8, n_rows).expect("pack N");
        let prod = tm2.multiply(&tn2);
        let _ = prod.unpack_values();
        let with_pack: Duration = start.elapsed();
        if json {
            let d_s = d.to_string();
            let sparse_s = secs(sparse);
            let tiled_s = secs(tiled);
            let pack_s = secs(with_pack);
            let mut fields: Vec<(&str, &str)> = vec![("bench", "tiles")];
            fields.extend(settings.iter().map(|(k, v)| (*k, v.as_str())));
            fields.extend([
                ("d", d_s.as_str()),
                ("sparse_secs", sparse_s.as_str()),
                ("tiled_secs", tiled_s.as_str()),
                ("tiled_pack_secs", pack_s.as_str()),
            ]);
            println!("{}", json_row(&fields));
        } else {
            println!(
                "{:>6} {:>14} {:>14} {:>16}",
                d,
                secs(sparse),
                secs(tiled),
                secs(with_pack)
            );
        }
    }
    if !json {
        println!();
    }
}
