//! The interpreter's mutable store: variable name → scalar or collection.
//!
//! Collections are hash maps keyed by [`Value`], which is exactly the
//! key-value-map view of sparse arrays in §3.4 — only materialized instead
//! of bag-shaped.

use std::collections::HashMap;

use diablo_runtime::{RuntimeError, Value};

use crate::Result;

/// A store cell: either a scalar value or a sparse collection.
#[derive(Debug, Clone)]
pub enum Cell {
    /// A scalar variable.
    Scalar(Value),
    /// A sparse array / map, keyed by index value.
    Collection(HashMap<Value, Value>),
}

/// The interpreter store.
#[derive(Debug, Default)]
pub struct Store {
    cells: HashMap<String, Cell>,
}

impl Store {
    /// Reads a cell.
    pub fn get(&self, name: &str) -> Option<&Cell> {
        self.cells.get(name)
    }

    /// Binds a scalar.
    pub fn set_scalar(&mut self, name: &str, v: Value) {
        self.cells.insert(name.to_string(), Cell::Scalar(v));
    }

    /// Binds an empty collection.
    pub fn set_empty_collection(&mut self, name: &str) {
        self.cells
            .insert(name.to_string(), Cell::Collection(HashMap::new()));
    }

    /// Binds a collection from `(key, value)` pairs; later duplicates win.
    pub fn set_collection_pairs(&mut self, name: &str, pairs: Vec<Value>) -> Result<()> {
        let mut map = HashMap::with_capacity(pairs.len());
        for p in pairs {
            let (k, v) = diablo_runtime::array::key_value(&p)?;
            map.insert(k, v);
        }
        self.cells.insert(name.to_string(), Cell::Collection(map));
        Ok(())
    }

    /// Removes a binding (used for loop indexes going out of scope).
    pub fn remove(&mut self, name: &str) {
        self.cells.remove(name);
    }

    /// Looks up a key in a collection. `Ok(None)` is the sparse "missing
    /// element" case.
    pub fn lookup(&self, name: &str, key: &Value) -> Result<Option<Value>> {
        match self.cells.get(name) {
            Some(Cell::Collection(map)) => Ok(map.get(key).cloned()),
            Some(Cell::Scalar(_)) => Err(RuntimeError::new(format!(
                "scalar `{name}` cannot be indexed"
            ))),
            None => Err(RuntimeError::new(format!("undefined variable `{name}`"))),
        }
    }

    /// Inserts or overwrites a key in a collection. Writing through an
    /// undeclared name is an error (declarations create collections).
    pub fn insert(&mut self, name: &str, key: Value, v: Value) -> Result<()> {
        match self.cells.get_mut(name) {
            Some(Cell::Collection(map)) => {
                map.insert(key, v);
                Ok(())
            }
            Some(Cell::Scalar(_)) => Err(RuntimeError::new(format!(
                "scalar `{name}` cannot be indexed"
            ))),
            None => Err(RuntimeError::new(format!("undefined variable `{name}`"))),
        }
    }

    /// The values of a collection in ascending key order (deterministic
    /// traversal order for `for v in e`).
    pub fn collection_values_sorted(&self, name: &str) -> Result<Vec<Value>> {
        match self.cells.get(name) {
            Some(Cell::Collection(map)) => {
                let mut entries: Vec<(&Value, &Value)> = map.iter().collect();
                entries.sort_by(|a, b| a.0.cmp(b.0));
                Ok(entries.into_iter().map(|(_, v)| v.clone()).collect())
            }
            Some(Cell::Scalar(_)) => Err(RuntimeError::new(format!(
                "scalar `{name}` is not a collection"
            ))),
            None => Err(RuntimeError::new(format!("undefined variable `{name}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_round_trip() {
        let mut store = Store::default();
        store.set_empty_collection("V");
        store
            .insert("V", Value::Long(3), Value::Double(1.5))
            .unwrap();
        assert_eq!(
            store.lookup("V", &Value::Long(3)).unwrap(),
            Some(Value::Double(1.5))
        );
        assert_eq!(store.lookup("V", &Value::Long(4)).unwrap(), None);
    }

    #[test]
    fn scalar_misuse_errors() {
        let mut store = Store::default();
        store.set_scalar("x", Value::Long(1));
        assert!(store.lookup("x", &Value::Long(0)).is_err());
        assert!(store.insert("x", Value::Long(0), Value::Long(1)).is_err());
        assert!(store.collection_values_sorted("x").is_err());
    }

    #[test]
    fn values_come_out_in_key_order() {
        let mut store = Store::default();
        store
            .set_collection_pairs(
                "V",
                vec![
                    Value::pair(Value::Long(5), Value::str("b")),
                    Value::pair(Value::Long(1), Value::str("a")),
                ],
            )
            .unwrap();
        assert_eq!(
            store.collection_values_sorted("V").unwrap(),
            vec![Value::str("a"), Value::str("b")]
        );
    }

    #[test]
    fn duplicate_input_keys_take_latest() {
        let mut store = Store::default();
        store
            .set_collection_pairs(
                "V",
                vec![
                    Value::pair(Value::Long(1), Value::Long(10)),
                    Value::pair(Value::Long(1), Value::Long(20)),
                ],
            )
            .unwrap();
        assert_eq!(
            store.lookup("V", &Value::Long(1)).unwrap(),
            Some(Value::Long(20))
        );
    }
}
