//! # diablo-interp
//!
//! A sequential, tree-walking reference interpreter for the loop-based
//! language. It serves three purposes in the reproduction:
//!
//! 1. **Correctness oracle** — every translated program is compared against
//!    the interpreter on the same inputs (Appendix A proves the translation
//!    meaning-preserving; the integration tests check it empirically).
//! 2. **The "seq" column of Table 2** — the paper compares each generated
//!    parallel program against a sequential evaluation of the same loops.
//! 3. **Candidate validation for the Casper-style baseline** — the
//!    enumerative synthesizer (crate `diablo-baselines`) validates candidate
//!    map/reduce programs against interpreter runs.
//!
//! ## Sparse-array semantics
//!
//! Arrays are *sparse* (§3.4): reading a missing element yields the empty
//! bag in the comprehension calculus, which erases the enclosing loop
//! iteration's update. The interpreter mirrors this exactly: an expression
//! evaluates to `Option<Value>`, a missing array read makes it `None`, and a
//! statement any of whose sub-expressions is `None` becomes a no-op.
//! An incremental update `d ⊕= e` whose destination holds no value yet
//! starts from `e` itself (the left-outer-join semantics of the translated
//! group-by).

mod store;

pub use store::{Cell, Store};

use diablo_lang::ast::{Const, DeclInit, Expr, Lhs, Stmt};
use diablo_lang::types::TypedProgram;
use diablo_runtime::{RuntimeError, Value};

/// Result alias: interpreter errors are runtime errors.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// The sequential interpreter. Bind inputs, [`Interpreter::run`] a program,
/// then read results back out of the store.
#[derive(Debug, Default)]
pub struct Interpreter {
    store: Store,
    /// Number of executed statements, reported for curiosity/benchmarks.
    pub steps: u64,
}

impl Interpreter {
    /// Creates an interpreter with an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a scalar input.
    pub fn bind_scalar(&mut self, name: &str, v: Value) {
        self.store.set_scalar(name, v);
    }

    /// Binds a collection input from a bag of `(key, value)` pairs.
    pub fn bind_collection(&mut self, name: &str, pairs: Vec<Value>) -> Result<()> {
        self.store.set_collection_pairs(name, pairs)
    }

    /// Reads a scalar result.
    pub fn scalar(&self, name: &str) -> Option<Value> {
        match self.store.get(name)? {
            Cell::Scalar(v) => Some(v.clone()),
            Cell::Collection(_) => None,
        }
    }

    /// Reads a collection result as a bag of `(key, value)` pairs sorted by
    /// key (for deterministic comparisons).
    pub fn collection(&self, name: &str) -> Option<Vec<Value>> {
        match self.store.get(name)? {
            Cell::Collection(map) => {
                let mut keys: Vec<&Value> = map.keys().collect();
                keys.sort();
                Some(
                    keys.into_iter()
                        .map(|k| Value::pair(k.clone(), map[k].clone()))
                        .collect(),
                )
            }
            Cell::Scalar(_) => None,
        }
    }

    /// Runs a type-checked program against the current store.
    pub fn run(&mut self, tp: &TypedProgram) -> Result<()> {
        for (name, _) in &tp.program.inputs {
            if self.store.get(name).is_none() {
                return Err(RuntimeError::new(format!("input `{name}` was not bound")));
            }
        }
        for s in &tp.program.body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        self.steps += 1;
        match s {
            Stmt::Decl { name, init, .. } => {
                match init {
                    DeclInit::EmptyCollection => {
                        self.store.set_empty_collection(name);
                    }
                    DeclInit::Expr(e) => {
                        if let Some(v) = self.eval(e)? {
                            self.store.set_scalar(name, v);
                        } else {
                            return Err(RuntimeError::new(format!(
                                "initializer of `{name}` reads a missing array element"
                            )));
                        }
                    }
                }
                Ok(())
            }
            Stmt::Assign { dest, value, .. } => {
                let Some(v) = self.eval(value)? else {
                    return Ok(());
                };
                self.write(dest, v, None)
            }
            Stmt::Incr {
                dest, op, value, ..
            } => {
                let Some(v) = self.eval(value)? else {
                    return Ok(());
                };
                self.write(dest, v, Some(*op))
            }
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                let Some(lo) = self.eval(lo)? else {
                    return Ok(());
                };
                let Some(hi) = self.eval(hi)? else {
                    return Ok(());
                };
                let lo = lo
                    .as_long()
                    .ok_or_else(|| RuntimeError::new("for-loop bound must be long"))?;
                let hi = hi
                    .as_long()
                    .ok_or_else(|| RuntimeError::new("for-loop bound must be long"))?;
                for i in lo..=hi {
                    self.store.set_scalar(var, Value::Long(i));
                    self.stmt(body)?;
                }
                self.store.remove(var);
                Ok(())
            }
            Stmt::ForIn {
                var, source, body, ..
            } => {
                let Expr::Dest(Lhs::Var(src)) = source else {
                    return Err(RuntimeError::new(
                        "for-in source must be a collection variable",
                    ));
                };
                let values = self.store.collection_values_sorted(src)?;
                for v in values {
                    self.store.set_scalar(var, v);
                    self.stmt(body)?;
                }
                self.store.remove(var);
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    let Some(c) = self.eval(cond)? else {
                        return Ok(());
                    };
                    let c = c
                        .as_bool()
                        .ok_or_else(|| RuntimeError::new("while condition must be bool"))?;
                    if !c {
                        break;
                    }
                    self.stmt(body)?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let Some(c) = self.eval(cond)? else {
                    return Ok(());
                };
                let c = c
                    .as_bool()
                    .ok_or_else(|| RuntimeError::new("if condition must be bool"))?;
                if c {
                    self.stmt(then_branch)
                } else if let Some(e) = else_branch {
                    self.stmt(e)
                } else {
                    Ok(())
                }
            }
            Stmt::Block(ss) => {
                for s in ss {
                    self.stmt(s)?;
                }
                Ok(())
            }
        }
    }

    /// Writes `v` to destination `dest`; `accum` is `Some(⊕)` for
    /// incremental updates.
    fn write(&mut self, dest: &Lhs, v: Value, accum: Option<diablo_runtime::BinOp>) -> Result<()> {
        match dest {
            Lhs::Var(name) => {
                let new = match accum {
                    Some(op) => match self.store.get(name) {
                        Some(Cell::Scalar(cur)) => op.apply(cur, &v)?,
                        _ => v,
                    },
                    None => v,
                };
                self.store.set_scalar(name, new);
                Ok(())
            }
            Lhs::Index(name, idxs) => {
                let mut key_parts = Vec::with_capacity(idxs.len());
                for e in idxs {
                    let Some(k) = self.eval(e)? else {
                        return Ok(());
                    };
                    key_parts.push(k);
                }
                let key = if key_parts.len() == 1 {
                    key_parts.pop().expect("one index")
                } else {
                    Value::tuple(key_parts)
                };
                let new = match accum {
                    Some(op) => match self.store.lookup(name, &key)? {
                        Some(cur) => op.apply(&cur, &v)?,
                        None => v,
                    },
                    None => v,
                };
                self.store.insert(name, key, new)
            }
            Lhs::Proj(base, field) => {
                // Read-modify-write of a single record field.
                let Some(cur) = self.read_lhs(base)? else {
                    return Ok(());
                };
                let Value::Record(fields) = &cur else {
                    return Err(RuntimeError::new(format!(
                        "cannot project `.{field}` out of {}",
                        cur.type_name()
                    )));
                };
                let old = cur
                    .field(field)
                    .ok_or_else(|| RuntimeError::new(format!("no field `{field}`")))?
                    .clone();
                let new_field = match accum {
                    Some(op) => op.apply(&old, &v)?,
                    None => v,
                };
                let new_fields: Vec<(String, Value)> = fields
                    .iter()
                    .map(|(n, f)| {
                        if n == field {
                            (n.clone(), new_field.clone())
                        } else {
                            (n.clone(), f.clone())
                        }
                    })
                    .collect();
                self.write(base, Value::record(new_fields), None)
            }
        }
    }

    fn read_lhs(&mut self, d: &Lhs) -> Result<Option<Value>> {
        match d {
            Lhs::Var(name) => match self.store.get(name) {
                Some(Cell::Scalar(v)) => Ok(Some(v.clone())),
                Some(Cell::Collection(_)) => Err(RuntimeError::new(format!(
                    "collection `{name}` used as a scalar"
                ))),
                None => Err(RuntimeError::new(format!("undefined variable `{name}`"))),
            },
            Lhs::Proj(base, field) => {
                let Some(v) = self.read_lhs(base)? else {
                    return Ok(None);
                };
                match v.field(field) {
                    Some(f) => Ok(Some(f.clone())),
                    None => Err(RuntimeError::new(format!(
                        "value {v} has no field `{field}`"
                    ))),
                }
            }
            Lhs::Index(name, idxs) => {
                let mut key_parts = Vec::with_capacity(idxs.len());
                for e in idxs {
                    let Some(k) = self.eval(e)? else {
                        return Ok(None);
                    };
                    key_parts.push(k);
                }
                let key = if key_parts.len() == 1 {
                    key_parts.pop().expect("one index")
                } else {
                    Value::tuple(key_parts)
                };
                self.store.lookup(name, &key)
            }
        }
    }

    /// Evaluates an expression; `None` means a missing sparse-array element
    /// was read somewhere inside.
    pub fn eval(&mut self, e: &Expr) -> Result<Option<Value>> {
        match e {
            Expr::Dest(d) => self.read_lhs(d),
            Expr::Const(c) => Ok(Some(match c {
                Const::Long(n) => Value::Long(*n),
                Const::Double(x) => Value::Double(*x),
                Const::Bool(b) => Value::Bool(*b),
                Const::Str(s) => Value::str(s),
            })),
            Expr::Bin(op, a, b) => {
                let Some(a) = self.eval(a)? else {
                    return Ok(None);
                };
                let Some(b) = self.eval(b)? else {
                    return Ok(None);
                };
                Ok(Some(op.apply(&a, &b)?))
            }
            Expr::Un(op, a) => {
                let Some(a) = self.eval(a)? else {
                    return Ok(None);
                };
                Ok(Some(op.apply(&a)?))
            }
            Expr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let Some(v) = self.eval(a)? else {
                        return Ok(None);
                    };
                    vals.push(v);
                }
                Ok(Some(f.apply(&vals)?))
            }
            Expr::Tuple(fields) => {
                let mut vals = Vec::with_capacity(fields.len());
                for f in fields {
                    let Some(v) = self.eval(f)? else {
                        return Ok(None);
                    };
                    vals.push(v);
                }
                Ok(Some(Value::tuple(vals)))
            }
            Expr::Record(fields) => {
                let mut vals = Vec::with_capacity(fields.len());
                for (n, f) in fields {
                    let Some(v) = self.eval(f)? else {
                        return Ok(None);
                    };
                    vals.push((n.clone(), v));
                }
                Ok(Some(Value::record(vals)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_lang::{parse, typecheck};

    fn run(src: &str, setup: impl FnOnce(&mut Interpreter)) -> Interpreter {
        let tp = typecheck(parse(src).unwrap()).unwrap();
        let mut interp = Interpreter::new();
        setup(&mut interp);
        interp.run(&tp).unwrap();
        interp
    }

    fn vec_input(entries: &[(i64, i64)]) -> Vec<Value> {
        entries
            .iter()
            .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
            .collect()
    }

    #[test]
    fn intro_group_by_example() {
        // for i = 0, 9 do C[A[i].K] += A[i].V with A = {(3,10),(5,25),(3,13)}
        // keyed 0..2 gives C = {(3,23),(5,25)} (paper §1).
        let src = r#"
            input A: vector[<|K: long, V: long|>];
            var C: vector[long] = vector();
            for i = 0, 9 do C[A[i].K] += A[i].V;
        "#;
        let interp = run(src, |it| {
            let a = vec![(0, (3, 10)), (1, (5, 25)), (2, (3, 13))]
                .into_iter()
                .map(|(i, (k, v))| {
                    Value::pair(
                        Value::Long(i),
                        Value::record(vec![
                            ("K".into(), Value::Long(k)),
                            ("V".into(), Value::Long(v)),
                        ]),
                    )
                })
                .collect();
            it.bind_collection("A", a).unwrap();
        });
        assert_eq!(
            interp.collection("C").unwrap(),
            vec_input(&[(3, 23), (5, 25)])
        );
    }

    #[test]
    fn missing_reads_skip_iterations() {
        let src = r#"
            input V: vector[long];
            var sum: long = 0;
            for i = 0, 99 do sum += V[i];
        "#;
        let interp = run(src, |it| {
            it.bind_collection("V", vec_input(&[(2, 10), (50, 32)]))
                .unwrap();
        });
        assert_eq!(interp.scalar("sum"), Some(Value::Long(42)));
    }

    #[test]
    fn matrix_multiplication_small() {
        let src = r#"
            input M: matrix[double];
            input N: matrix[double];
            input d: long;
            var R: matrix[double] = matrix();
            for i = 0, d-1 do
              for j = 0, d-1 do {
                R[i, j] := 0.0;
                for k = 0, d-1 do
                  R[i, j] += M[i, k] * N[k, j];
              };
        "#;
        let m = |entries: &[(i64, i64, f64)]| {
            entries
                .iter()
                .map(|&(i, j, v)| {
                    Value::pair(
                        Value::pair(Value::Long(i), Value::Long(j)),
                        Value::Double(v),
                    )
                })
                .collect::<Vec<_>>()
        };
        let interp = run(src, |it| {
            it.bind_scalar("d", Value::Long(2));
            it.bind_collection(
                "M",
                m(&[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]),
            )
            .unwrap();
            it.bind_collection(
                "N",
                m(&[(0, 0, 5.0), (0, 1, 6.0), (1, 0, 7.0), (1, 1, 8.0)]),
            )
            .unwrap();
        });
        let r = interp.collection("R").unwrap();
        let get = |i: i64, j: i64| {
            r.iter()
                .find_map(|p| match p.as_tuple() {
                    Some([k, v]) if *k == Value::pair(Value::Long(i), Value::Long(j)) => {
                        v.as_double()
                    }
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(get(0, 0), 19.0);
        assert_eq!(get(0, 1), 22.0);
        assert_eq!(get(1, 0), 43.0);
        assert_eq!(get(1, 1), 50.0);
    }

    #[test]
    fn while_loop_with_counter() {
        let src = r#"
            var k: long = 0;
            var total: long = 0;
            while (k < 5) { k += 1; total += k; };
        "#;
        let interp = run(src, |_| {});
        assert_eq!(interp.scalar("total"), Some(Value::Long(15)));
    }

    #[test]
    fn conditionals_and_for_in() {
        let src = r#"
            input V: vector[double];
            var sum: double = 0.0;
            for v in V do
                if (v < 100.0) sum += v;
        "#;
        let interp = run(src, |it| {
            let v = vec![(0, 5.0), (1, 250.0), (2, 7.5)]
                .into_iter()
                .map(|(i, x)| Value::pair(Value::Long(i), Value::Double(x)))
                .collect();
            it.bind_collection("V", v).unwrap();
        });
        assert_eq!(interp.scalar("sum"), Some(Value::Double(12.5)));
    }

    #[test]
    fn incremental_on_missing_key_starts_from_value() {
        let src = r#"
            var C: map[string, long] = map();
            C["a"] += 1;
            C["a"] += 1;
            C["b"] += 5;
        "#;
        let interp = run(src, |_| {});
        let c = interp.collection("C").unwrap();
        assert_eq!(
            c,
            vec![
                Value::pair(Value::str("a"), Value::Long(2)),
                Value::pair(Value::str("b"), Value::Long(5)),
            ]
        );
    }

    #[test]
    fn unbound_input_is_an_error() {
        let tp = typecheck(parse("input V: vector[long]; var s: long = 0;").unwrap()).unwrap();
        let mut interp = Interpreter::new();
        assert!(interp.run(&tp).is_err());
    }

    #[test]
    fn overwrite_then_read_latest() {
        let src = r#"
            var V: vector[long] = vector();
            var x: long = 0;
            V[3] := 10;
            V[3] := 20;
            x := V[3];
        "#;
        let interp = run(src, |_| {});
        assert_eq!(interp.scalar("x"), Some(Value::Long(20)));
    }

    #[test]
    fn argmin_incremental_update() {
        let src = r#"
            input D: vector[(long, double)];
            var best: vector[(long, double)] = vector();
            for i = 0, 9 do best[0] ^= D[i];
        "#;
        let interp = run(src, |it| {
            let d = vec![(0, (1, 5.0)), (1, (2, 1.5)), (2, (3, 9.0))]
                .into_iter()
                .map(|(i, (j, x))| {
                    Value::pair(
                        Value::Long(i),
                        Value::pair(Value::Long(j), Value::Double(x)),
                    )
                })
                .collect();
            it.bind_collection("D", d).unwrap();
        });
        assert_eq!(
            interp.collection("best").unwrap(),
            vec![Value::pair(
                Value::Long(0),
                Value::pair(Value::Long(2), Value::Double(1.5))
            )]
        );
    }

    #[test]
    fn step_counter_advances() {
        let interp = run("var x: long = 0; x += 1;", |_| {});
        assert!(interp.steps >= 2);
    }
}
