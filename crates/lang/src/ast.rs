//! Abstract syntax of the loop-based language (paper Fig. 1).
//!
//! The grammar distinguishes *destinations* (L-values) `d`, *expressions*
//! `e`, and *statements* `s`. Incremental updates `d ⊕= e` are kept separate
//! from plain assignments `d := e` because the whole translation scheme
//! hinges on that distinction (§3.5).

use diablo_runtime::{BinOp, Func, UnOp};

use crate::lexer::Span;
use crate::types::Type;

/// A constant literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer literal.
    Long(i64),
    /// Floating-point literal.
    Double(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
}

/// A destination (L-value), per Fig. 1:
/// `d ::= v | d.A | v[e1, ..., en]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Lhs {
    /// A variable.
    Var(String),
    /// A record projection `d.A` (or tuple projection `d._1`).
    Proj(Box<Lhs>, String),
    /// Array indexing `v[e1, ..., en]`. The grammar restricts the base of an
    /// index to a variable (no nested arrays).
    Index(String, Vec<Expr>),
}

impl Lhs {
    /// The root variable name of this destination.
    pub fn base_var(&self) -> &str {
        match self {
            Lhs::Var(v) => v,
            Lhs::Proj(d, _) => d.base_var(),
            Lhs::Index(v, _) => v,
        }
    }

    /// All index expressions appearing in the destination.
    pub fn index_exprs(&self) -> Vec<&Expr> {
        match self {
            Lhs::Var(_) => Vec::new(),
            Lhs::Proj(d, _) => d.index_exprs(),
            Lhs::Index(_, es) => es.iter().collect(),
        }
    }
}

/// An expression, per Fig. 1 (with builtin function calls as a convenience).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A destination read (variable, projection, or array access).
    Dest(Lhs),
    /// A constant.
    Const(Const),
    /// A binary operation `e1 ⋆ e2`.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// A builtin function call, e.g. `sqrt(x)`.
    Call(Func, Vec<Expr>),
    /// Tuple construction `(e1, ..., en)`.
    Tuple(Vec<Expr>),
    /// Record construction `<| A1 = e1, ..., An = en |>`.
    Record(Vec<(String, Expr)>),
}

impl Expr {
    /// Convenience constructor for a variable read.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Dest(Lhs::Var(name.into()))
    }

    /// Convenience constructor for an integer literal.
    pub fn long(n: i64) -> Expr {
        Expr::Const(Const::Long(n))
    }

    /// Collects every variable name read by the expression (both scalar
    /// reads and the base names of array accesses), pre-order.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Dest(d) => d.free_vars(out),
            Expr::Const(_) => {}
            Expr::Bin(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::Un(_, a) => a.free_vars(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
            Expr::Tuple(fields) => {
                for f in fields {
                    f.free_vars(out);
                }
            }
            Expr::Record(fields) => {
                for (_, f) in fields {
                    f.free_vars(out);
                }
            }
        }
    }

    /// Collects every destination (L-value) read inside the expression —
    /// the readers set R⟦e⟧ of §3.2.
    pub fn destinations(&self, out: &mut Vec<Lhs>) {
        match self {
            Expr::Dest(d) => {
                out.push(d.clone());
                for e in d.index_exprs() {
                    e.destinations(out);
                }
            }
            Expr::Const(_) => {}
            Expr::Bin(_, a, b) => {
                a.destinations(out);
                b.destinations(out);
            }
            Expr::Un(_, a) => a.destinations(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.destinations(out);
                }
            }
            Expr::Tuple(fields) => {
                for f in fields {
                    f.destinations(out);
                }
            }
            Expr::Record(fields) => {
                for (_, f) in fields {
                    f.destinations(out);
                }
            }
        }
    }
}

impl Lhs {
    /// Collects variable names read by this destination when used as an
    /// expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Lhs::Var(v) => out.push(v.clone()),
            Lhs::Proj(d, _) => d.free_vars(out),
            Lhs::Index(v, es) => {
                out.push(v.clone());
                for e in es {
                    e.free_vars(out);
                }
            }
        }
    }
}

/// A statement, per Fig. 1.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Incremental update `d ⊕= e` for a commutative `⊕`.
    Incr {
        dest: Lhs,
        op: BinOp,
        value: Expr,
        span: Span,
    },
    /// Plain assignment `d := e`.
    Assign { dest: Lhs, value: Expr, span: Span },
    /// Variable declaration `var v: t = e`. Not allowed inside for-loops.
    Decl {
        name: String,
        ty: Type,
        init: DeclInit,
        span: Span,
    },
    /// Range iteration `for v = e1, e2 do s` (inclusive bounds).
    For {
        var: String,
        lo: Expr,
        hi: Expr,
        body: Box<Stmt>,
        span: Span,
    },
    /// Collection traversal `for v in e do s`; `v` ranges over the *values*
    /// of the collection (rule (15e)).
    ForIn {
        var: String,
        source: Expr,
        body: Box<Stmt>,
        span: Span,
    },
    /// While loop (always sequential).
    While {
        cond: Expr,
        body: Box<Stmt>,
        span: Span,
    },
    /// Conditional.
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
        span: Span,
    },
    /// Statement block `{ s1; ...; sn }`.
    Block(Vec<Stmt>),
}

impl Stmt {
    /// The source span of the statement (blocks report their first child).
    pub fn span(&self) -> Span {
        match self {
            Stmt::Incr { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::Decl { span, .. }
            | Stmt::For { span, .. }
            | Stmt::ForIn { span, .. }
            | Stmt::While { span, .. }
            | Stmt::If { span, .. } => *span,
            Stmt::Block(ss) => ss.first().map_or(Span::SYNTH, Stmt::span),
        }
    }
}

/// Initializer of a `var` declaration: either a scalar expression or an
/// empty collection constructor (`vector()`, `matrix()`, `map()`).
#[derive(Debug, Clone, PartialEq)]
pub enum DeclInit {
    /// A scalar initializer expression.
    Expr(Expr),
    /// An empty collection of the declared type.
    EmptyCollection,
}

/// A whole program: `input` declarations for free variables bound by the
/// driver, followed by statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Input bindings `(name, type)` the driver must provide.
    pub inputs: Vec<(String, Type)>,
    /// The program body.
    pub body: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_var_walks_through_projections() {
        let d = Lhs::Proj(
            Box::new(Lhs::Index("A".into(), vec![Expr::var("i")])),
            "K".into(),
        );
        assert_eq!(d.base_var(), "A");
        assert_eq!(d.index_exprs().len(), 1);
    }

    #[test]
    fn free_vars_of_nested_expression() {
        // V[W[i]] reads V, W, i.
        let e = Expr::Dest(Lhs::Index(
            "V".into(),
            vec![Expr::Dest(Lhs::Index("W".into(), vec![Expr::var("i")]))],
        ));
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(
            vars,
            vec!["V".to_string(), "W".to_string(), "i".to_string()]
        );
    }

    #[test]
    fn destinations_include_nested_reads() {
        // n * C[i] reads n and C[i] (and i through the index).
        let e = Expr::Bin(
            diablo_runtime::BinOp::Mul,
            Box::new(Expr::var("n")),
            Box::new(Expr::Dest(Lhs::Index("C".into(), vec![Expr::var("i")]))),
        );
        let mut ds = Vec::new();
        e.destinations(&mut ds);
        assert_eq!(ds.len(), 3); // n, C[i], i
    }
}
