//! Hand-written lexer for the loop-based language.
//!
//! Produces a flat vector of [`Token`]s with line/column [`Span`]s. Supports
//! `//` line comments and `/* ... */` block comments.

use crate::{LangError, Result};

pub use diablo_diag::Span;

/// The kind of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal.
    Long(i64),
    /// A floating-point literal.
    Double(f64),
    /// A string literal (unescaped contents).
    Str(String),
    /// `:=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `*=`
    StarAssign,
    /// `^=`
    CaretAssign,
    /// `&&=`
    AndAssign,
    /// `||=`
    OrAssign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<=`
    LessEq,
    /// `>=`
    GreaterEq,
    /// `<`
    Less,
    /// `>`
    Greater,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `<|`
    RecOpen,
    /// `|>`
    RecClose,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Long(n) => format!("`{n}`"),
            TokenKind::Double(x) => format!("`{x}`"),
            TokenKind::Str(s) => format!("{s:?}"),
            TokenKind::Eof => "end of input".to_string(),
            k => format!("`{}`", k.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::Assign => ":=",
            TokenKind::PlusAssign => "+=",
            TokenKind::StarAssign => "*=",
            TokenKind::CaretAssign => "^=",
            TokenKind::AndAssign => "&&=",
            TokenKind::OrAssign => "||=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::LessEq => "<=",
            TokenKind::GreaterEq => ">=",
            TokenKind::Less => "<",
            TokenKind::Greater => ">",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Bang => "!",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Caret => "^",
            TokenKind::RecOpen => "<|",
            TokenKind::RecClose => "|>",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::Eq => "=",
            _ => "?",
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token it is.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

/// The lexer. Construct with [`Lexer::new`] and call [`Lexer::tokenize`].
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over the source text.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(LangError::new("unterminated block comment", start))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token> {
        let span = self.span();
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_double = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_double = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let save = (self.pos, self.line, self.col);
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_double = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                (self.pos, self.line, self.col) = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| LangError::new("invalid UTF-8 in number", span))?;
        let kind = if is_double {
            TokenKind::Double(
                text.parse::<f64>()
                    .map_err(|e| LangError::new(format!("bad float literal: {e}"), span))?,
            )
        } else {
            TokenKind::Long(
                text.parse::<i64>()
                    .map_err(|e| LangError::new(format!("bad integer literal: {e}"), span))?,
            )
        };
        Ok(Token { kind, span })
    }

    fn lex_ident(&mut self) -> Token {
        let span = self.span();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'\'')
        {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        Token {
            kind: TokenKind::Ident(text.to_string()),
            span,
        }
    }

    fn lex_string(&mut self) -> Result<Token> {
        let span = self.span();
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    other => {
                        return Err(LangError::new(
                            format!(
                                "bad escape sequence `\\{}`",
                                other.map(char::from).unwrap_or(' ')
                            ),
                            span,
                        ))
                    }
                },
                Some(c) => out.push(char::from(c)),
                None => return Err(LangError::new("unterminated string literal", span)),
            }
        }
        Ok(Token {
            kind: TokenKind::Str(out),
            span,
        })
    }

    /// Tokenizes the whole input, appending an [`TokenKind::Eof`] token.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(tokens);
            };
            let tok = match c {
                b'0'..=b'9' => self.lex_number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
                b'"' => self.lex_string()?,
                _ => {
                    // Operators and punctuation; longest match first.
                    let two = [c, self.peek2().unwrap_or(0)];
                    let three = [
                        c,
                        self.peek2().unwrap_or(0),
                        self.src.get(self.pos + 2).copied().unwrap_or(0),
                    ];
                    let (kind, len) = match &three {
                        b"&&=" => (TokenKind::AndAssign, 3),
                        b"||=" => (TokenKind::OrAssign, 3),
                        _ => match &two {
                            b":=" => (TokenKind::Assign, 2),
                            b"+=" => (TokenKind::PlusAssign, 2),
                            b"*=" => (TokenKind::StarAssign, 2),
                            b"^=" => (TokenKind::CaretAssign, 2),
                            b"==" => (TokenKind::EqEq, 2),
                            b"!=" => (TokenKind::NotEq, 2),
                            b"<=" => (TokenKind::LessEq, 2),
                            b">=" => (TokenKind::GreaterEq, 2),
                            b"&&" => (TokenKind::AndAnd, 2),
                            b"||" => (TokenKind::OrOr, 2),
                            b"<|" => (TokenKind::RecOpen, 2),
                            b"|>" => (TokenKind::RecClose, 2),
                            _ => match c {
                                b'<' => (TokenKind::Less, 1),
                                b'>' => (TokenKind::Greater, 1),
                                b'!' => (TokenKind::Bang, 1),
                                b'+' => (TokenKind::Plus, 1),
                                b'-' => (TokenKind::Minus, 1),
                                b'*' => (TokenKind::Star, 1),
                                b'/' => (TokenKind::Slash, 1),
                                b'%' => (TokenKind::Percent, 1),
                                b'^' => (TokenKind::Caret, 1),
                                b'(' => (TokenKind::LParen, 1),
                                b')' => (TokenKind::RParen, 1),
                                b'[' => (TokenKind::LBracket, 1),
                                b']' => (TokenKind::RBracket, 1),
                                b'{' => (TokenKind::LBrace, 1),
                                b'}' => (TokenKind::RBrace, 1),
                                b',' => (TokenKind::Comma, 1),
                                b';' => (TokenKind::Semi, 1),
                                b':' => (TokenKind::Colon, 1),
                                b'.' => (TokenKind::Dot, 1),
                                b'=' => (TokenKind::Eq, 1),
                                other => {
                                    return Err(LangError::new(
                                        format!("unexpected character `{}`", char::from(other)),
                                        span,
                                    ))
                                }
                            },
                        },
                    };
                    for _ in 0..len {
                        self.bump();
                    }
                    Token { kind, span }
                }
            };
            tokens.push(tok);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_assignment_operators() {
        assert_eq!(
            kinds("x := 1; y += 2; z *= 3; w ^= 4; b &&= c; d ||= e;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Long(1),
                TokenKind::Semi,
                TokenKind::Ident("y".into()),
                TokenKind::PlusAssign,
                TokenKind::Long(2),
                TokenKind::Semi,
                TokenKind::Ident("z".into()),
                TokenKind::StarAssign,
                TokenKind::Long(3),
                TokenKind::Semi,
                TokenKind::Ident("w".into()),
                TokenKind::CaretAssign,
                TokenKind::Long(4),
                TokenKind::Semi,
                TokenKind::Ident("b".into()),
                TokenKind::AndAssign,
                TokenKind::Ident("c".into()),
                TokenKind::Semi,
                TokenKind::Ident("d".into()),
                TokenKind::OrAssign,
                TokenKind::Ident("e".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("0 42 3.5 0.002 1e3 2.5e-2"),
            vec![
                TokenKind::Long(0),
                TokenKind::Long(42),
                TokenKind::Double(3.5),
                TokenKind::Double(0.002),
                TokenKind::Double(1000.0),
                TokenKind::Double(0.025),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dot_after_number_is_projection_when_not_digit() {
        // `A[i].K`-style projections must not swallow the dot.
        assert_eq!(
            kinds("1.K"),
            vec![
                TokenKind::Long(1),
                TokenKind::Dot,
                TokenKind::Ident("K".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn record_brackets_and_comparison() {
        assert_eq!(
            kinds("<| x = 1 |> a < b"),
            vec![
                TokenKind::RecOpen,
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Long(1),
                TokenKind::RecClose,
                TokenKind::Ident("a".into()),
                TokenKind::Less,
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn single_pipe_is_an_error() {
        assert!(Lexer::new("a | b").tokenize().is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\n b /* multi\n line */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(Lexer::new("/* nope").tokenize().is_err());
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""key1" "a\nb""#),
            vec![
                TokenKind::Str("key1".into()),
                TokenKind::Str("a\nb".into()),
                TokenKind::Eof
            ]
        );
        assert!(Lexer::new("\"open").tokenize().is_err());
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!((toks[0].span.line, toks[0].span.col), (1, 1));
        assert_eq!((toks[1].span.line, toks[1].span.col), (2, 3));
    }

    #[test]
    fn primed_identifiers_allowed() {
        // The matrix-factorization program of §3.2 uses P' and Q'.
        assert_eq!(
            kinds("P' Q'"),
            vec![
                TokenKind::Ident("P'".into()),
                TokenKind::Ident("Q'".into()),
                TokenKind::Eof
            ]
        );
    }
}
