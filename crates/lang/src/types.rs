//! The type language and type checker.
//!
//! Types follow Fig. 1: basic types, parametric collection types
//! (`vector[t]`, `matrix[t]`, `map[k, v]`), tuple types, and record types.
//! Nested arrays (e.g. vectors of vectors) are not allowed, matching the
//! paper's simplification (§3.1).
//!
//! Beyond checking, [`typecheck`] also establishes the invariant required by
//! the dependence analysis of §3.2: *every for-loop has a distinct loop
//! index variable*. Clashing loop indexes are renamed (`i` → `i_2`).

use std::collections::{HashMap, HashSet};

use crate::ast::{Const, DeclInit, Expr, Lhs, Program, Stmt};
use crate::lexer::Span;
use crate::{LangError, Result};
use diablo_diag::{codes, Diagnostic, Diagnostics};
use diablo_runtime::{BinOp, Func, UnOp};

/// A type of the loop-based language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `bool`
    Bool,
    /// `long` (also accepted under the spelling `int`)
    Long,
    /// `double` (also accepted under the spelling `float`)
    Double,
    /// `string`
    Str,
    /// `vector[t]` — sparse vector indexed by `long`.
    Vector(Box<Type>),
    /// `matrix[t]` — sparse matrix indexed by `(long, long)`.
    Matrix(Box<Type>),
    /// `map[k, v]` — key-value map with arbitrary key type.
    Map(Box<Type>, Box<Type>),
    /// Tuple type `(t1, ..., tn)`.
    Tuple(Vec<Type>),
    /// Record type `<| A1: t1, ..., An: tn |>`.
    Record(Vec<(String, Type)>),
}

impl Type {
    /// True for collection types (vectors, matrices, maps).
    pub fn is_collection(&self) -> bool {
        matches!(self, Type::Vector(_) | Type::Matrix(_) | Type::Map(_, _))
    }

    /// True for numeric scalar types.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Long | Type::Double)
    }

    /// The element (value) type of a collection.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Vector(t) | Type::Matrix(t) => Some(t),
            Type::Map(_, v) => Some(v),
            _ => None,
        }
    }

    /// The key type of a collection: `long` for vectors, `(long, long)` for
    /// matrices, `k` for maps.
    pub fn key_type(&self) -> Option<Type> {
        match self {
            Type::Vector(_) => Some(Type::Long),
            Type::Matrix(_) => Some(Type::Tuple(vec![Type::Long, Type::Long])),
            Type::Map(k, _) => Some((**k).clone()),
            _ => None,
        }
    }

    /// Number of index expressions an access to this collection takes.
    pub fn index_arity(&self) -> Option<usize> {
        match self {
            Type::Vector(_) | Type::Map(_, _) => Some(1),
            Type::Matrix(_) => Some(2),
            _ => None,
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Long => write!(f, "long"),
            Type::Double => write!(f, "double"),
            Type::Str => write!(f, "string"),
            Type::Vector(t) => write!(f, "vector[{t}]"),
            Type::Matrix(t) => write!(f, "matrix[{t}]"),
            Type::Map(k, v) => write!(f, "map[{k}, {v}]"),
            Type::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Type::Record(fields) => {
                write!(f, "<|")?;
                for (i, (n, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                write!(f, "|>")
            }
        }
    }
}

/// `true` if a value of type `src` may be stored into a location of type
/// `dst` (allowing the `long → double` promotion, recursively through
/// tuples and records).
pub fn assignable(dst: &Type, src: &Type) -> bool {
    match (dst, src) {
        (Type::Double, Type::Long) => true,
        (Type::Tuple(a), Type::Tuple(b)) => {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| assignable(x, y))
        }
        (Type::Record(a), Type::Record(b)) => {
            a.len() == b.len()
                && a.iter()
                    .zip(b)
                    .all(|((n, x), (m, y))| n == m && assignable(x, y))
        }
        _ => dst == src,
    }
}

/// The least upper bound of two numeric types, if both are numeric.
fn join_numeric(a: &Type, b: &Type) -> Option<Type> {
    match (a, b) {
        (Type::Long, Type::Long) => Some(Type::Long),
        (Type::Long, Type::Double) | (Type::Double, Type::Long) | (Type::Double, Type::Double) => {
            Some(Type::Double)
        }
        _ => None,
    }
}

/// A type-checked program.
#[derive(Debug, Clone)]
pub struct TypedProgram {
    /// The program, with loop indexes renamed to be globally distinct.
    pub program: Program,
    /// The type of every variable (inputs, declarations, loop indexes).
    pub var_types: HashMap<String, Type>,
    /// The set of loop-index variables.
    pub loop_vars: HashSet<String>,
}

impl TypedProgram {
    /// The declared or inferred type of a variable.
    pub fn type_of(&self, name: &str) -> Option<&Type> {
        self.var_types.get(name)
    }

    /// True if `name` is bound as a loop index somewhere in the program.
    pub fn is_loop_var(&self, name: &str) -> bool {
        self.loop_vars.contains(name)
    }

    /// True if the variable holds a collection.
    pub fn is_collection(&self, name: &str) -> bool {
        self.type_of(name).is_some_and(Type::is_collection)
    }
}

struct Checker {
    var_types: HashMap<String, Type>,
    loop_vars: HashSet<String>,
    /// Names ever introduced, for fresh-name generation.
    used: HashSet<String>,
}

impl Checker {
    fn fresh(&mut self, base: &str) -> String {
        if !self.used.contains(base) {
            self.used.insert(base.to_string());
            return base.to_string();
        }
        let mut k = 2;
        loop {
            let cand = format!("{base}_{k}");
            if !self.used.contains(&cand) {
                self.used.insert(cand.clone());
                return cand;
            }
            k += 1;
        }
    }

    fn lookup(&self, name: &str, span: Span) -> Result<Type> {
        self.var_types
            .get(name)
            .cloned()
            .ok_or_else(|| LangError::new(format!("undefined variable `{name}`"), span))
    }

    fn type_of_lhs(&self, d: &Lhs, span: Span) -> Result<Type> {
        match d {
            Lhs::Var(v) => self.lookup(v, span),
            Lhs::Proj(base, field) => {
                let t = self.type_of_lhs(base, span)?;
                project(&t, field)
                    .ok_or_else(|| LangError::new(format!("type {t} has no field `{field}`"), span))
            }
            Lhs::Index(v, idxs) => {
                let t = self.lookup(v, span)?;
                let arity = t.index_arity().ok_or_else(|| {
                    LangError::new(format!("`{v}` of type {t} cannot be indexed"), span)
                })?;
                if idxs.len() != arity {
                    return Err(LangError::new(
                        format!("`{v}` expects {arity} index(es), got {}", idxs.len()),
                        span,
                    ));
                }
                match &t {
                    Type::Vector(elem) | Type::Matrix(elem) => {
                        for e in idxs {
                            let it = self.type_of_expr(e, span)?;
                            if it != Type::Long {
                                return Err(LangError::new(
                                    format!("array index must be long, got {it}"),
                                    span,
                                ));
                            }
                        }
                        Ok((**elem).clone())
                    }
                    Type::Map(k, v) => {
                        let it = self.type_of_expr(&idxs[0], span)?;
                        if !assignable(k, &it) {
                            return Err(LangError::new(
                                format!("map key must be {k}, got {it}"),
                                span,
                            ));
                        }
                        Ok((**v).clone())
                    }
                    _ => unreachable!("index_arity returned Some"),
                }
            }
        }
    }

    fn type_of_expr(&self, e: &Expr, span: Span) -> Result<Type> {
        match e {
            Expr::Dest(d) => self.type_of_lhs(d, span),
            Expr::Const(c) => Ok(match c {
                Const::Long(_) => Type::Long,
                Const::Double(_) => Type::Double,
                Const::Bool(_) => Type::Bool,
                Const::Str(_) => Type::Str,
            }),
            Expr::Bin(op, a, b) => {
                let ta = self.type_of_expr(a, span)?;
                let tb = self.type_of_expr(b, span)?;
                self.type_of_binop(*op, &ta, &tb, span)
            }
            Expr::Un(op, a) => {
                let t = self.type_of_expr(a, span)?;
                match op {
                    UnOp::Neg if t.is_numeric() => Ok(t),
                    UnOp::Not if t == Type::Bool => Ok(Type::Bool),
                    UnOp::Neg => Err(LangError::new(format!("cannot negate {t}"), span)),
                    UnOp::Not => Err(LangError::new(format!("cannot apply ! to {t}"), span)),
                }
            }
            Expr::Call(f, args) => {
                if args.len() != f.arity() {
                    return Err(LangError::new(
                        format!(
                            "{} expects {} argument(s), got {}",
                            f.name(),
                            f.arity(),
                            args.len()
                        ),
                        span,
                    ));
                }
                let mut tys = Vec::with_capacity(args.len());
                for a in args {
                    tys.push(self.type_of_expr(a, span)?);
                }
                for t in &tys {
                    if !t.is_numeric() {
                        return Err(LangError::new(
                            format!("{} expects numeric arguments, got {t}", f.name()),
                            span,
                        ));
                    }
                }
                Ok(match f {
                    Func::Abs => tys[0].clone(),
                    Func::ToLong => Type::Long,
                    Func::InRange => Type::Bool,
                    _ => Type::Double,
                })
            }
            Expr::Tuple(fields) => {
                let tys = fields
                    .iter()
                    .map(|f| self.type_of_expr(f, span))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Type::Tuple(tys))
            }
            Expr::Record(fields) => {
                let tys = fields
                    .iter()
                    .map(|(n, f)| Ok((n.clone(), self.type_of_expr(f, span)?)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Type::Record(tys))
            }
        }
    }

    fn type_of_binop(&self, op: BinOp, ta: &Type, tb: &Type, span: Span) -> Result<Type> {
        use BinOp::*;
        let err = || {
            Err(LangError::new(
                format!(
                    "operator `{}` cannot be applied to {ta} and {tb}",
                    op.symbol()
                ),
                span,
            ))
        };
        match op {
            Add => {
                if let Some(t) = join_numeric(ta, tb) {
                    return Ok(t);
                }
                // Element-wise tuple addition (the K-Means accumulator).
                if let (Type::Tuple(xs), Type::Tuple(ys)) = (ta, tb) {
                    if xs.len() == ys.len() {
                        let fields = xs
                            .iter()
                            .zip(ys)
                            .map(|(x, y)| {
                                join_numeric(x, y).ok_or_else(|| {
                                    LangError::new(
                                        format!("cannot add tuple fields {x} and {y}"),
                                        span,
                                    )
                                })
                            })
                            .collect::<Result<Vec<_>>>()?;
                        return Ok(Type::Tuple(fields));
                    }
                }
                err()
            }
            Sub | Mul | Div | Mod | Min | Max => join_numeric(ta, tb).map_or_else(err, Ok),
            Eq | Ne => {
                if ta == tb || join_numeric(ta, tb).is_some() {
                    Ok(Type::Bool)
                } else {
                    err()
                }
            }
            Lt | Le | Gt | Ge => {
                if join_numeric(ta, tb).is_some() || (ta == &Type::Str && tb == &Type::Str) {
                    Ok(Type::Bool)
                } else {
                    err()
                }
            }
            And | Or => {
                if ta == &Type::Bool && tb == &Type::Bool {
                    Ok(Type::Bool)
                } else {
                    err()
                }
            }
            ArgMin => {
                // `^` works over pairs whose second component is numeric.
                match (ta, tb) {
                    (Type::Tuple(xs), Type::Tuple(ys))
                        if xs.len() == 2 && xs == ys && xs[1].is_numeric() =>
                    {
                        Ok(ta.clone())
                    }
                    _ => err(),
                }
            }
        }
    }

    fn check_stmt(&mut self, s: Stmt, loop_depth: usize) -> Result<Stmt> {
        match s {
            Stmt::Decl {
                name,
                ty,
                init,
                span,
            } => {
                if loop_depth > 0 {
                    // Structurally a restriction violation, not a type
                    // mismatch, so it keeps its own stable code even
                    // though the check lives in the type phase.
                    return Err(LangError::new(
                        format!(
                            "`var {name}` declarations cannot appear inside for-loops (Fig. 1)"
                        ),
                        span,
                    )
                    .with_code(codes::DECL_IN_LOOP));
                }
                match &init {
                    DeclInit::EmptyCollection => {
                        if !ty.is_collection() {
                            return Err(LangError::new(
                                format!("empty-collection initializer requires a collection type, `{name}` has type {ty}"),
                                span,
                            ));
                        }
                    }
                    DeclInit::Expr(e) => {
                        let it = self.type_of_expr(e, span)?;
                        if !assignable(&ty, &it) {
                            return Err(LangError::new(
                                format!("`{name}` declared {ty} but initialized with {it}"),
                                span,
                            ));
                        }
                    }
                }
                if self.used.contains(&name) {
                    return Err(LangError::new(format!("`{name}` is declared twice"), span));
                }
                self.used.insert(name.clone());
                self.var_types.insert(name.clone(), ty.clone());
                Ok(Stmt::Decl {
                    name,
                    ty,
                    init,
                    span,
                })
            }
            Stmt::Assign { dest, value, span } => {
                self.check_write(&dest, span)?;
                let td = self.type_of_lhs(&dest, span)?;
                let tv = self.type_of_expr(&value, span)?;
                if !assignable(&td, &tv) {
                    return Err(LangError::new(
                        format!("cannot assign {tv} to destination of type {td}"),
                        span,
                    ));
                }
                Ok(Stmt::Assign { dest, value, span })
            }
            Stmt::Incr {
                dest,
                op,
                value,
                span,
            } => {
                if !op.is_commutative() {
                    return Err(LangError::new(
                        format!(
                            "incremental updates require a commutative operation, `{}` is not (§3.5)",
                            op.symbol()
                        ),
                        span,
                    ));
                }
                self.check_write(&dest, span)?;
                let td = self.type_of_lhs(&dest, span)?;
                let tv = self.type_of_expr(&value, span)?;
                let tr = self.type_of_binop(op, &td, &tv, span)?;
                if !assignable(&td, &tr) {
                    return Err(LangError::new(
                        format!(
                            "`{}=` would store {tr} into destination of type {td}",
                            op.symbol()
                        ),
                        span,
                    ));
                }
                Ok(Stmt::Incr {
                    dest,
                    op,
                    value,
                    span,
                })
            }
            Stmt::For {
                var,
                lo,
                hi,
                body,
                span,
            } => {
                for (side, e) in [("lower", &lo), ("upper", &hi)] {
                    let t = self.type_of_expr(e, span)?;
                    if t != Type::Long {
                        return Err(LangError::new(
                            format!("{side} bound of for-loop must be long, got {t}"),
                            span,
                        ));
                    }
                }
                let fresh = self.fresh(&var);
                let body = if fresh != var {
                    rename_var(*body, &var, &fresh)
                } else {
                    *body
                };
                self.var_types.insert(fresh.clone(), Type::Long);
                self.loop_vars.insert(fresh.clone());
                let body = self.check_stmt(body, loop_depth + 1)?;
                Ok(Stmt::For {
                    var: fresh,
                    lo,
                    hi,
                    body: Box::new(body),
                    span,
                })
            }
            Stmt::ForIn {
                var,
                source,
                body,
                span,
            } => {
                let ts = self.type_of_expr(&source, span)?;
                let elem = ts
                    .element()
                    .ok_or_else(|| {
                        LangError::new(
                            format!("for-in source must be a collection, got {ts}"),
                            span,
                        )
                    })?
                    .clone();
                let fresh = self.fresh(&var);
                let body = if fresh != var {
                    rename_var(*body, &var, &fresh)
                } else {
                    *body
                };
                self.var_types.insert(fresh.clone(), elem);
                self.loop_vars.insert(fresh.clone());
                let body = self.check_stmt(body, loop_depth + 1)?;
                Ok(Stmt::ForIn {
                    var: fresh,
                    source,
                    body: Box::new(body),
                    span,
                })
            }
            Stmt::While { cond, body, span } => {
                let t = self.type_of_expr(&cond, span)?;
                if t != Type::Bool {
                    return Err(LangError::new(
                        format!("while condition must be bool, got {t}"),
                        span,
                    ));
                }
                let body = self.check_stmt(*body, loop_depth)?;
                Ok(Stmt::While {
                    cond,
                    body: Box::new(body),
                    span,
                })
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let t = self.type_of_expr(&cond, span)?;
                if t != Type::Bool {
                    return Err(LangError::new(
                        format!("if condition must be bool, got {t}"),
                        span,
                    ));
                }
                let then_branch = Box::new(self.check_stmt(*then_branch, loop_depth)?);
                let else_branch = match else_branch {
                    Some(b) => Some(Box::new(self.check_stmt(*b, loop_depth)?)),
                    None => None,
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                })
            }
            Stmt::Block(ss) => {
                let ss = ss
                    .into_iter()
                    .map(|s| self.check_stmt(s, loop_depth))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Stmt::Block(ss))
            }
        }
    }

    fn check_write(&self, dest: &Lhs, span: Span) -> Result<()> {
        let base = dest.base_var();
        if self.loop_vars.contains(base) {
            return Err(LangError::new(
                format!("cannot assign to loop index `{base}`"),
                span,
            ));
        }
        Ok(())
    }
}

/// Looks up a field `A` (or tuple position `_k`) in a record/tuple type.
fn project(t: &Type, field: &str) -> Option<Type> {
    match t {
        Type::Record(fields) => fields
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, t)| t.clone()),
        Type::Tuple(ts) => {
            let idx: usize = field.strip_prefix('_')?.parse().ok()?;
            ts.get(idx.checked_sub(1)?).cloned()
        }
        _ => None,
    }
}

/// Renames free occurrences of variable `from` to `to` in a statement,
/// stopping at inner binders that rebind `from`.
pub fn rename_var(s: Stmt, from: &str, to: &str) -> Stmt {
    match s {
        Stmt::Incr {
            dest,
            op,
            value,
            span,
        } => Stmt::Incr {
            dest: rename_lhs(dest, from, to),
            op,
            value: rename_expr(value, from, to),
            span,
        },
        Stmt::Assign { dest, value, span } => Stmt::Assign {
            dest: rename_lhs(dest, from, to),
            value: rename_expr(value, from, to),
            span,
        },
        Stmt::Decl {
            name,
            ty,
            init,
            span,
        } => Stmt::Decl {
            name,
            ty,
            init: match init {
                DeclInit::Expr(e) => DeclInit::Expr(rename_expr(e, from, to)),
                other => other,
            },
            span,
        },
        Stmt::For {
            var,
            lo,
            hi,
            body,
            span,
        } => {
            let lo = rename_expr(lo, from, to);
            let hi = rename_expr(hi, from, to);
            let body = if var == from {
                body
            } else {
                Box::new(rename_var(*body, from, to))
            };
            Stmt::For {
                var,
                lo,
                hi,
                body,
                span,
            }
        }
        Stmt::ForIn {
            var,
            source,
            body,
            span,
        } => {
            let source = rename_expr(source, from, to);
            let body = if var == from {
                body
            } else {
                Box::new(rename_var(*body, from, to))
            };
            Stmt::ForIn {
                var,
                source,
                body,
                span,
            }
        }
        Stmt::While { cond, body, span } => Stmt::While {
            cond: rename_expr(cond, from, to),
            body: Box::new(rename_var(*body, from, to)),
            span,
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => Stmt::If {
            cond: rename_expr(cond, from, to),
            then_branch: Box::new(rename_var(*then_branch, from, to)),
            else_branch: else_branch.map(|b| Box::new(rename_var(*b, from, to))),
            span,
        },
        Stmt::Block(ss) => Stmt::Block(ss.into_iter().map(|s| rename_var(s, from, to)).collect()),
    }
}

fn rename_lhs(d: Lhs, from: &str, to: &str) -> Lhs {
    match d {
        Lhs::Var(v) => Lhs::Var(if v == from { to.to_string() } else { v }),
        Lhs::Proj(base, f) => Lhs::Proj(Box::new(rename_lhs(*base, from, to)), f),
        Lhs::Index(v, idxs) => Lhs::Index(
            if v == from { to.to_string() } else { v },
            idxs.into_iter().map(|e| rename_expr(e, from, to)).collect(),
        ),
    }
}

fn rename_expr(e: Expr, from: &str, to: &str) -> Expr {
    match e {
        Expr::Dest(d) => Expr::Dest(rename_lhs(d, from, to)),
        Expr::Const(c) => Expr::Const(c),
        Expr::Bin(op, a, b) => Expr::Bin(
            op,
            Box::new(rename_expr(*a, from, to)),
            Box::new(rename_expr(*b, from, to)),
        ),
        Expr::Un(op, a) => Expr::Un(op, Box::new(rename_expr(*a, from, to))),
        Expr::Call(f, args) => Expr::Call(
            f,
            args.into_iter().map(|a| rename_expr(a, from, to)).collect(),
        ),
        Expr::Tuple(fs) => Expr::Tuple(fs.into_iter().map(|a| rename_expr(a, from, to)).collect()),
        Expr::Record(fs) => Expr::Record(
            fs.into_iter()
                .map(|(n, a)| (n, rename_expr(a, from, to)))
                .collect(),
        ),
    }
}

/// Type checks a parsed program and renames loop indexes to be distinct.
pub fn typecheck(program: Program) -> Result<TypedProgram> {
    let mut diags = Diagnostics::new();
    match typecheck_multi(program, &mut diags) {
        Some(tp) => Ok(tp),
        None => {
            let first = diags
                .first_error()
                .expect("typecheck_multi failed without errors");
            Err(LangError::new(first.message.clone(), first.span))
        }
    }
}

/// Type checks a parsed program, accumulating *every* type error into
/// `diags` at statement granularity instead of stopping at the first.
///
/// Returns `None` when any error was emitted. The first emitted error is
/// identical to the error [`typecheck`] reports.
pub fn typecheck_multi(program: Program, diags: &mut Diagnostics) -> Option<TypedProgram> {
    let mut checker = Checker {
        var_types: HashMap::new(),
        loop_vars: HashSet::new(),
        used: HashSet::new(),
    };
    let before = diags.error_count();
    for (name, ty) in &program.inputs {
        if checker.used.contains(name) {
            diags.emit(Diagnostic::error(
                codes::TYPE,
                format!("input `{name}` declared twice"),
                Span::SYNTH,
            ));
            continue;
        }
        checker.used.insert(name.clone());
        checker.var_types.insert(name.clone(), ty.clone());
    }
    let mut body = Vec::new();
    for s in program.body {
        let decl = match &s {
            Stmt::Decl { name, ty, .. } => Some((name.clone(), ty.clone())),
            _ => None,
        };
        match checker.check_stmt(s, 0) {
            Ok(s) => body.push(s),
            Err(e) => {
                diags.emit(e.into_diagnostic(codes::TYPE));
                // Register the declared variable anyway so later statements
                // that read it don't cascade into spurious unknown-variable
                // errors.
                if let Some((name, ty)) = decl {
                    if !checker.var_types.contains_key(&name) {
                        checker.used.insert(name.clone());
                        checker.var_types.insert(name, ty);
                    }
                }
            }
        }
    }
    if diags.error_count() > before {
        return None;
    }
    Some(TypedProgram {
        program: Program {
            inputs: program.inputs,
            body,
        },
        var_types: checker.var_types,
        loop_vars: checker.loop_vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<TypedProgram> {
        typecheck(parse(src)?)
    }

    #[test]
    fn typecheck_multi_reports_every_error() {
        let src = "var a: long = 0;\na := missing1;\na := missing2;\na += 1;\n";
        let mut diags = Diagnostics::new();
        assert!(typecheck_multi(parse(src).unwrap(), &mut diags).is_none());
        assert_eq!(diags.error_count(), 2, "{:?}", diags.into_vec());
    }

    #[test]
    fn typecheck_multi_registers_failed_decls() {
        // The decl's initializer is bad, but `v` must still be registered so
        // the next statement doesn't cascade an `undefined variable` error.
        let src = "var v: vector[long] = bogus;\nv[0] := 1;\n";
        let mut diags = Diagnostics::new();
        assert!(typecheck_multi(parse(src).unwrap(), &mut diags).is_none());
        assert_eq!(diags.error_count(), 1, "{:?}", diags.into_vec());
    }

    #[test]
    fn typecheck_multi_first_error_matches_typecheck() {
        let src = "var a: long = missing1;\na := missing2;\n";
        let err = typecheck(parse(src).unwrap()).unwrap_err();
        let mut diags = Diagnostics::new();
        typecheck_multi(parse(src).unwrap(), &mut diags);
        assert_eq!(diags.first_error().unwrap().message, err.message);
    }

    #[test]
    fn accepts_matrix_multiplication() {
        let src = r#"
            input M: matrix[double];
            input N: matrix[double];
            input d: long;
            var R: matrix[double] = matrix();
            for i = 0, d-1 do
              for j = 0, d-1 do {
                R[i, j] := 0.0;
                for k = 0, d-1 do
                  R[i, j] += M[i, k] * N[k, j];
              };
        "#;
        let tp = check(src).unwrap();
        assert!(tp.is_loop_var("i"));
        assert_eq!(tp.type_of("R"), Some(&Type::Matrix(Box::new(Type::Double))));
    }

    #[test]
    fn renames_duplicate_loop_indexes() {
        let src = r#"
            input V: vector[long];
            var a: long = 0;
            var b: long = 0;
            for i = 0, 9 do a += V[i];
            for i = 0, 9 do b += V[i];
        "#;
        let tp = check(src).unwrap();
        assert!(tp.is_loop_var("i"));
        assert!(
            tp.is_loop_var("i_2"),
            "second loop index renamed: {:?}",
            tp.loop_vars
        );
    }

    #[test]
    fn rejects_declarations_inside_loops() {
        let src = r#"
            input V: vector[long];
            for i = 0, 9 do { var x: long = 0; x += V[i]; };
        "#;
        let err = check(src).unwrap_err();
        assert!(
            err.message.contains("cannot appear inside for-loops"),
            "{err}"
        );
    }

    #[test]
    fn rejects_wrong_index_arity() {
        let src = r#"
            input M: matrix[double];
            var x: double = 0.0;
            x := M[3];
        "#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("expects 2 index(es)"), "{err}");
    }

    #[test]
    fn rejects_noncommutative_incremental_ops() {
        let src = r#"
            var x: double = 0.0;
            x := x - 1.0;
        "#;
        // Parsed as a plain assignment (the desugaring only fires for
        // commutative ops), and a plain scalar assignment is fine here.
        assert!(check(src).is_ok());
    }

    #[test]
    fn rejects_assigning_to_loop_index() {
        let src = r#"
            input V: vector[long];
            for i = 0, 9 do i := V[i];
        "#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("loop index"), "{err}");
    }

    #[test]
    fn rejects_bool_bounds() {
        let src = "for i = true, 9 do i += 1;";
        let err = check(src).unwrap_err();
        assert!(err.message.contains("must be long"), "{err}");
    }

    #[test]
    fn map_keys_may_be_strings() {
        let src = r#"
            input words: vector[string];
            var C: map[string, long] = map();
            for w in words do C[w] += 1;
        "#;
        let tp = check(src).unwrap();
        assert_eq!(tp.type_of("w"), Some(&Type::Str));
    }

    #[test]
    fn tuple_projection_is_one_based() {
        let src = r#"
            input P: vector[(double, double)];
            var s: double = 0.0;
            for p in P do s += p._1;
        "#;
        assert!(check(src).is_ok());
        let bad = r#"
            input P: vector[(double, double)];
            var s: double = 0.0;
            for p in P do s += p._3;
        "#;
        assert!(check(bad).is_err());
    }

    #[test]
    fn argmin_type_checks_on_pairs() {
        let src = r#"
            input D: vector[(long, double)];
            var best: vector[(long, double)] = vector();
            for i = 0, 9 do best[0] ^= D[i];
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn record_field_types() {
        let src = r#"
            input A: vector[<|K: long, V: double|>];
            var C: vector[double] = vector();
            for i = 0, 9 do C[A[i].K] += A[i].V;
        "#;
        assert!(check(src).is_ok());
        let bad = r#"
            input A: vector[<|K: long, V: double|>];
            var C: vector[double] = vector();
            for i = 0, 9 do C[A[i].Z] += A[i].V;
        "#;
        assert!(check(bad).is_err());
    }

    #[test]
    fn undefined_variables_are_reported() {
        let err = check("x := 1;").unwrap_err();
        assert!(err.message.contains("undefined variable `x`"), "{err}");
    }
}
