//! Recursive-descent parser for the loop-based language.
//!
//! Besides building the AST, the parser performs one desugaring required by
//! the paper's classification of updates (§3.5): a plain assignment
//! `d := d ⊕ e` (or `d := e ⊕ d`) for a *commutative* `⊕` is recognized as
//! the incremental update `d ⊕= e`. This is how programs written in the
//! style of Appendix B (e.g. `eq := eq && v == x`) are admitted.

use diablo_diag::{codes, Diagnostics};
use diablo_runtime::{BinOp, Func, UnOp};

use crate::ast::{Const, DeclInit, Expr, Lhs, Program, Stmt};
use crate::lexer::{Lexer, Span, Token, TokenKind};
use crate::types::Type;
use crate::{LangError, Result};

/// Parses a whole program.
pub fn parse(src: &str) -> Result<Program> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

/// Parses a whole program, accumulating *every* syntax error into `diags`
/// instead of stopping at the first.
///
/// After an error the parser resynchronizes at the next top-level `;` and
/// keeps going, so one run reports all independent faults. Returns `None`
/// when any error was emitted — the partial AST is not suitable for later
/// passes.
pub fn parse_multi(src: &str, diags: &mut Diagnostics) -> Option<Program> {
    let tokens = match Lexer::new(src).tokenize() {
        Ok(tokens) => tokens,
        Err(e) => {
            diags.emit(e.into_diagnostic(codes::SYNTAX));
            return None;
        }
    };
    let mut p = Parser { tokens, pos: 0 };
    let before = diags.error_count();
    let program = p.program_recovering(diags);
    (diags.error_count() == before).then_some(program)
}

/// Parses a single expression (used by tests and the REPL-style examples).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.peek_kind() == kind {
            Ok(self.bump())
        } else {
            Err(LangError::new(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek_kind().describe()
                ),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(LangError::new(
                format!("expected an identifier, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek_kind(), TokenKind::Ident(s) if s == name)
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, name: &str) -> Result<()> {
        if self.eat_ident(name) {
            Ok(())
        } else {
            Err(LangError::new(
                format!("expected `{name}`, found {}", self.peek_kind().describe()),
                self.span(),
            ))
        }
    }

    // ---------------------------------------------------------- program

    fn program(&mut self) -> Result<Program> {
        let mut inputs = Vec::new();
        while self.at_ident("input") {
            inputs.push(self.input_decl()?);
        }
        let mut body = Vec::new();
        while self.peek_kind() != &TokenKind::Eof {
            if self.eat(&TokenKind::Semi) {
                continue; // tolerate stray semicolons
            }
            body.push(self.stmt()?);
        }
        Ok(Program { inputs, body })
    }

    fn input_decl(&mut self) -> Result<(String, Type)> {
        self.expect_ident("input")?;
        let name = self.ident()?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.ty()?;
        self.expect(&TokenKind::Semi)?;
        Ok((name, ty))
    }

    /// Like [`Parser::program`] but emits every error into `diags` and
    /// resynchronizes after each one instead of bailing out.
    fn program_recovering(&mut self, diags: &mut Diagnostics) -> Program {
        let mut inputs = Vec::new();
        while self.at_ident("input") {
            let start = self.pos;
            match self.input_decl() {
                Ok(input) => inputs.push(input),
                Err(e) => {
                    diags.emit(e.into_diagnostic(codes::SYNTAX));
                    self.recover(start);
                }
            }
        }
        let mut body = Vec::new();
        while self.peek_kind() != &TokenKind::Eof {
            if self.eat(&TokenKind::Semi) {
                continue;
            }
            let start = self.pos;
            match self.stmt() {
                Ok(s) => body.push(s),
                Err(e) => {
                    diags.emit(e.into_diagnostic(codes::SYNTAX));
                    self.recover(start);
                }
            }
        }
        Program { inputs, body }
    }

    /// Skips to just past the next `;` at brace depth zero (or Eof), making
    /// sure at least one token is consumed so recovery always progresses.
    fn recover(&mut self, start: usize) {
        if self.pos == start {
            self.bump();
        }
        let mut depth = 0i64;
        while self.peek_kind() != &TokenKind::Eof {
            let t = self.bump();
            match t.kind {
                TokenKind::LBrace => depth += 1,
                TokenKind::RBrace => depth -= 1,
                TokenKind::Semi if depth <= 0 => return,
                _ => {}
            }
        }
    }

    // ---------------------------------------------------------- types

    fn ty(&mut self) -> Result<Type> {
        let span = self.span();
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "bool" => Ok(Type::Bool),
                    "long" | "int" => Ok(Type::Long),
                    "double" | "float" => Ok(Type::Double),
                    "string" => Ok(Type::Str),
                    "vector" => {
                        self.expect(&TokenKind::LBracket)?;
                        let t = self.ty()?;
                        self.expect(&TokenKind::RBracket)?;
                        Ok(Type::Vector(Box::new(t)))
                    }
                    "matrix" => {
                        self.expect(&TokenKind::LBracket)?;
                        let t = self.ty()?;
                        self.expect(&TokenKind::RBracket)?;
                        Ok(Type::Matrix(Box::new(t)))
                    }
                    "map" => {
                        self.expect(&TokenKind::LBracket)?;
                        let k = self.ty()?;
                        self.expect(&TokenKind::Comma)?;
                        let v = self.ty()?;
                        self.expect(&TokenKind::RBracket)?;
                        Ok(Type::Map(Box::new(k), Box::new(v)))
                    }
                    other => Err(LangError::new(format!("unknown type `{other}`"), span)),
                }
            }
            TokenKind::LParen => {
                self.bump();
                let mut fields = vec![self.ty()?];
                while self.eat(&TokenKind::Comma) {
                    fields.push(self.ty()?);
                }
                self.expect(&TokenKind::RParen)?;
                if fields.len() < 2 {
                    return Err(LangError::new("tuple types need at least two fields", span));
                }
                Ok(Type::Tuple(fields))
            }
            TokenKind::RecOpen => {
                self.bump();
                let mut fields = Vec::new();
                loop {
                    let name = self.ident()?;
                    self.expect(&TokenKind::Colon)?;
                    let t = self.ty()?;
                    fields.push((name, t));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RecClose)?;
                Ok(Type::Record(fields))
            }
            other => Err(LangError::new(
                format!("expected a type, found {}", other.describe()),
                span,
            )),
        }
    }

    // ---------------------------------------------------------- statements

    fn stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        if self.at_ident("var") {
            return self.decl();
        }
        if self.at_ident("for") {
            return self.for_stmt();
        }
        if self.at_ident("while") {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            let body = self.stmt()?;
            return Ok(Stmt::While {
                cond,
                body: Box::new(body),
                span,
            });
        }
        if self.at_ident("if") {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let cond = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            let then_branch = Box::new(self.stmt()?);
            let else_branch = if self.at_ident("else") {
                self.bump();
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            });
        }
        if self.peek_kind() == &TokenKind::LBrace {
            self.bump();
            let mut stmts = Vec::new();
            while self.peek_kind() != &TokenKind::RBrace {
                if self.eat(&TokenKind::Semi) {
                    continue;
                }
                stmts.push(self.stmt()?);
            }
            self.expect(&TokenKind::RBrace)?;
            self.eat(&TokenKind::Semi); // tolerate `};`
            return Ok(Stmt::Block(stmts));
        }
        // Assignment or incremental update.
        let dest = self.lhs()?;
        let tok = self.bump();
        let stmt = match tok.kind {
            TokenKind::Assign => {
                let value = self.expr()?;
                desugar_assign(dest, value, span)
            }
            TokenKind::PlusAssign => Stmt::Incr {
                dest,
                op: BinOp::Add,
                value: self.expr()?,
                span,
            },
            TokenKind::StarAssign => Stmt::Incr {
                dest,
                op: BinOp::Mul,
                value: self.expr()?,
                span,
            },
            TokenKind::CaretAssign => Stmt::Incr {
                dest,
                op: BinOp::ArgMin,
                value: self.expr()?,
                span,
            },
            TokenKind::AndAssign => Stmt::Incr {
                dest,
                op: BinOp::And,
                value: self.expr()?,
                span,
            },
            TokenKind::OrAssign => Stmt::Incr {
                dest,
                op: BinOp::Or,
                value: self.expr()?,
                span,
            },
            other => {
                return Err(LangError::new(
                    format!(
                        "expected an assignment operator, found {}",
                        other.describe()
                    ),
                    tok.span,
                ))
            }
        };
        self.expect(&TokenKind::Semi)?;
        Ok(stmt)
    }

    fn decl(&mut self) -> Result<Stmt> {
        let span = self.span();
        self.expect_ident("var")?;
        let name = self.ident()?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.ty()?;
        self.expect(&TokenKind::Eq)?;
        // Empty-collection constructors: vector(), matrix(), map().
        let init = if (self.at_ident("vector") || self.at_ident("matrix") || self.at_ident("map"))
            && self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen)
            && self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::RParen)
        {
            self.bump();
            self.bump();
            self.bump();
            DeclInit::EmptyCollection
        } else {
            DeclInit::Expr(self.expr()?)
        };
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::Decl {
            name,
            ty,
            init,
            span,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        self.expect_ident("for")?;
        let var = self.ident()?;
        if self.eat_ident("in") {
            let source = self.expr()?;
            self.expect_ident("do")?;
            let body = self.stmt()?;
            return Ok(Stmt::ForIn {
                var,
                source,
                body: Box::new(body),
                span,
            });
        }
        self.expect(&TokenKind::Eq)?;
        let lo = self.expr()?;
        self.expect(&TokenKind::Comma)?;
        let hi = self.expr()?;
        self.expect_ident("do")?;
        let body = self.stmt()?;
        Ok(Stmt::For {
            var,
            lo,
            hi,
            body: Box::new(body),
            span,
        })
    }

    // ---------------------------------------------------------- L-values

    fn lhs(&mut self) -> Result<Lhs> {
        let span = self.span();
        let name = self.ident()?;
        let mut d = if self.eat(&TokenKind::LBracket) {
            let mut idxs = vec![self.expr()?];
            while self.eat(&TokenKind::Comma) {
                idxs.push(self.expr()?);
            }
            self.expect(&TokenKind::RBracket)?;
            Lhs::Index(name, idxs)
        } else {
            Lhs::Var(name)
        };
        while self.eat(&TokenKind::Dot) {
            let field = self.ident()?;
            d = Lhs::Proj(Box::new(d), field);
        }
        if self.peek_kind() == &TokenKind::LBracket {
            return Err(LangError::new(
                "nested array indexing is not allowed (arrays of arrays are excluded, §3.1)",
                span,
            ));
        }
        Ok(d)
    }

    // ---------------------------------------------------------- expressions

    /// `expr := and_expr (('||') and_expr)*`
    pub(crate) fn expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let e = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::EqEq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::Ne),
            TokenKind::Less => Some(BinOp::Lt),
            TokenKind::LessEq => Some(BinOp::Le),
            TokenKind::Greater => Some(BinOp::Gt),
            TokenKind::GreaterEq => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Bin(op, Box::new(e), Box::new(rhs)))
        } else {
            Ok(e)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Caret => BinOp::ArgMin,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let e = self.unary_expr()?;
            // Fold negation of literals so `-1` is a constant.
            return Ok(match e {
                Expr::Const(Const::Long(n)) => Expr::Const(Const::Long(-n)),
                Expr::Const(Const::Double(x)) => Expr::Const(Const::Double(-x)),
                other => Expr::Un(UnOp::Neg, Box::new(other)),
            });
        }
        if self.eat(&TokenKind::Bang) {
            let e = self.unary_expr()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(e)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let span = self.span();
        let mut e = self.primary_expr()?;
        while self.eat(&TokenKind::Dot) {
            let field = self.ident()?;
            // The grammar only projects destinations (Fig. 1).
            e = match e {
                Expr::Dest(d) => Expr::Dest(Lhs::Proj(Box::new(d), field)),
                _ => {
                    return Err(LangError::new(
                        "projection `.A` is only allowed on variables and array accesses",
                        span,
                    ))
                }
            };
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek_kind().clone() {
            TokenKind::Long(n) => {
                self.bump();
                Ok(Expr::Const(Const::Long(n)))
            }
            TokenKind::Double(x) => {
                self.bump();
                Ok(Expr::Const(Const::Double(x)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Const(Const::Str(s)))
            }
            TokenKind::LParen => {
                self.bump();
                let mut fields = vec![self.expr()?];
                while self.eat(&TokenKind::Comma) {
                    fields.push(self.expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                if fields.len() == 1 {
                    Ok(fields.pop().expect("one field"))
                } else {
                    Ok(Expr::Tuple(fields))
                }
            }
            TokenKind::RecOpen => {
                self.bump();
                let mut fields = Vec::new();
                loop {
                    let name = self.ident()?;
                    self.expect(&TokenKind::Eq)?;
                    let e = self.expr()?;
                    fields.push((name, e));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RecClose)?;
                Ok(Expr::Record(fields))
            }
            TokenKind::Ident(name) => {
                match name.as_str() {
                    "true" => {
                        self.bump();
                        return Ok(Expr::Const(Const::Bool(true)));
                    }
                    "false" => {
                        self.bump();
                        return Ok(Expr::Const(Const::Bool(false)));
                    }
                    _ => {}
                }
                self.bump();
                if self.peek_kind() == &TokenKind::LParen {
                    return self.call_expr(name, span);
                }
                if self.eat(&TokenKind::LBracket) {
                    let mut idxs = vec![self.expr()?];
                    while self.eat(&TokenKind::Comma) {
                        idxs.push(self.expr()?);
                    }
                    self.expect(&TokenKind::RBracket)?;
                    if self.peek_kind() == &TokenKind::LBracket {
                        return Err(LangError::new(
                            "nested array indexing is not allowed (arrays of arrays are excluded, §3.1)",
                            span,
                        ));
                    }
                    return Ok(Expr::Dest(Lhs::Index(name, idxs)));
                }
                Ok(Expr::var(name))
            }
            other => Err(LangError::new(
                format!("expected an expression, found {}", other.describe()),
                span,
            )),
        }
    }

    fn call_expr(&mut self, name: String, span: Span) -> Result<Expr> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek_kind() != &TokenKind::RParen {
            args.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect(&TokenKind::RParen)?;
        // `min`/`max` are binary operators in call syntax.
        match name.as_str() {
            "min" | "max" if args.len() == 2 => {
                let op = if name == "min" {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                let mut it = args.into_iter();
                let a = it.next().expect("two args");
                let b = it.next().expect("two args");
                return Ok(Expr::Bin(op, Box::new(a), Box::new(b)));
            }
            _ => {}
        }
        match Func::by_name(&name) {
            Some(f) => Ok(Expr::Call(f, args)),
            None => Err(LangError::new(format!("unknown function `{name}`"), span)),
        }
    }
}

/// Desugars `d := d ⊕ e` / `d := e ⊕ d` into `d ⊕= e` when `⊕` is
/// commutative; other assignments stay plain.
fn desugar_assign(dest: Lhs, value: Expr, span: Span) -> Stmt {
    if let Expr::Bin(op, lhs, rhs) = &value {
        if op.is_commutative() {
            if matches!(lhs.as_ref(), Expr::Dest(d) if *d == dest) {
                return Stmt::Incr {
                    dest,
                    op: *op,
                    value: (**rhs).clone(),
                    span,
                };
            }
            if matches!(rhs.as_ref(), Expr::Dest(d) if *d == dest) {
                return Stmt::Incr {
                    dest,
                    op: *op,
                    value: (**lhs).clone(),
                    span,
                };
            }
        }
    }
    Stmt::Assign { dest, value, span }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inputs_and_decls() {
        let p = parse(
            r#"
            input M: matrix[double];
            input n: long;
            var R: matrix[double] = matrix();
            var s: double = 0.0;
        "#,
        )
        .unwrap();
        assert_eq!(p.inputs.len(), 2);
        assert_eq!(p.body.len(), 2);
        assert!(matches!(
            &p.body[0],
            Stmt::Decl {
                init: DeclInit::EmptyCollection,
                ..
            }
        ));
    }

    #[test]
    fn parses_matrix_multiplication_shape() {
        let p = parse(
            r#"
            input M: matrix[double];
            input N: matrix[double];
            input d: long;
            var R: matrix[double] = matrix();
            for i = 0, d-1 do
              for j = 0, d-1 do {
                R[i, j] := 0.0;
                for k = 0, d-1 do
                  R[i, j] += M[i, k] * N[k, j];
              };
        "#,
        )
        .unwrap();
        let Stmt::For { body, .. } = &p.body[1] else {
            panic!("outer for")
        };
        let Stmt::For { body, .. } = body.as_ref() else {
            panic!("inner for")
        };
        let Stmt::Block(ss) = body.as_ref() else {
            panic!("block")
        };
        assert_eq!(ss.len(), 2);
        assert!(matches!(&ss[1], Stmt::For { body, .. }
            if matches!(body.as_ref(), Stmt::Incr { op: BinOp::Add, .. })));
    }

    #[test]
    fn desugars_commutative_self_assignment() {
        let p = parse(
            r#"
            input V: vector[double];
            var eq: bool = true;
            for v in V do eq := eq && v == 0.0;
        "#,
        )
        .unwrap();
        let Stmt::ForIn { body, .. } = &p.body[1] else {
            panic!()
        };
        assert!(
            matches!(body.as_ref(), Stmt::Incr { op: BinOp::And, .. }),
            "got {body:?}"
        );
    }

    #[test]
    fn does_not_desugar_noncommutative_self_assignment() {
        let p = parse("var x: long = 0; x := x - 1;").unwrap();
        assert!(matches!(&p.body[1], Stmt::Assign { .. }));
    }

    #[test]
    fn desugars_reversed_operand_order() {
        let p = parse("var x: long = 0; x := 1 + x;").unwrap();
        assert!(matches!(
            &p.body[1],
            Stmt::Incr {
                op: BinOp::Add,
                value: Expr::Const(Const::Long(1)),
                ..
            }
        ));
    }

    #[test]
    fn parses_records_and_projections() {
        let e = parse_expr("<| index = j, distance = d |>").unwrap();
        assert!(matches!(e, Expr::Record(fields) if fields.len() == 2));
        let e = parse_expr("A[i].K").unwrap();
        assert!(matches!(e, Expr::Dest(Lhs::Proj(_, f)) if f == "K"));
    }

    #[test]
    fn rejects_projection_of_tuple_literals() {
        assert!(parse_expr("(1, 2)._1").is_err());
    }

    #[test]
    fn rejects_nested_indexing() {
        assert!(parse("input V: vector[long]; var x: long = 0; x := V[0][1];").is_err());
    }

    #[test]
    fn allows_indirect_indexing() {
        // V[W[i]] is fine — the nesting is inside the index expression.
        let e = parse_expr("V[W[i]]").unwrap();
        assert!(matches!(e, Expr::Dest(Lhs::Index(v, _)) if v == "V"));
    }

    #[test]
    fn operator_precedence() {
        let e = parse_expr("a + b * c").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Add, _, rhs)
            if matches!(*rhs, Expr::Bin(BinOp::Mul, _, _))));
        let e = parse_expr("a < b && c < d || e").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Or, _, _)));
    }

    #[test]
    fn min_max_become_binops() {
        let e = parse_expr("min(a, b)").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Min, _, _)));
        let e = parse_expr("max(a, 3)").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Max, _, _)));
    }

    #[test]
    fn builtin_calls_and_unknown_functions() {
        assert!(matches!(
            parse_expr("sqrt(x)").unwrap(),
            Expr::Call(Func::Sqrt, _)
        ));
        assert!(parse_expr("frobnicate(x)").is_err());
    }

    #[test]
    fn unary_minus_folds_literals() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::Const(Const::Long(-5)));
        assert!(matches!(parse_expr("-x").unwrap(), Expr::Un(UnOp::Neg, _)));
    }

    #[test]
    fn while_and_if_statements() {
        let p = parse(
            r#"
            var k: long = 0;
            while (k < 10) {
                k += 1;
                if (k == 5) k += 2; else k += 3;
            };
        "#,
        )
        .unwrap();
        assert!(matches!(&p.body[1], Stmt::While { .. }));
    }

    #[test]
    fn incremental_operators() {
        let p = parse(
            r#"
            var a: long = 0; var b: long = 1; var c: bool = true;
            var d: bool = false; var e: vector[(long, double)] = vector();
            a += 1; b *= 2; c &&= true; d ||= false; e[0] ^= (1, 0.5);
        "#,
        )
        .unwrap();
        let ops: Vec<BinOp> = p.body[5..]
            .iter()
            .map(|s| match s {
                Stmt::Incr { op, .. } => *op,
                other => panic!("expected Incr, got {other:?}"),
            })
            .collect();
        assert_eq!(
            ops,
            vec![BinOp::Add, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::ArgMin]
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("var x long = 3;").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert!(err.message.contains("expected `:`"), "{err}");
    }

    #[test]
    fn parse_multi_reports_every_error() {
        let src = "var x long = 3;\nvar y: long = 0;\ny := ;\ny += 1;\nz +* 2;\n";
        let mut diags = Diagnostics::new();
        assert!(parse_multi(src, &mut diags).is_none());
        assert_eq!(diags.error_count(), 3, "{:?}", diags.into_vec());
    }

    #[test]
    fn parse_multi_first_error_matches_parse() {
        let src = "var x long = 3;\ny := ;\n";
        let err = parse(src).unwrap_err();
        let mut diags = Diagnostics::new();
        parse_multi(src, &mut diags);
        let first = diags.first_error().unwrap();
        assert_eq!(first.message, err.message);
        assert_eq!(
            (first.span.line, first.span.col),
            (err.span.line, err.span.col)
        );
    }

    #[test]
    fn parse_multi_recovers_across_blocks() {
        // The error is inside a block; recovery must not get stuck.
        let src = "input n: long;\nvar s: long = 0;\nfor i = 0, n do {\n  s += ;\n};\ns += 1;\n";
        let mut diags = Diagnostics::new();
        assert!(parse_multi(src, &mut diags).is_none());
        assert!(diags.error_count() >= 1);
    }

    #[test]
    fn parse_multi_clean_program_emits_nothing() {
        let mut diags = Diagnostics::new();
        let p = parse_multi("var x: long = 0; x += 1;", &mut diags).unwrap();
        assert!(diags.is_empty());
        assert_eq!(p.body.len(), 2);
    }
}
