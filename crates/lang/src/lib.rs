//! # diablo-lang
//!
//! The loop-based source language of the paper (Fig. 1): an imperative
//! language with scalar variables, sparse vectors / matrices / key-value
//! maps, `for` loops over integer ranges and collections, `while` loops,
//! conditionals, plain assignments `d := e` and incremental updates
//! `d ⊕= e` for commutative `⊕`.
//!
//! This crate is the front half of the DIABLO pipeline:
//!
//! * [`lexer`] — hand-written lexer with source positions;
//! * [`ast`] — the abstract syntax tree mirroring the paper's grammar;
//! * [`parser`] — recursive-descent parser, including the desugaring of
//!   `d := d ⊕ e` into `d ⊕= e` for commutative `⊕`;
//! * [`types`] — the type language (`vector[t]`, `matrix[t]`,
//!   `map[k, v]`, tuples, records) and the type checker, which also
//!   renames loop indexes so every `for` has a distinct index variable
//!   (required by the dependence analysis of §3.2);
//! * [`pretty`] — a pretty printer producing parseable source.
//!
//! ## Surface syntax
//!
//! ```text
//! input M: matrix[double];      // free variables bound by the driver
//! input n: long;
//! var R: matrix[double] = matrix();
//! for i = 0, n-1 do
//!   for j = 0, n-1 do {
//!     R[i, j] := 0.0;
//!     for k = 0, n-1 do
//!       R[i, j] += M[i, k] * N[k, j];
//!   };
//! ```
//!
//! Records are written `<| A = e, B = e |>` and record/tuple projection is
//! `e.A` / `e._1`.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod types;

pub use ast::{Const, Expr, Lhs, Program, Stmt};
pub use lexer::{Lexer, Span, Token, TokenKind};
pub use parser::{parse, parse_multi};
pub use pretty::pretty_program;
pub use types::{typecheck, typecheck_multi, Type, TypedProgram};

/// A front-end error (lexing, parsing, or type checking) with a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
    /// Stable diagnostic code override; `None` means the emitting
    /// phase's default code (D001 for parse errors, D002 for type
    /// errors) applies.
    pub code: Option<&'static str>,
}

impl LangError {
    /// Creates an error at the given span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Self {
            message: message.into(),
            span,
            code: None,
        }
    }

    /// Pins the error to a specific stable diagnostic code instead of
    /// the emitting phase's default.
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = Some(code);
        self
    }

    /// Converts the error into a structured diagnostic under `code`
    /// (or the error's own pinned code, when it has one).
    pub fn into_diagnostic(self, code: &'static str) -> diablo_diag::Diagnostic {
        diablo_diag::Diagnostic::error(self.code.unwrap_or(code), self.message, self.span)
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.col, self.message)
    }
}

impl std::error::Error for LangError {}

/// Result alias for front-end operations.
pub type Result<T> = std::result::Result<T, LangError>;
