//! Pretty printer producing parseable source text.
//!
//! Used in diagnostics, DESIGN-style dumps of translated programs, and in
//! round-trip tests (`parse(pretty(parse(src))) == parse(src)`).

use crate::ast::{Const, DeclInit, Expr, Lhs, Program, Stmt};
use crate::types::Type;
use diablo_runtime::{BinOp, UnOp};

/// Pretty-prints a whole program.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    for (name, ty) in &p.inputs {
        out.push_str(&format!("input {name}: {ty};\n"));
    }
    for s in &p.body {
        pretty_stmt(s, 0, &mut out);
    }
    out
}

/// Pretty-prints a statement at the given indentation level.
pub fn pretty_stmt(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Incr {
            dest, op, value, ..
        } => {
            let sym = match op {
                BinOp::Add => "+=".to_string(),
                BinOp::Mul => "*=".to_string(),
                BinOp::ArgMin => "^=".to_string(),
                BinOp::And => "&&=".to_string(),
                BinOp::Or => "||=".to_string(),
                // No compound token for the rest; print the expanded form.
                other => {
                    out.push_str(&format!(
                        "{pad}{} := {} {} {};\n",
                        pretty_lhs(dest),
                        pretty_lhs(dest),
                        other.symbol(),
                        pretty_expr(value)
                    ));
                    return;
                }
            };
            out.push_str(&format!(
                "{pad}{} {sym} {};\n",
                pretty_lhs(dest),
                pretty_expr(value)
            ));
        }
        Stmt::Assign { dest, value, .. } => {
            out.push_str(&format!(
                "{pad}{} := {};\n",
                pretty_lhs(dest),
                pretty_expr(value)
            ));
        }
        Stmt::Decl { name, ty, init, .. } => {
            let init = match init {
                DeclInit::EmptyCollection => match ty {
                    Type::Vector(_) => "vector()".to_string(),
                    Type::Matrix(_) => "matrix()".to_string(),
                    _ => "map()".to_string(),
                },
                DeclInit::Expr(e) => pretty_expr(e),
            };
            out.push_str(&format!("{pad}var {name}: {ty} = {init};\n"));
        }
        Stmt::For {
            var, lo, hi, body, ..
        } => {
            out.push_str(&format!(
                "{pad}for {var} = {}, {} do\n",
                pretty_expr(lo),
                pretty_expr(hi)
            ));
            pretty_stmt(body, indent + 1, out);
        }
        Stmt::ForIn {
            var, source, body, ..
        } => {
            out.push_str(&format!("{pad}for {var} in {} do\n", pretty_expr(source)));
            pretty_stmt(body, indent + 1, out);
        }
        Stmt::While { cond, body, .. } => {
            out.push_str(&format!("{pad}while ({})\n", pretty_expr(cond)));
            pretty_stmt(body, indent + 1, out);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            out.push_str(&format!("{pad}if ({})\n", pretty_expr(cond)));
            pretty_stmt(then_branch, indent + 1, out);
            if let Some(e) = else_branch {
                out.push_str(&format!("{pad}else\n"));
                pretty_stmt(e, indent + 1, out);
            }
        }
        Stmt::Block(ss) => {
            out.push_str(&format!("{pad}{{\n"));
            for s in ss {
                pretty_stmt(s, indent + 1, out);
            }
            out.push_str(&format!("{pad}}};\n"));
        }
    }
}

/// Pretty-prints an L-value.
pub fn pretty_lhs(d: &Lhs) -> String {
    match d {
        Lhs::Var(v) => v.clone(),
        Lhs::Proj(base, f) => format!("{}.{f}", pretty_lhs(base)),
        Lhs::Index(v, idxs) => {
            let idx = idxs.iter().map(pretty_expr).collect::<Vec<_>>().join(", ");
            format!("{v}[{idx}]")
        }
    }
}

/// Pretty-prints an expression (fully parenthesized for compound forms).
pub fn pretty_expr(e: &Expr) -> String {
    match e {
        Expr::Dest(d) => pretty_lhs(d),
        Expr::Const(Const::Long(n)) => n.to_string(),
        Expr::Const(Const::Double(x)) => {
            if x.fract() == 0.0 && x.is_finite() {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        Expr::Const(Const::Bool(b)) => b.to_string(),
        Expr::Const(Const::Str(s)) => format!("{s:?}"),
        Expr::Bin(op @ (BinOp::Min | BinOp::Max), a, b) => {
            format!("{}({}, {})", op.symbol(), pretty_expr(a), pretty_expr(b))
        }
        Expr::Bin(op, a, b) => {
            format!("({} {} {})", pretty_expr(a), op.symbol(), pretty_expr(b))
        }
        Expr::Un(UnOp::Neg, a) => format!("(-{})", pretty_expr(a)),
        Expr::Un(UnOp::Not, a) => format!("(!{})", pretty_expr(a)),
        Expr::Call(f, args) => {
            let args = args.iter().map(pretty_expr).collect::<Vec<_>>().join(", ");
            format!("{}({args})", f.name())
        }
        Expr::Tuple(fields) => {
            let fs = fields
                .iter()
                .map(pretty_expr)
                .collect::<Vec<_>>()
                .join(", ");
            format!("({fs})")
        }
        Expr::Record(fields) => {
            let fs = fields
                .iter()
                .map(|(n, e)| format!("{n} = {}", pretty_expr(e)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("<| {fs} |>")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trips_through_the_parser() {
        let src = r#"
            input M: matrix[double];
            input N: matrix[double];
            input d: long;
            var R: matrix[double] = matrix();
            var s: double = 0.0;
            for i = 0, d-1 do
              for j = 0, d-1 do {
                R[i, j] := 0.0;
                for k = 0, d-1 do
                  R[i, j] += M[i, k] * N[k, j];
              };
            while (s < 10.0) s += 1.0;
            if (s > 5.0) s := 0.0; else s += 2.0;
        "#;
        let p1 = parse(src).unwrap();
        let printed = pretty_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p1, p2, "pretty output:\n{printed}");
    }

    #[test]
    fn round_trips_records_tuples_and_calls() {
        let src = r#"
            input P: vector[(double, double)];
            var best: vector[<|index: long, distance: double|>] = vector();
            var acc: vector[(double, double, long)] = vector();
            for i = 0, 9 do {
                best[i] := <| index = 0, distance = sqrt(P[i]._1 * P[i]._2) |>;
                acc[i] += (P[i]._1, P[i]._2, 1);
            };
        "#;
        let p1 = parse(src).unwrap();
        let printed = pretty_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p1, p2);
    }
}
