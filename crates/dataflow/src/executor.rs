//! The pluggable execution backend: the [`Executor`] trait plus the five
//! built-in implementations, [`LocalExecutor`] (tuple-at-a-time, the
//! default), [`TileExecutor`] (tile/batch-at-a-time, tuned for the §5
//! tiled-matrix workloads whose rows carry dense tile payloads),
//! [`SpillExecutor`] (tuple-at-a-time with always-budgeted spilling
//! exchanges and adaptive stage re-chunking, for inputs larger than RAM),
//! [`MorselExecutor`] (tuple-at-a-time with every narrow stage split
//! into fixed-size morsels for the work-stealing pool), and
//! [`ColumnarExecutor`](crate::ColumnarExecutor) (typed column chunks
//! with per-column inner loops for transparent fused chains, row-path
//! fallback per stage for opaque UDFs — defined in `columnar.rs`).
//!
//! A [`Context`] owns one `Arc<dyn Executor>`; every [`Dataset`]
//! materialization point routes through it, so a backend can be swapped
//! under the unchanged `Dataset`/`Session` API —
//! [`Context::with_executor`], the `DIABLO_BACKEND` environment variable,
//! or `diabloc --backend <name>` all select one.
//!
//! ## Contract
//!
//! Executors must be **plan-faithful**: for the same plan they must
//! produce the same rows in the same order as tuple-at-a-time evaluation,
//! move the same rows through shuffles, and surface the same first error
//! for deterministic operator chains (see `ARCHITECTURE.md` for the full
//! contract and the conformance suite in `tests/executor_conformance.rs`).
//! Stage accounting ([`Context::record_physical_stage`]) is the
//! executor's responsibility; the shared plan walkers in this crate do it
//! for the built-ins.
//!
//! [`Dataset`]: crate::Dataset

use std::sync::Arc;

use diablo_runtime::{RuntimeError, Value};

use crate::exchange::{Exchange, ExchangeWriter, HashPartitioner, Partitioner};
use crate::plan::{self, ChunkPolicy, DriveMode, PartitionRows, Parts, PlanOp, Result};
use crate::Context;

/// An opaque handle to a dataset's physical plan, as passed to executors.
pub struct PhysicalPlan {
    pub(crate) op: Arc<PlanOp>,
}

impl PhysicalPlan {
    pub(crate) fn new(op: Arc<PlanOp>) -> PhysicalPlan {
        PhysicalPlan { op }
    }
}

/// A partition-wise consumer run by [`Executor::consume`]: receives the
/// partition index and a cursor over the partition's transformed rows, and
/// returns any number of row groups (shuffle buckets, reduction partials).
pub type PartitionTask<'a> =
    dyn Fn(usize, &PartitionRows<'_>) -> Result<Vec<Vec<Value>>> + Sync + 'a;

/// A scatter run by [`Executor::exchange`]: receives the partition index,
/// a cursor over the partition's transformed rows, and the exchange
/// writer it emits `(bucket, row)`s into. This is how keyed operators
/// stream rows — optionally pre-combined — into a shuffle without ever
/// materializing an all-partitions bucket matrix.
pub type ScatterTask<'a> =
    dyn Fn(usize, &PartitionRows<'_>, &mut ExchangeWriter<'_>) -> Result<()> + Sync + 'a;

/// What an execution backend can do, for introspection (`explain`
/// headers, the bench harness, tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Processes rows tile-at-a-time with per-step inner loops instead of
    /// tuple-at-a-time recursion.
    pub vectorized: bool,
    /// Fuses the post-shuffle reduce with the next narrow chain and its
    /// consumer (shuffle-read fusion).
    pub fused_shuffle_read: bool,
    /// Reads `union` operands in place through segments instead of
    /// copying them into combined partitions.
    pub union_in_place: bool,
    /// Runs every exchange under a memory budget — buckets past it spill
    /// to sorted run files — even when the context sets none.
    pub spilling_exchange: bool,
    /// Re-chunks stage work adaptively at stage boundaries (splits skewed
    /// partitions, coalesces tiny ones) without changing recorded results.
    pub adaptive_chunking: bool,
    /// Supports key-ordered (sort-based) exchanges: range-scattered
    /// buckets whose pre-sorted chunks and spill runs merge back by key,
    /// so sorted keyed operators emit globally key-ordered output.
    pub ordered_exchange: bool,
    /// Splits every oversized partition into fixed-size morsel spans
    /// ([`Context::morsel_size`] rows) for the work-stealing pool,
    /// regardless of skew, without changing recorded results.
    pub morsel_scheduling: bool,
}

/// A pluggable execution backend for the [`PlanOp`] DAG.
///
/// All methods take the [`Context`] explicitly so one executor value can
/// serve many contexts; implementations must be stateless or internally
/// synchronized.
pub trait Executor: Send + Sync {
    /// Short stable identifier (`local`, `tile`, `spill` — see
    /// [`BACKEND_NAMES`]), used by `diabloc --backend`, `DIABLO_BACKEND`,
    /// and the bench harness.
    fn name(&self) -> &'static str;

    /// What this backend can do.
    fn capabilities(&self) -> Capabilities;

    /// Executes a plan into concrete partitions, fusing pending narrow
    /// chains however the backend sees fit. Must preserve row order:
    /// output partition `i` holds the transformed rows of input partition
    /// `i` in source order.
    fn materialize(&self, ctx: &Context, plan: &PhysicalPlan) -> Result<Parts>;

    /// Runs `task` once per partition over the plan's *transformed* rows
    /// without materializing them, returning each partition's row groups.
    /// This is the primitive under shuffle scatters and reductions.
    fn consume(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        task: &PartitionTask<'_>,
    ) -> Result<Vec<Vec<Vec<Value>>>>;

    /// Hash-partitions `(key, value)` rows by key — the current default
    /// behavior, now a one-line special case of [`Executor::shuffle_by`].
    fn shuffle(&self, ctx: &Context, plan: &PhysicalPlan, label: &str) -> Result<Vec<Vec<Value>>> {
        self.shuffle_by(ctx, plan, label, &HashPartitioner)
    }

    /// Partitions `(key, value)` rows by key with a pluggable
    /// [`Partitioner`]: the default implementation streams each source
    /// partition's transformed rows into the exchange sink, bucket chosen
    /// per key.
    fn shuffle_by(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        partitioner: &dyn Partitioner,
    ) -> Result<Vec<Vec<Value>>> {
        let p = ctx.partitions();
        self.exchange(ctx, plan, label, &|_, rows, sink| {
            rows.for_each(&mut |row| {
                let (k, _) = diablo_runtime::array::key_value(&row)?;
                sink.emit(partitioner.partition(&k, p)?, row)
            })
        })
    }

    /// The exchange primitive under every shuffle: runs `scatter` once
    /// per source partition over the plan's *transformed* rows, streaming
    /// emitted rows through an [`Exchange`] sink bounded by
    /// [`Executor::exchange_budget`] (buckets past the budget spill to
    /// sorted run files), and merge-reads the destination partitions back
    /// in source order. Replaces the old collect-everything `gather`.
    fn exchange(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        scatter: &ScatterTask<'_>,
    ) -> Result<Vec<Vec<Value>>> {
        let ex = Exchange::new(ctx.partitions(), self.exchange_budget(ctx));
        self.consume(ctx, plan, label, &|src, rows| {
            let mut writer = ex.writer(src);
            scatter(src, rows, &mut writer)?;
            writer.close()?;
            Ok(Vec::new())
        })?;
        ex.finish(ctx)
    }

    /// The sort-based shuffle primitive: streams already key-sorted
    /// source partitions through a **key-ordered** [`Exchange`] (same
    /// budget rules as [`Executor::exchange`]; chunks past the budget
    /// spill as sorted runs and are merged straight from disk), scattered
    /// with `partitioner` — a [`RangePartitioner`](crate::RangePartitioner)
    /// keeps ordered keys in contiguous buckets, so the merged buckets
    /// concatenate into globally key-ordered output. Only backends whose
    /// [`Capabilities::ordered_exchange`] is set support it; the default
    /// implementation (used by all three built-ins) errors otherwise.
    fn exchange_sorted(
        &self,
        ctx: &Context,
        sources: Vec<Vec<Value>>,
        label: &str,
        partitioner: &dyn Partitioner,
    ) -> Result<Vec<Vec<Value>>> {
        if !self.capabilities().ordered_exchange {
            return Err(RuntimeError::new(format!(
                "backend `{}` does not support key-ordered exchanges ({label})",
                self.name()
            )));
        }
        let p = ctx.partitions();
        let ex = Exchange::new_ordered(p, self.exchange_budget(ctx));
        // Scatter sources in parallel like every other exchange: writers
        // are independent, chunks are tagged (source, sequence), and the
        // ordered merge breaks key ties by that tag, so the result is
        // independent of worker interleaving. Each task owns exactly its
        // source partition (taken out of the slot), so rows move into the
        // sink without a clone.
        let slots: Vec<std::sync::Mutex<Vec<Value>>> =
            sources.into_iter().map(std::sync::Mutex::new).collect();
        crate::pool::run_stage(ctx, &slots, |src, slot| {
            let rows = std::mem::take(&mut *slot.lock().expect("source slot"));
            let mut writer = ex.writer(src);
            for row in rows {
                let bucket = partitioner.partition(crate::exchange::pair_key(&row), p)?;
                writer.emit(bucket, row)?;
            }
            writer.close()?;
            Ok(())
        })?;
        ex.finish(ctx)
    }

    /// The memory budget this backend's exchanges buffer rows under. The
    /// default honours the context's budget ([`Context::memory_budget`],
    /// `DIABLO_MEMORY_BUDGET`); `None` means unbounded.
    fn exchange_budget(&self, ctx: &Context) -> Option<u64> {
        ctx.memory_budget()
    }
}

/// The default backend: fused tuple-at-a-time evaluation on the worker
/// pool — exactly the engine the lazy-plan layer shipped with.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalExecutor;

impl Executor for LocalExecutor {
    fn name(&self) -> &'static str {
        "local"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            vectorized: false,
            fused_shuffle_read: true,
            union_in_place: true,
            spilling_exchange: false,
            adaptive_chunking: false,
            ordered_exchange: true,
            morsel_scheduling: false,
        }
    }

    fn materialize(&self, ctx: &Context, plan: &PhysicalPlan) -> Result<Parts> {
        plan::materialize(ctx, &plan.op, &DriveMode::Tuple, ChunkPolicy::Fixed)
    }

    fn consume(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        task: &PartitionTask<'_>,
    ) -> Result<Vec<Vec<Vec<Value>>>> {
        plan::consume(
            ctx,
            &plan.op,
            label,
            &DriveMode::Tuple,
            ChunkPolicy::Fixed,
            task,
        )
    }
}

/// The tiled backend: identical plans and stage structure, but rows move
/// through fused chains **tile-at-a-time** — fixed-width batches pushed
/// through each step with a tight inner loop, the execution shape of the
/// §5 tiled-matrix runtime (`diablo_runtime::tile`), where one row carries
/// a whole dense tile and per-row closure dispatch dominates.
///
/// The default tile width is 64 rows — one 8×8 [`TiledMatrix`] tile, the
/// shape the §5 ablation benchmark packs — and can be tuned with the
/// `DIABLO_TILE_BATCH` environment variable.
///
/// [`TiledMatrix`]: diablo_runtime::TiledMatrix
#[derive(Debug, Clone, Copy)]
pub struct TileExecutor {
    batch: usize,
}

impl TileExecutor {
    /// Default tile width: an 8×8 dense tile's worth of rows.
    pub const DEFAULT_BATCH: usize = 64;

    /// Creates a tile executor with the given batch width.
    pub fn new(batch: usize) -> TileExecutor {
        assert!(batch > 0, "tile batch must be positive");
        TileExecutor { batch }
    }

    /// Creates a tile executor sized from `DIABLO_TILE_BATCH` (default
    /// [`TileExecutor::DEFAULT_BATCH`]).
    pub fn from_env() -> TileExecutor {
        let batch = std::env::var("DIABLO_TILE_BATCH")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&b| b > 0)
            .unwrap_or(Self::DEFAULT_BATCH);
        TileExecutor::new(batch)
    }

    /// The configured tile width.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl Default for TileExecutor {
    fn default() -> TileExecutor {
        TileExecutor::new(Self::DEFAULT_BATCH)
    }
}

impl Executor for TileExecutor {
    fn name(&self) -> &'static str {
        "tile"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            vectorized: true,
            fused_shuffle_read: true,
            union_in_place: true,
            spilling_exchange: false,
            adaptive_chunking: false,
            ordered_exchange: true,
            morsel_scheduling: false,
        }
    }

    fn materialize(&self, ctx: &Context, plan: &PhysicalPlan) -> Result<Parts> {
        plan::materialize(
            ctx,
            &plan.op,
            &DriveMode::Batch(self.batch),
            ChunkPolicy::Fixed,
        )
    }

    fn consume(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        task: &PartitionTask<'_>,
    ) -> Result<Vec<Vec<Vec<Value>>>> {
        plan::consume(
            ctx,
            &plan.op,
            label,
            &DriveMode::Batch(self.batch),
            ChunkPolicy::Fixed,
            task,
        )
    }
}

/// The out-of-core backend: tuple-at-a-time like [`LocalExecutor`], but
/// every exchange runs under a memory budget even when the context sets
/// none — buckets past the budget spill to sorted run files and merge-read
/// back in source order — and stage work is re-chunked adaptively at stage
/// boundaries (skewed partitions split across workers, tiny ones coalesced
/// into one task), Spark-AQE style, without changing any recorded result.
///
/// The fallback budget (used when neither [`Context::memory_budget`] nor
/// `DIABLO_MEMORY_BUDGET` is set) defaults to
/// [`SpillExecutor::DEFAULT_BUDGET`].
#[derive(Debug, Clone, Copy)]
pub struct SpillExecutor {
    fallback_budget: u64,
}

impl SpillExecutor {
    /// Fallback exchange budget: 64 MiB of buffered exchange rows.
    pub const DEFAULT_BUDGET: u64 = 64 << 20;

    /// Creates a spill executor whose exchanges buffer at most
    /// `fallback_budget` bytes when the context sets no budget of its own.
    pub fn new(fallback_budget: u64) -> SpillExecutor {
        SpillExecutor { fallback_budget }
    }

    /// The fallback budget in bytes.
    pub fn fallback_budget(&self) -> u64 {
        self.fallback_budget
    }
}

impl Default for SpillExecutor {
    fn default() -> SpillExecutor {
        SpillExecutor::new(Self::DEFAULT_BUDGET)
    }
}

impl Executor for SpillExecutor {
    fn name(&self) -> &'static str {
        "spill"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            vectorized: false,
            fused_shuffle_read: true,
            union_in_place: true,
            spilling_exchange: true,
            adaptive_chunking: true,
            ordered_exchange: true,
            morsel_scheduling: false,
        }
    }

    fn materialize(&self, ctx: &Context, plan: &PhysicalPlan) -> Result<Parts> {
        plan::materialize(ctx, &plan.op, &DriveMode::Tuple, ChunkPolicy::Adaptive)
    }

    fn consume(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        task: &PartitionTask<'_>,
    ) -> Result<Vec<Vec<Vec<Value>>>> {
        plan::consume(
            ctx,
            &plan.op,
            label,
            &DriveMode::Tuple,
            ChunkPolicy::Adaptive,
            task,
        )
    }

    fn exchange_budget(&self, ctx: &Context) -> Option<u64> {
        Some(ctx.memory_budget().unwrap_or(self.fallback_budget))
    }
}

/// The morsel backend: tuple-at-a-time like [`LocalExecutor`], but every
/// narrow stage is scheduled as fixed-size morsels
/// ([`Context::morsel_size`] rows, default 16384) on the work-stealing
/// pool — oversized and skewed partitions split automatically, idle
/// workers steal the excess, and the outputs stitch back in canonical
/// `(partition, span)` order, so results are byte-identical to
/// [`LocalExecutor`] for every plan, worker count, and morsel size.
/// Partition-atomic consumer stages (scatters with combiner state) are
/// never split; runs of tiny partitions coalesce into shared items.
#[derive(Debug, Default, Clone, Copy)]
pub struct MorselExecutor;

impl Executor for MorselExecutor {
    fn name(&self) -> &'static str {
        "morsel"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            vectorized: false,
            fused_shuffle_read: true,
            union_in_place: true,
            spilling_exchange: false,
            adaptive_chunking: true,
            ordered_exchange: true,
            morsel_scheduling: true,
        }
    }

    fn materialize(&self, ctx: &Context, plan: &PhysicalPlan) -> Result<Parts> {
        plan::materialize(ctx, &plan.op, &DriveMode::Tuple, ChunkPolicy::Morsel)
    }

    fn consume(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        task: &PartitionTask<'_>,
    ) -> Result<Vec<Vec<Vec<Value>>>> {
        plan::consume(
            ctx,
            &plan.op,
            label,
            &DriveMode::Tuple,
            ChunkPolicy::Morsel,
            task,
        )
    }
}

/// The valid backend names, in the order help/error messages list them.
pub const BACKEND_NAMES: &[&str] = &["local", "tile", "spill", "morsel", "columnar"];

/// Resolves a backend by name (see [`BACKEND_NAMES`]); `None` for unknown
/// names.
pub fn executor_named(name: &str) -> Option<Arc<dyn Executor>> {
    match name {
        "local" => Some(Arc::new(LocalExecutor)),
        "tile" => Some(Arc::new(TileExecutor::from_env())),
        "spill" => Some(Arc::new(SpillExecutor::default())),
        "morsel" => Some(Arc::new(MorselExecutor)),
        "columnar" => Some(Arc::new(crate::columnar::ColumnarExecutor::from_env())),
        _ => None,
    }
}

/// The backend named by the `DIABLO_BACKEND` environment variable, or the
/// default [`LocalExecutor`].
///
/// # Panics
/// Panics on an unknown backend name so a typo in a CI matrix fails loudly
/// instead of silently testing the default backend.
pub(crate) fn executor_from_env() -> Arc<dyn Executor> {
    match std::env::var("DIABLO_BACKEND") {
        Ok(name) => executor_named(&name).unwrap_or_else(|| {
            panic!(
                "DIABLO_BACKEND={name}: unknown backend (try {})",
                BACKEND_NAMES.join(", ")
            )
        }),
        Err(_) => Arc::new(LocalExecutor),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_lookup_by_name() {
        for &name in BACKEND_NAMES {
            assert_eq!(executor_named(name).unwrap().name(), name);
        }
        assert!(executor_named("spark").is_none());
    }

    #[test]
    fn capabilities_distinguish_backends() {
        assert!(!LocalExecutor.capabilities().vectorized);
        assert!(TileExecutor::default().capabilities().vectorized);
        assert!(LocalExecutor.capabilities().union_in_place);
        assert!(!LocalExecutor.capabilities().spilling_exchange);
        let spill = SpillExecutor::default().capabilities();
        assert!(spill.spilling_exchange && spill.adaptive_chunking);
        let morsel = MorselExecutor.capabilities();
        assert!(morsel.morsel_scheduling && morsel.adaptive_chunking);
        assert!(!morsel.spilling_exchange);
        assert!(!LocalExecutor.capabilities().morsel_scheduling);
        let columnar = crate::columnar::ColumnarExecutor::default().capabilities();
        assert!(columnar.vectorized && columnar.fused_shuffle_read);
        assert!(!columnar.spilling_exchange && !columnar.morsel_scheduling);
        for name in BACKEND_NAMES {
            let exec = executor_named(name).unwrap();
            assert!(
                exec.capabilities().ordered_exchange,
                "every built-in honours the ordered capability: {name}"
            );
        }
    }

    #[test]
    fn spill_executor_always_has_an_exchange_budget() {
        // Pin the context budget explicitly so the test is independent of
        // any DIABLO_MEMORY_BUDGET the suite itself runs under.
        let ctx = Context::new(1, 2);
        let spill = SpillExecutor::new(1234);
        ctx.set_memory_budget(None);
        assert_eq!(LocalExecutor.exchange_budget(&ctx), None);
        assert_eq!(spill.exchange_budget(&ctx), Some(1234), "fallback budget");
        ctx.set_memory_budget(Some(99));
        assert_eq!(LocalExecutor.exchange_budget(&ctx), Some(99));
        assert_eq!(
            spill.exchange_budget(&ctx),
            Some(99),
            "an explicit context budget wins over the fallback"
        );
    }

    #[test]
    #[should_panic(expected = "tile batch must be positive")]
    fn zero_batch_panics() {
        let _ = TileExecutor::new(0);
    }
}
