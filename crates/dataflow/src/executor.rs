//! The pluggable execution backend: the [`Executor`] trait plus the two
//! built-in implementations, [`LocalExecutor`] (tuple-at-a-time, the
//! default) and [`TileExecutor`] (tile/batch-at-a-time, tuned for the §5
//! tiled-matrix workloads whose rows carry dense tile payloads).
//!
//! A [`Context`] owns one `Arc<dyn Executor>`; every [`Dataset`]
//! materialization point routes through it, so a backend can be swapped
//! under the unchanged `Dataset`/`Session` API —
//! [`Context::with_executor`], the `DIABLO_BACKEND` environment variable,
//! or `diabloc --backend <name>` all select one.
//!
//! ## Contract
//!
//! Executors must be **plan-faithful**: for the same plan they must
//! produce the same rows in the same order as tuple-at-a-time evaluation,
//! move the same rows through shuffles, and surface the same first error
//! for deterministic operator chains (see `ARCHITECTURE.md` for the full
//! contract and the conformance suite in `tests/executor_conformance.rs`).
//! Stage accounting ([`Context::record_physical_stage`]) is the
//! executor's responsibility; the shared plan walkers in this crate do it
//! for the built-ins.
//!
//! [`Dataset`]: crate::Dataset

use std::sync::Arc;

use diablo_runtime::Value;

use crate::plan::{self, DriveMode, PartitionRows, Parts, PlanOp, Result};
use crate::Context;

/// An opaque handle to a dataset's physical plan, as passed to executors.
pub struct PhysicalPlan {
    pub(crate) op: Arc<PlanOp>,
}

impl PhysicalPlan {
    pub(crate) fn new(op: Arc<PlanOp>) -> PhysicalPlan {
        PhysicalPlan { op }
    }
}

/// A partition-wise consumer run by [`Executor::consume`]: receives the
/// partition index and a cursor over the partition's transformed rows, and
/// returns any number of row groups (shuffle buckets, reduction partials).
pub type PartitionTask<'a> =
    dyn Fn(usize, &PartitionRows<'_>) -> Result<Vec<Vec<Value>>> + Sync + 'a;

/// What an execution backend can do, for introspection (`explain`
/// headers, the bench harness, tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Processes rows tile-at-a-time with per-step inner loops instead of
    /// tuple-at-a-time recursion.
    pub vectorized: bool,
    /// Fuses the post-shuffle reduce with the next narrow chain and its
    /// consumer (shuffle-read fusion).
    pub fused_shuffle_read: bool,
    /// Reads `union` operands in place through segments instead of
    /// copying them into combined partitions.
    pub union_in_place: bool,
}

/// A pluggable execution backend for the [`PlanOp`] DAG.
///
/// All methods take the [`Context`] explicitly so one executor value can
/// serve many contexts; implementations must be stateless or internally
/// synchronized.
pub trait Executor: Send + Sync {
    /// Short stable identifier (`local`, `tile`), used by
    /// `diabloc --backend`, `DIABLO_BACKEND`, and the bench harness.
    fn name(&self) -> &'static str;

    /// What this backend can do.
    fn capabilities(&self) -> Capabilities;

    /// Executes a plan into concrete partitions, fusing pending narrow
    /// chains however the backend sees fit. Must preserve row order:
    /// output partition `i` holds the transformed rows of input partition
    /// `i` in source order.
    fn materialize(&self, ctx: &Context, plan: &PhysicalPlan) -> Result<Parts>;

    /// Runs `task` once per partition over the plan's *transformed* rows
    /// without materializing them, returning each partition's row groups.
    /// This is the primitive under shuffle scatters and reductions.
    fn consume(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        task: &PartitionTask<'_>,
    ) -> Result<Vec<Vec<Vec<Value>>>>;

    /// Hash-partitions `(key, value)` rows by key: scatters each
    /// partition's transformed rows into `ctx.partitions()` buckets, then
    /// [`Executor::gather`]s them. The default implementation fuses the
    /// pending narrow chain into the scatter pass.
    fn shuffle(&self, ctx: &Context, plan: &PhysicalPlan, label: &str) -> Result<Vec<Vec<Value>>> {
        let p = ctx.partitions();
        let scattered = self.consume(ctx, plan, label, &|_, rows| {
            let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); p];
            rows.for_each(&mut |row| {
                let (k, _) = diablo_runtime::array::key_value(&row)?;
                let b = (crate::dataset::key_hash(&k) % p as u64) as usize;
                buckets[b].push(row);
                Ok(())
            })?;
            Ok(buckets)
        })?;
        self.gather(ctx, scattered, p)
    }

    /// Gather side of a shuffle: destination bucket `b` receives rows
    /// from every source partition, in source order. Records shuffle
    /// statistics on the context.
    fn gather(
        &self,
        ctx: &Context,
        scattered: Vec<Vec<Vec<Value>>>,
        partitions: usize,
    ) -> Result<Vec<Vec<Value>>> {
        let mut dest: Vec<Vec<Value>> = vec![Vec::new(); partitions];
        let mut moved_rows = 0u64;
        for src in scattered {
            for (b, rows) in src.into_iter().enumerate() {
                moved_rows += rows.len() as u64;
                dest[b].extend(rows);
            }
        }
        let bytes = crate::dataset::estimate_bytes(&dest);
        ctx.stats().record_shuffle(moved_rows, bytes);
        ctx.plan_note(format!(
            "shuffle: {moved_rows} rows exchanged across {partitions} partitions"
        ));
        Ok(dest)
    }
}

/// The default backend: fused tuple-at-a-time evaluation on the worker
/// pool — exactly the engine the lazy-plan layer shipped with.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalExecutor;

impl Executor for LocalExecutor {
    fn name(&self) -> &'static str {
        "local"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            vectorized: false,
            fused_shuffle_read: true,
            union_in_place: true,
        }
    }

    fn materialize(&self, ctx: &Context, plan: &PhysicalPlan) -> Result<Parts> {
        plan::materialize(ctx, &plan.op, DriveMode::Tuple)
    }

    fn consume(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        task: &PartitionTask<'_>,
    ) -> Result<Vec<Vec<Vec<Value>>>> {
        plan::consume(ctx, &plan.op, label, DriveMode::Tuple, task)
    }
}

/// The tiled backend: identical plans and stage structure, but rows move
/// through fused chains **tile-at-a-time** — fixed-width batches pushed
/// through each step with a tight inner loop, the execution shape of the
/// §5 tiled-matrix runtime (`diablo_runtime::tile`), where one row carries
/// a whole dense tile and per-row closure dispatch dominates.
///
/// The default tile width is 64 rows — one 8×8 [`TiledMatrix`] tile, the
/// shape the §5 ablation benchmark packs — and can be tuned with the
/// `DIABLO_TILE_BATCH` environment variable.
///
/// [`TiledMatrix`]: diablo_runtime::TiledMatrix
#[derive(Debug, Clone, Copy)]
pub struct TileExecutor {
    batch: usize,
}

impl TileExecutor {
    /// Default tile width: an 8×8 dense tile's worth of rows.
    pub const DEFAULT_BATCH: usize = 64;

    /// Creates a tile executor with the given batch width.
    pub fn new(batch: usize) -> TileExecutor {
        assert!(batch > 0, "tile batch must be positive");
        TileExecutor { batch }
    }

    /// Creates a tile executor sized from `DIABLO_TILE_BATCH` (default
    /// [`TileExecutor::DEFAULT_BATCH`]).
    pub fn from_env() -> TileExecutor {
        let batch = std::env::var("DIABLO_TILE_BATCH")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&b| b > 0)
            .unwrap_or(Self::DEFAULT_BATCH);
        TileExecutor::new(batch)
    }

    /// The configured tile width.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl Default for TileExecutor {
    fn default() -> TileExecutor {
        TileExecutor::new(Self::DEFAULT_BATCH)
    }
}

impl Executor for TileExecutor {
    fn name(&self) -> &'static str {
        "tile"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            vectorized: true,
            fused_shuffle_read: true,
            union_in_place: true,
        }
    }

    fn materialize(&self, ctx: &Context, plan: &PhysicalPlan) -> Result<Parts> {
        plan::materialize(ctx, &plan.op, DriveMode::Batch(self.batch))
    }

    fn consume(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        task: &PartitionTask<'_>,
    ) -> Result<Vec<Vec<Vec<Value>>>> {
        plan::consume(ctx, &plan.op, label, DriveMode::Batch(self.batch), task)
    }
}

/// Resolves a backend by name (`local`, `tile`); `None` for unknown names.
pub fn executor_named(name: &str) -> Option<Arc<dyn Executor>> {
    match name {
        "local" => Some(Arc::new(LocalExecutor)),
        "tile" => Some(Arc::new(TileExecutor::from_env())),
        _ => None,
    }
}

/// The backend named by the `DIABLO_BACKEND` environment variable, or the
/// default [`LocalExecutor`].
///
/// # Panics
/// Panics on an unknown backend name so a typo in a CI matrix fails loudly
/// instead of silently testing the default backend.
pub(crate) fn executor_from_env() -> Arc<dyn Executor> {
    match std::env::var("DIABLO_BACKEND") {
        Ok(name) => executor_named(&name)
            .unwrap_or_else(|| panic!("DIABLO_BACKEND={name}: unknown backend (try local, tile)")),
        Err(_) => Arc::new(LocalExecutor),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_lookup_by_name() {
        assert_eq!(executor_named("local").unwrap().name(), "local");
        assert_eq!(executor_named("tile").unwrap().name(), "tile");
        assert!(executor_named("spark").is_none());
    }

    #[test]
    fn capabilities_distinguish_backends() {
        assert!(!LocalExecutor.capabilities().vectorized);
        assert!(TileExecutor::default().capabilities().vectorized);
        assert!(LocalExecutor.capabilities().union_in_place);
    }

    #[test]
    #[should_panic(expected = "tile batch must be positive")]
    fn zero_batch_panics() {
        let _ = TileExecutor::new(0);
    }
}
