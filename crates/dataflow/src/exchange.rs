//! The Exchange API: how rows move between partitions.
//!
//! A shuffle used to be two hardwired `Executor` methods — a scatter that
//! hash-modded every key and a `gather` that concatenated every exchanged
//! row through one in-memory `Vec<Vec<Vec<Value>>>`. This module makes the
//! exchange a first-class, pluggable boundary:
//!
//! * a [`Partitioner`] decides which destination bucket a key belongs to
//!   ([`HashPartitioner`] is the default; [`RangePartitioner`] keeps
//!   ordered keys in contiguous buckets);
//! * an [`Exchange`] is the streaming sink/reader pair behind every
//!   shuffle: source partitions [`emit`](ExchangeWriter::emit) rows
//!   through per-partition [`ExchangeWriter`]s, the exchange buffers them
//!   as ordered chunks under a **memory budget**
//!   ([`Context::memory_budget`](crate::Context::memory_budget),
//!   `DIABLO_MEMORY_BUDGET`), spills chunks past the budget as sorted
//!   runs appended to one per-exchange temp file (a single open
//!   descriptor however often a tiny budget overflows), and
//!   [`Exchange::finish`] merge-reads the runs back **in source order**,
//!   so rows, order, and first errors are byte-identical to an unbounded
//!   in-memory exchange;
//! * a **key-ordered** exchange ([`Exchange::new_ordered`]) is the
//!   sort-based shuffle path: every row must be a `(key, value)` pair,
//!   every flushed chunk is kept key-sorted, and `finish` **merges**
//!   the (already sorted) chunks and spill runs by key instead of
//!   concatenating them — a bucket comes back globally key-sorted with
//!   no post-hoc re-sort, whether its chunks lived in memory or on disk.
//!
//! ## Order preservation rule
//!
//! Every chunk is tagged `(bucket, source partition, flush sequence)`.
//! Within one source partition, chunks are flushed in row order, so sorting
//! a bucket's chunks by `(source, sequence)` and concatenating reproduces
//! exactly the row order the old collect-everything gather produced:
//! bucket `b` holds source 0's rows in source order, then source 1's, …
//! Spill runs are written with their chunks pre-sorted by
//! `(bucket, source, sequence)` and merge-read per bucket, so a spilled
//! exchange and an in-memory exchange are indistinguishable downstream.
//!
//! ## Budget semantics
//!
//! The budget bounds the bytes of exchanged rows the sink holds in memory
//! at once (estimated with [`diablo_runtime::serialized_size`], summed
//! row-by-row by the writers — unbounded exchanges skip the accounting
//! entirely). `None` means unbounded (never spill). A budget of 0 spills
//! every flushed chunk. Spills are counted in [`Stats`](crate::Stats)
//! (`spilled_records`, `spilled_bytes`, `spill_files`) and noted in the
//! executed-plan trace.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use diablo_runtime::{RuntimeError, Value};

use crate::dataset::key_hash;
use crate::plan::Result;
use crate::Context;

// ----------------------------------------------------------- partitioners

/// Decides which destination bucket a `(key, value)` row's key belongs to.
///
/// Implementations must be pure: the same key and partition count always
/// map to the same bucket, or repeated shuffles stop being deterministic
/// and two-sided exchanges (`cogroup`, `merge`) stop aligning their sides.
pub trait Partitioner: Send + Sync {
    /// Short identifier for plan traces (`hash`, `range`).
    fn name(&self) -> &'static str;

    /// The destination bucket for `key`, in `0..partitions`.
    fn partition(&self, key: &Value, partitions: usize) -> Result<usize>;
}

/// The default partitioner: bucket = `hash(key) mod partitions` — exactly
/// the behavior the engine hardwired before the Exchange API.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn partition(&self, key: &Value, partitions: usize) -> Result<usize> {
        Ok((key_hash(key) % partitions as u64) as usize)
    }
}

/// Range partitioner for ordered keys: bucket `i` receives the keys in
/// `(bounds[i-1], bounds[i]]` (bucket 0 everything up to `bounds[0]`, the
/// last bucket everything above the final bound), so concatenating the
/// output partitions yields globally key-sorted data when each partition
/// is sorted locally.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    bounds: Vec<Value>,
}

impl RangePartitioner {
    /// Builds a range partitioner from explicit, ascending upper bounds
    /// (`p` partitions need `p - 1` bounds). Unsorted bounds are sorted
    /// and deduplicated.
    pub fn new(mut bounds: Vec<Value>) -> RangePartitioner {
        bounds.sort();
        bounds.dedup();
        RangePartitioner { bounds }
    }

    /// Builds a range partitioner by sampling: sorts the sample keys and
    /// picks `partitions - 1` evenly spaced split points — how a driver
    /// derives bounds from a key sample, Spark's `RangePartitioner`
    /// construction in miniature.
    ///
    /// Bounds are **coalesced**: duplicates collapse (a sample with fewer
    /// distinct keys than partitions yields fewer bounds, never repeated
    /// ones that would pin guaranteed-empty middle buckets), and the
    /// maximum sampled key is never used as a bound — bucket `i` is
    /// `(bounds[i-1], bounds[i]]`, so a max-key bound would reserve the
    /// final bucket for keys above every sampled key: a guaranteed-empty
    /// tail partition whenever the sample covers the key range. An
    /// all-equal sample therefore yields no bounds at all (one bucket).
    pub fn from_sample(mut sample: Vec<Value>, partitions: usize) -> RangePartitioner {
        sample.sort();
        sample.dedup();
        let need = partitions.saturating_sub(1);
        if need == 0 || sample.is_empty() {
            return RangePartitioner { bounds: Vec::new() };
        }
        if sample.len() <= need + 1 {
            // No more distinct keys than partitions: every distinct key
            // but the maximum becomes a bound, so each key gets its own
            // bucket and no bucket is reserved for keys above the whole
            // sample. (Already sorted and deduplicated.)
            sample.pop();
            return RangePartitioner { bounds: sample };
        }
        // More distinct keys than partitions: evenly spaced ranks. The
        // indices are strictly increasing and never reach the maximum
        // (i·len/(need+1) < len·need/(need+1) ≤ len−1 for len > need+1),
        // so the bounds are already coalesced and tail-safe.
        let bounds = (1..=need)
            .map(|i| sample[(i * sample.len() / (need + 1)).min(sample.len() - 1)].clone())
            .collect();
        RangePartitioner::new(bounds)
    }

    /// The split points, ascending.
    pub fn bounds(&self) -> &[Value] {
        &self.bounds
    }
}

impl Partitioner for RangePartitioner {
    fn name(&self) -> &'static str {
        "range"
    }

    fn partition(&self, key: &Value, partitions: usize) -> Result<usize> {
        let idx = self.bounds.partition_point(|b| b < key);
        Ok(idx.min(partitions.saturating_sub(1)))
    }
}

/// The key of a `(key, value)` row, borrowed; a non-pair row acts as its
/// own key (total fallback — ordered exchanges reject non-pairs at
/// [`emit`](ExchangeWriter::emit), so the fallback never decides order
/// there).
pub(crate) fn pair_key(row: &Value) -> &Value {
    match row.as_tuple() {
        Some([k, _]) => k,
        _ => row,
    }
}

/// Validates that a row is a `(key, value)` pair (the shape every row of
/// a key-ordered exchange must have).
fn require_pair(row: &Value) -> Result<()> {
    match row.as_tuple() {
        Some([_, _]) => Ok(()),
        _ => Err(RuntimeError::new(format!(
            "sorted shuffle row must be a (key, value) pair, got {row}"
        ))),
    }
}

// ------------------------------------------------------------- the sink

/// An in-flight chunk: one flush's worth of rows for one bucket from one
/// source partition.
struct Chunk {
    bucket: u32,
    src: u32,
    seq: u64,
    rows: Vec<Value>,
}

/// Where a spilled chunk lives inside the exchange's spill file.
struct ChunkLoc {
    bucket: u32,
    src: u32,
    seq: u64,
    offset: u64,
    len: u64,
    rows: u32,
}

/// The exchange's single spill file: sorted runs are appended to one
/// file, indexed in memory, so an exchange holds exactly one descriptor
/// open no matter how many times a tiny budget overflows.
struct SpillFile {
    file: File,
    index: Vec<ChunkLoc>,
    /// Bytes written so far — the append offset of the next run.
    len: u64,
}

#[derive(Default)]
struct ExchangeState {
    chunks: Vec<Chunk>,
    buffered_bytes: u64,
    spill: Option<SpillFile>,
    /// Sorted runs appended to the spill file.
    spill_runs: u64,
    dir: Option<PathBuf>,
    emitted_rows: u64,
    spilled_records: u64,
    spilled_bytes: u64,
}

/// The streaming exchange: the write side of a shuffle. Create one per
/// exchange, hand each source partition a [`writer`](Exchange::writer),
/// and [`finish`](Exchange::finish) it into destination partitions.
pub struct Exchange {
    partitions: usize,
    budget: Option<u64>,
    /// Key-ordered (sort-based) mode: rows must be `(key, value)` pairs,
    /// chunks stay key-sorted, and `finish` merges buckets by key.
    ordered: bool,
    state: Mutex<ExchangeState>,
}

/// Distinguishes concurrent exchanges' temp dirs within one process.
static EXCHANGE_ID: AtomicU64 = AtomicU64::new(0);

impl Exchange {
    /// A new exchange into `partitions` buckets under `budget` bytes of
    /// in-memory buffering (`None` = unbounded, never spill).
    pub fn new(partitions: usize, budget: Option<u64>) -> Exchange {
        Exchange {
            partitions,
            budget,
            ordered: false,
            state: Mutex::new(ExchangeState::default()),
        }
    }

    /// A new **key-ordered** exchange: the sort-based shuffle path. Every
    /// emitted row must be a `(key, value)` pair; each flushed chunk is
    /// kept stably key-sorted, and [`Exchange::finish`] k-way-merges a
    /// bucket's chunks (in-memory and spilled alike — spill runs are
    /// already sorted, so they merge directly instead of being
    /// concatenated and re-sorted) into a globally key-sorted bucket.
    /// Rows with equal keys keep `(source, sequence, emission)` order, so
    /// the output is deterministic and byte-identical across budgets.
    pub fn new_ordered(partitions: usize, budget: Option<u64>) -> Exchange {
        Exchange {
            partitions,
            budget,
            ordered: true,
            state: Mutex::new(ExchangeState::default()),
        }
    }

    /// The destination bucket count.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The memory budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// True for key-ordered (sort-based) exchanges.
    pub fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// A writer for one source partition. Writers are independent and may
    /// run concurrently; each must be [`close`](ExchangeWriter::close)d.
    pub fn writer(&self, src: usize) -> ExchangeWriter<'_> {
        // Small budgets flush (and so spill-check) eagerly; roomy or
        // unbounded exchanges amortize the shared-state lock over bigger
        // chunks instead of serializing scatter workers on it. Budgeted
        // writers also flush on estimated *bytes* (a quarter of the
        // budget, floored so tiny budgets keep their row-count cadence),
        // so wide rows — §5 tile payloads — cannot pile up a large
        // multiple of the budget in writer-local buffers.
        let flush_rows = match self.budget {
            Some(b) if b < (1 << 20) => 64,
            _ => 1024,
        };
        let flush_bytes = self.budget.map(|b| (b / 4).max(64 * 1024));
        ExchangeWriter {
            exchange: self,
            src: src as u32,
            seq: 0,
            flush_rows,
            flush_bytes,
            pending_rows: 0,
            pending_bytes: 0,
            buckets: vec![Vec::new(); self.partitions],
            staged: Vec::new(),
        }
    }

    /// Accepts one flush's buckets (whose estimated size the writer
    /// already accumulated row-by-row — nothing is re-walked under the
    /// lock), spilling if the budget is now exceeded. The CPU-heavy half
    /// of a spill — sorting and binary-encoding the run — happens
    /// **outside** the state lock, so concurrent scatter workers only
    /// serialize on the actual file append, not on the encode.
    fn accept(&self, src: u32, seq: u64, buckets: &mut [Vec<Value>], bytes: u64) -> Result<()> {
        let over_budget = {
            let mut state = self.state.lock().expect("exchange lock");
            for (b, rows) in buckets.iter_mut().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                let rows = std::mem::take(rows);
                state.emitted_rows += rows.len() as u64;
                state.chunks.push(Chunk {
                    bucket: b as u32,
                    src,
                    seq,
                    rows,
                });
            }
            state.buffered_bytes += bytes;
            self.budget.is_some_and(|b| state.buffered_bytes > b)
        };
        if over_budget {
            // Claim the buffered chunks (new ones may accumulate behind
            // us — they will trigger their own spill if needed).
            let chunks = {
                let mut state = self.state.lock().expect("exchange lock");
                state.buffered_bytes = 0;
                std::mem::take(&mut state.chunks)
            };
            if !chunks.is_empty() {
                let run = encode_run(chunks)?;
                let mut state = self.state.lock().expect("exchange lock");
                append_run(&mut state, run)?;
            }
        }
        Ok(())
    }

    /// Closes the write side and merge-reads every bucket back. A plain
    /// exchange interleaves in-memory chunks and spilled runs by
    /// `(source, sequence)`, so the destination partitions are
    /// byte-identical to an unbounded in-memory exchange; a key-ordered
    /// exchange k-way-merges the (already key-sorted) chunks by key
    /// instead, so every bucket comes back globally key-sorted. Records
    /// shuffle (and any spill) statistics and plan notes on `ctx`, then
    /// removes the temp run files.
    pub fn finish(self, ctx: &Context) -> Result<Vec<Vec<Value>>> {
        let state = self.state.into_inner().expect("exchange lock");
        let spill_runs = state.spill_runs;
        let (spilled_records, spilled_bytes) = (state.spilled_records, state.spilled_bytes);
        let emitted = state.emitted_rows;
        let (dest, merged_chunks) = if self.ordered {
            merge_read_ordered(state, self.partitions)?
        } else {
            (merge_read(state, self.partitions)?, 0)
        };
        crate::verify::verify_exchange_output(&dest, self.partitions, emitted, self.ordered)?;
        let bytes = crate::dataset::estimate_bytes(&dest);
        ctx.stats().record_shuffle(emitted, bytes);
        ctx.plan_note(format!(
            "shuffle: {emitted} rows exchanged across {} partitions",
            self.partitions
        ));
        if self.ordered {
            ctx.stats().record_sorted_shuffle();
            ctx.plan_note(format!(
                "sorted: buckets merged by key from pre-sorted chunks ({merged_chunks} spilled chunk(s) merged straight from disk runs)"
            ));
        }
        if spill_runs > 0 {
            ctx.stats()
                .record_spill(spilled_records, spilled_bytes, spill_runs);
            ctx.plan_note(format!(
                "spill: {spilled_records} rows ({spilled_bytes} B) through {spill_runs} sorted run(s), budget {} B",
                self.budget.unwrap_or(0)
            ));
        }
        Ok(dest)
    }
}

impl Drop for ExchangeState {
    fn drop(&mut self) {
        // Error paths drop the exchange before the merge-read removed the
        // temp dir; it must not outlive the state either way.
        self.spill = None;
        if let Some(dir) = self.dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// One encoded sorted run, ready to append: bytes plus its index with
/// offsets relative to the run's start.
struct EncodedRun {
    bytes: Vec<u8>,
    index: Vec<ChunkLoc>,
    records: u64,
}

/// Sorts chunks by `(bucket, source, sequence)` — so the read side can
/// scan one bucket's chunks contiguously — and binary-encodes them into
/// one run. Pure CPU: called without the exchange lock held.
fn encode_run(mut chunks: Vec<Chunk>) -> Result<EncodedRun> {
    chunks.sort_by_key(|c| (c.bucket, c.src, c.seq));
    let mut bytes = Vec::new();
    let mut index = Vec::with_capacity(chunks.len());
    let mut records = 0u64;
    for c in chunks {
        let offset = bytes.len() as u64;
        for row in &c.rows {
            encode_value(row, &mut bytes)?;
        }
        index.push(ChunkLoc {
            bucket: c.bucket,
            src: c.src,
            seq: c.seq,
            offset,
            len: bytes.len() as u64 - offset,
            rows: c.rows.len() as u32,
        });
        records += c.rows.len() as u64;
    }
    Ok(EncodedRun {
        bytes,
        index,
        records,
    })
}

/// Appends an encoded run to the exchange's single spill file (created
/// on first spill — one open descriptor per exchange, no matter how many
/// runs a tiny budget forces) and merges its index in.
fn append_run(state: &mut ExchangeState, run: EncodedRun) -> Result<()> {
    if state.spill.is_none() {
        let dir = std::env::temp_dir().join(format!(
            "diablo-exchange-{}-{}",
            std::process::id(),
            EXCHANGE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join("runs.bin"))
            .map_err(io_err)?;
        state.dir = Some(dir);
        state.spill = Some(SpillFile {
            file,
            index: Vec::new(),
            len: 0,
        });
    }
    let sf = state.spill.as_mut().expect("spill file");
    sf.file.seek(SeekFrom::Start(sf.len)).map_err(io_err)?;
    sf.file.write_all(&run.bytes).map_err(io_err)?;
    let base = sf.len;
    sf.index.extend(run.index.into_iter().map(|mut loc| {
        loc.offset += base;
        loc
    }));
    sf.len += run.bytes.len() as u64;
    state.spill_runs += 1;
    state.spilled_records += run.records;
    state.spilled_bytes += run.bytes.len() as u64;
    Ok(())
}

/// Builds the destination partitions: per bucket, every chunk — buffered
/// or spilled — sorted by `(source, sequence)` and concatenated. Disk
/// chunks that sort adjacently *and* sit contiguously in the spill file
/// (the common case: consecutive sequences of one source within one run)
/// are fetched with a single ranged read instead of one seek+read per
/// chunk.
fn merge_read(mut state: ExchangeState, partitions: usize) -> Result<Vec<Vec<Value>>> {
    // (src, seq) -> where the rows are.
    enum Loc {
        Mem(Vec<Value>),
        Disk { at: usize },
    }
    let mut by_bucket: Vec<Vec<(u32, u64, Loc)>> = (0..partitions).map(|_| Vec::new()).collect();
    for c in std::mem::take(&mut state.chunks) {
        by_bucket[c.bucket as usize].push((c.src, c.seq, Loc::Mem(c.rows)));
    }
    if let Some(sf) = &state.spill {
        for (i, loc) in sf.index.iter().enumerate() {
            by_bucket[loc.bucket as usize].push((loc.src, loc.seq, Loc::Disk { at: i }));
        }
    }
    let mut dest: Vec<Vec<Value>> = Vec::with_capacity(partitions);
    for chunks in &mut by_bucket {
        chunks.sort_by_key(|&(src, seq, _)| (src, seq));
        let mut part = Vec::new();
        let mut pending: Vec<usize> = Vec::new(); // contiguous disk chunks
        let read_pending = |pending: &mut Vec<usize>,
                            part: &mut Vec<Value>,
                            state: &mut ExchangeState|
         -> Result<()> {
            let Some(&first) = pending.first() else {
                return Ok(());
            };
            let sf = state.spill.as_mut().expect("indexed spill file");
            let start = sf.index[first].offset;
            let total: u64 = pending.iter().map(|&i| sf.index[i].len).sum();
            sf.file.seek(SeekFrom::Start(start)).map_err(io_err)?;
            let mut buf = vec![0u8; total as usize];
            sf.file.read_exact(&mut buf).map_err(io_err)?;
            let mut cursor = &buf[..];
            let rows: u64 = pending.iter().map(|&i| u64::from(sf.index[i].rows)).sum();
            for _ in 0..rows {
                part.push(decode_value(&mut cursor)?);
            }
            pending.clear();
            Ok(())
        };
        for (_, _, loc) in chunks.drain(..) {
            match loc {
                Loc::Mem(rows) => {
                    read_pending(&mut pending, &mut part, &mut state)?;
                    part.extend(rows);
                }
                Loc::Disk { at } => {
                    let contiguous = pending.last().is_some_and(|&prev| {
                        let sf = state.spill.as_ref().expect("indexed spill file");
                        sf.index[prev].offset + sf.index[prev].len == sf.index[at].offset
                    });
                    if !contiguous {
                        read_pending(&mut pending, &mut part, &mut state)?;
                    }
                    pending.push(at);
                }
            }
        }
        read_pending(&mut pending, &mut part, &mut state)?;
        dest.push(part);
    }
    drop(state); // removes the temp spill file
    Ok(dest)
}

/// Builds the destination partitions of a **key-ordered** exchange: per
/// bucket, every chunk — buffered or spilled — is already stably
/// key-sorted, so the bucket is produced by a k-way merge of the chunks
/// by key (ties broken by `(source, sequence)` chunk order, preserving
/// emission order for equal keys). Spilled runs are merged **directly**
/// from their decoded chunks — never concatenated and re-sorted. Returns
/// the partitions plus how many chunks were merged straight from disk.
fn merge_read_ordered(
    mut state: ExchangeState,
    partitions: usize,
) -> Result<(Vec<Vec<Value>>, u64)> {
    enum Loc {
        Mem(Vec<Value>),
        Disk { at: usize },
    }
    let mut by_bucket: Vec<Vec<(u32, u64, Loc)>> = (0..partitions).map(|_| Vec::new()).collect();
    for c in std::mem::take(&mut state.chunks) {
        by_bucket[c.bucket as usize].push((c.src, c.seq, Loc::Mem(c.rows)));
    }
    if let Some(sf) = &state.spill {
        for (i, loc) in sf.index.iter().enumerate() {
            by_bucket[loc.bucket as usize].push((loc.src, loc.seq, Loc::Disk { at: i }));
        }
    }
    let mut merged_disk_chunks = 0u64;
    let mut dest: Vec<Vec<Value>> = Vec::with_capacity(partitions);
    for chunks in &mut by_bucket {
        chunks.sort_by_key(|&(src, seq, _)| (src, seq));
        let mut lists: Vec<Vec<Value>> = Vec::with_capacity(chunks.len());
        for (_, _, loc) in chunks.drain(..) {
            match loc {
                Loc::Mem(rows) => lists.push(rows),
                Loc::Disk { at } => {
                    let sf = state.spill.as_mut().expect("indexed spill file");
                    let (offset, len, rows) =
                        (sf.index[at].offset, sf.index[at].len, sf.index[at].rows);
                    sf.file.seek(SeekFrom::Start(offset)).map_err(io_err)?;
                    let mut buf = vec![0u8; len as usize];
                    sf.file.read_exact(&mut buf).map_err(io_err)?;
                    let mut cursor = &buf[..];
                    let mut decoded = Vec::with_capacity(rows as usize);
                    for _ in 0..rows {
                        decoded.push(decode_value(&mut cursor)?);
                    }
                    merged_disk_chunks += 1;
                    lists.push(decoded);
                }
            }
        }
        dest.push(merge_sorted_lists(lists));
    }
    drop(state); // removes the temp spill file
    Ok((dest, merged_disk_chunks))
}

/// K-way merge of key-sorted row lists into one key-sorted list. Ties on
/// equal keys resolve to the earlier list (lists arrive in
/// `(source, sequence)` order), so equal-key rows keep their emission
/// order and the result is independent of how flushes chunked the rows.
fn merge_sorted_lists(lists: Vec<Vec<Value>>) -> Vec<Value> {
    use std::cmp::{Ordering, Reverse};
    use std::collections::BinaryHeap;

    struct Head {
        row: Value,
        list: usize,
    }
    impl Head {
        fn key(&self) -> &Value {
            pair_key(&self.row)
        }
    }
    impl PartialEq for Head {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Head {}
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> Ordering {
            self.key()
                .cmp(other.key())
                .then_with(|| self.list.cmp(&other.list))
        }
    }

    match lists.len() {
        0 => return Vec::new(),
        1 => return lists.into_iter().next().expect("one list"),
        _ => {}
    }
    let total = lists.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<Value>> = lists.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<Head>> = BinaryHeap::with_capacity(iters.len());
    for (list, it) in iters.iter_mut().enumerate() {
        if let Some(row) = it.next() {
            heap.push(Reverse(Head { row, list }));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse(head)) = heap.pop() {
        let list = head.list;
        out.push(head.row);
        if let Some(row) = iters[list].next() {
            heap.push(Reverse(Head { row, list }));
        }
    }
    out
}

fn io_err(e: std::io::Error) -> RuntimeError {
    RuntimeError::new(format!("exchange spill I/O: {e}"))
}

/// The per-source-partition write handle of an [`Exchange`]: buffers rows
/// per bucket and flushes ordered chunks into the shared sink.
pub struct ExchangeWriter<'a> {
    exchange: &'a Exchange,
    src: u32,
    seq: u64,
    flush_rows: usize,
    /// Byte-based flush trigger; `None` on unbounded exchanges (no need
    /// to pay per-row size estimation there).
    flush_bytes: Option<u64>,
    pending_rows: usize,
    pending_bytes: u64,
    buckets: Vec<Vec<Value>>,
    /// Chunks staged writer-locally on unbounded exchanges (no spill
    /// checks needed there): flushes append here instead of taking the
    /// shared sink lock, and [`close`](ExchangeWriter::close) publishes
    /// them all at once — one lock acquisition per writer per stage, so
    /// concurrent scatter workers never contend on the sink. The chunk
    /// tags `(bucket, source, sequence)` make the merge order independent
    /// of which worker published first.
    staged: Vec<Chunk>,
}

impl ExchangeWriter<'_> {
    /// Sends one row to destination bucket `bucket`, preserving emission
    /// order per `(source, bucket)` pair. An out-of-range bucket (a buggy
    /// custom [`Partitioner`]) is a [`RuntimeError`], not a panic; so is
    /// a non-pair row on a key-ordered exchange.
    pub fn emit(&mut self, bucket: usize, row: Value) -> Result<()> {
        if bucket >= self.buckets.len() {
            return Err(RuntimeError::new(format!(
                "partitioner chose bucket {bucket} of {} partitions",
                self.buckets.len()
            )));
        }
        if self.exchange.ordered {
            require_pair(&row)?;
        }
        if self.flush_bytes.is_some() {
            self.pending_bytes += diablo_runtime::serialized_size(&row) as u64;
        }
        self.buckets[bucket].push(row);
        self.pending_rows += 1;
        if self.pending_rows >= self.flush_rows
            || self.flush_bytes.is_some_and(|b| self.pending_bytes >= b)
        {
            self.flush()?;
        }
        Ok(())
    }

    /// Hands all locally buffered rows to the exchange (spilling there if
    /// the budget is exceeded). On a key-ordered exchange each bucket's
    /// chunk is stably key-sorted first, so every chunk the sink buffers
    /// or spills is already sorted — the invariant `finish`'s merge
    /// relies on.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending_rows == 0 {
            return Ok(());
        }
        if self.exchange.ordered {
            for bucket in &mut self.buckets {
                bucket.sort_by(|a, b| pair_key(a).cmp(pair_key(b)));
            }
        }
        if self.exchange.budget.is_none() {
            // Unbounded exchange: stage locally, publish once at close.
            for (b, rows) in self.buckets.iter_mut().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                self.staged.push(Chunk {
                    bucket: b as u32,
                    src: self.src,
                    seq: self.seq,
                    rows: std::mem::take(rows),
                });
            }
        } else {
            self.exchange
                .accept(self.src, self.seq, &mut self.buckets, self.pending_bytes)?;
        }
        self.seq += 1;
        self.pending_rows = 0;
        self.pending_bytes = 0;
        Ok(())
    }

    /// Final flush, plus the one-lock publish of any writer-staged
    /// chunks. Dropping a writer without closing it discards its
    /// un-published rows — which is exactly right on scatter error paths.
    pub fn close(mut self) -> Result<()> {
        self.flush()?;
        if !self.staged.is_empty() {
            let rows: u64 = self.staged.iter().map(|c| c.rows.len() as u64).sum();
            let mut state = self.exchange.state.lock().expect("exchange lock");
            state.emitted_rows += rows;
            state.chunks.append(&mut self.staged);
        }
        Ok(())
    }
}

// ----------------------------------------------------------- row codec

/// Binary row codec for spill runs. Exact round-trip for every [`Value`]
/// shape (doubles travel as raw bits), so spilled rows come back
/// bit-identical. Lengths that do not fit the u32 wire format (a single
/// string or container past 4 GiB / 2³² elements) are a loud error, not
/// a silent truncation.
///
/// Public because the serve layer's wire protocol and the plan-hash
/// cache key reuse the same canonical encoding — one codec, one notion
/// of value identity across spill files, sockets, and cache keys.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) -> Result<()> {
    fn put_len(out: &mut Vec<u8>, n: usize) -> Result<()> {
        let n = u32::try_from(n).map_err(|_| {
            RuntimeError::new("exchange spill: value length exceeds the u32 wire format")
        })?;
        out.extend_from_slice(&n.to_le_bytes());
        Ok(())
    }
    match v {
        Value::Unit => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Long(n) => {
            out.push(2);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Double(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_len(out, s.len())?;
            out.extend_from_slice(s.as_bytes());
        }
        Value::Tuple(fs) => {
            out.push(5);
            put_len(out, fs.len())?;
            for f in fs.iter() {
                encode_value(f, out)?;
            }
        }
        Value::Record(fields) => {
            out.push(6);
            put_len(out, fields.len())?;
            for (n, f) in fields.iter() {
                put_len(out, n.len())?;
                out.extend_from_slice(n.as_bytes());
                encode_value(f, out)?;
            }
        }
        Value::Bag(items) => {
            out.push(7);
            put_len(out, items.len())?;
            for f in items.iter() {
                encode_value(f, out)?;
            }
        }
    }
    Ok(())
}

/// Inverse of [`encode_value`]: decodes one value from the front of
/// `buf`, advancing it past the consumed bytes. Any truncated or
/// malformed input is a `corrupt` error, never a panic.
pub fn decode_value(buf: &mut &[u8]) -> Result<Value> {
    fn corrupt() -> RuntimeError {
        RuntimeError::new("corrupt exchange spill file")
    }
    fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
        if buf.len() < n {
            return Err(corrupt());
        }
        let (head, rest) = buf.split_at(n);
        *buf = rest;
        Ok(head)
    }
    fn take_len(buf: &mut &[u8]) -> Result<usize> {
        let b = take(buf, 4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
    }
    let tag = *take(buf, 1)?.first().expect("1 byte");
    Ok(match tag {
        0 => Value::Unit,
        1 => Value::Bool(take(buf, 1)?[0] != 0),
        2 => Value::Long(i64::from_le_bytes(take(buf, 8)?.try_into().expect("8"))),
        3 => Value::Double(f64::from_bits(u64::from_le_bytes(
            take(buf, 8)?.try_into().expect("8"),
        ))),
        4 => {
            let n = take_len(buf)?;
            let bytes = take(buf, n)?;
            Value::str(std::str::from_utf8(bytes).map_err(|_| corrupt())?)
        }
        5 => {
            let n = take_len(buf)?;
            // Capacity capped by the remaining bytes: a corrupt length
            // must fail with `corrupt()` when decoding runs dry, never
            // abort on a giant pre-allocation.
            let mut fs = Vec::with_capacity(n.min(buf.len()));
            for _ in 0..n {
                fs.push(decode_value(buf)?);
            }
            Value::tuple(fs)
        }
        6 => {
            let n = take_len(buf)?;
            let mut fields = Vec::with_capacity(n.min(buf.len()));
            for _ in 0..n {
                let ln = take_len(buf)?;
                let name = std::str::from_utf8(take(buf, ln)?)
                    .map_err(|_| corrupt())?
                    .to_string();
                fields.push((name, decode_value(buf)?));
            }
            Value::record(fields)
        }
        7 => {
            let n = take_len(buf)?;
            let mut items = Vec::with_capacity(n.min(buf.len()));
            for _ in 0..n {
                items.push(decode_value(buf)?);
            }
            Value::bag(items)
        }
        _ => return Err(corrupt()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(v, &mut buf).unwrap();
        let mut cursor = &buf[..];
        let back = decode_value(&mut cursor).unwrap();
        assert!(cursor.is_empty(), "codec consumed everything");
        back
    }

    #[test]
    fn codec_round_trips_every_shape() {
        let samples = vec![
            Value::Unit,
            Value::Bool(true),
            Value::Long(-42),
            Value::Double(0.1),
            Value::Double(f64::NAN),
            Value::Double(-0.0),
            Value::str("héllo"),
            Value::str(""),
            Value::pair(Value::Long(1), Value::Double(2.5)),
            Value::record(vec![
                ("x".into(), Value::Long(7)),
                ("y".into(), Value::bag(vec![Value::str("a"), Value::Unit])),
            ]),
            Value::bag(vec![]),
        ];
        for v in &samples {
            let back = roundtrip(v);
            assert_eq!(&back, v, "round-trip changed {v}");
            // NaN compares Equal under total order; also check bits.
            if let (Value::Double(a), Value::Double(b)) = (v, &back) {
                assert_eq!(a.to_bits(), b.to_bits(), "double bits preserved");
            }
        }
    }

    #[test]
    fn codec_rejects_truncated_input() {
        let mut buf = Vec::new();
        encode_value(&Value::str("hello"), &mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = &buf[..];
        assert!(decode_value(&mut cursor).is_err());
    }

    #[test]
    fn codec_rejects_corrupt_length_prefixes_gracefully() {
        // A flipped length field must decode to an error, not abort on a
        // pathological pre-allocation.
        let mut buf = Vec::new();
        encode_value(&Value::tuple(vec![Value::Long(1)]), &mut buf).unwrap();
        buf[1..5].copy_from_slice(&u32::MAX.to_le_bytes()); // tag, then len
        let mut cursor = &buf[..];
        assert!(decode_value(&mut cursor).is_err());
    }

    #[test]
    fn hash_partitioner_matches_legacy_hash_mod() {
        let p = HashPartitioner;
        for i in 0..100i64 {
            let k = Value::Long(i);
            assert_eq!(
                p.partition(&k, 7).unwrap(),
                (key_hash(&k) % 7) as usize,
                "hash partitioner must be the legacy hash-mod"
            );
        }
    }

    #[test]
    fn range_partitioner_orders_buckets() {
        let p = RangePartitioner::new(vec![Value::Long(10), Value::Long(20)]);
        assert_eq!(p.partition(&Value::Long(-5), 3).unwrap(), 0);
        assert_eq!(p.partition(&Value::Long(10), 3).unwrap(), 0, "inclusive");
        assert_eq!(p.partition(&Value::Long(11), 3).unwrap(), 1);
        assert_eq!(p.partition(&Value::Long(20), 3).unwrap(), 1);
        assert_eq!(p.partition(&Value::Long(999), 3).unwrap(), 2);
        // Fewer partitions than bounds never index out of range.
        assert_eq!(p.partition(&Value::Long(999), 2).unwrap(), 1);
    }

    #[test]
    fn range_partitioner_from_sample_covers_all_buckets() {
        let sample: Vec<Value> = (0..100).map(Value::Long).collect();
        let p = RangePartitioner::from_sample(sample, 4);
        assert_eq!(p.bounds().len(), 3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(p.partition(&Value::Long(i), 4).unwrap());
        }
        assert_eq!(seen.len(), 4, "sampled bounds spread keys over buckets");
    }

    #[test]
    fn exchange_spills_and_merges_back_in_source_order() {
        // Budget 0: every flush spills, so the whole exchange goes
        // through run files — and must come back identical to unbounded.
        let reference = {
            let ex = Exchange::new(3, None);
            drive(&ex);
            finish_quiet(ex)
        };
        let spilled = {
            let ex = Exchange::new(3, Some(0));
            drive(&ex);
            finish_quiet(ex)
        };
        assert_eq!(spilled, reference);
        assert_eq!(
            reference.iter().map(Vec::len).sum::<usize>(),
            400,
            "all rows arrived"
        );

        fn drive(ex: &Exchange) {
            // Two "source partitions" interleaving writes.
            let mut w0 = ex.writer(0);
            let mut w1 = ex.writer(1);
            for i in 0..200i64 {
                w0.emit((i % 3) as usize, Value::Long(i)).unwrap();
                w1.emit((i % 3) as usize, Value::Long(1000 + i)).unwrap();
            }
            w0.close().unwrap();
            w1.close().unwrap();
        }
        fn finish_quiet(ex: Exchange) -> Vec<Vec<Value>> {
            let ctx = crate::Context::new(1, 3);
            ex.finish(&ctx).unwrap()
        }
    }

    #[test]
    fn spilled_exchange_records_spill_stats_and_cleans_up() {
        let ctx = crate::Context::new(1, 2);
        let ex = Exchange::new(2, Some(0));
        let mut w = ex.writer(0);
        for i in 0..500i64 {
            w.emit(
                (i % 2) as usize,
                Value::pair(Value::Long(i), Value::str("x")),
            )
            .unwrap();
        }
        w.close().unwrap();
        let dir = ex.state.lock().unwrap().dir.clone().expect("spilled");
        assert!(dir.exists());
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            1,
            "many runs, one spill file (one descriptor per exchange)"
        );
        assert!(
            ex.state.lock().unwrap().spill_runs > 1,
            "tiny budget forces several runs"
        );
        let before = ctx.stats().snapshot();
        let dest = ex.finish(&ctx).unwrap();
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(dest.iter().map(Vec::len).sum::<usize>(), 500);
        assert!(after.spill_files > 0, "{after:?}");
        assert_eq!(after.spilled_records, 500, "{after:?}");
        assert!(after.spilled_bytes > 0, "{after:?}");
        assert_eq!(after.shuffled_records, 500);
        assert!(!dir.exists(), "temp run files removed after finish");
    }

    #[test]
    fn dropped_exchange_removes_its_temp_dir() {
        let ex = Exchange::new(2, Some(0));
        let mut w = ex.writer(0);
        for i in 0..100i64 {
            w.emit(0, Value::Long(i)).unwrap();
        }
        w.close().unwrap();
        let dir = ex.state.lock().unwrap().dir.clone().expect("spilled");
        assert!(dir.exists());
        drop(ex); // error path: finish never runs
        assert!(!dir.exists(), "Drop cleans the temp dir");
    }

    #[test]
    fn unbounded_exchange_never_touches_disk() {
        let ex = Exchange::new(2, None);
        let mut w = ex.writer(0);
        for i in 0..10_000i64 {
            w.emit((i % 2) as usize, Value::Long(i)).unwrap();
        }
        w.close().unwrap();
        assert!(ex.state.lock().unwrap().dir.is_none());
        let ctx = crate::Context::new(1, 2);
        let dest = ex.finish(&ctx).unwrap();
        assert_eq!(dest[0].len() + dest[1].len(), 10_000);
    }

    #[test]
    fn writers_merge_by_source_then_sequence() {
        // Source 1 finishes before source 0 even starts flushing; bucket
        // rows must still come back in source order 0 then 1.
        let ex = Exchange::new(1, Some(0));
        let mut w1 = ex.writer(1);
        for i in 0..100i64 {
            w1.emit(0, Value::Long(1000 + i)).unwrap();
        }
        w1.close().unwrap();
        let mut w0 = ex.writer(0);
        for i in 0..100i64 {
            w0.emit(0, Value::Long(i)).unwrap();
        }
        w0.close().unwrap();
        let ctx = crate::Context::new(1, 1);
        let dest = ex.finish(&ctx).unwrap();
        let expect: Vec<Value> = (0..100).chain(1000..1100).map(Value::Long).collect();
        assert_eq!(dest[0], expect);
    }

    #[test]
    fn exchange_keys_need_not_be_hashable_pairs() {
        // The sink is key-agnostic: a custom scatter can emit any row to
        // any bucket (how reduce_by_key streams combined pairs).
        let ex = Exchange::new(2, None);
        let mut w = ex.writer(0);
        w.emit(1, Value::Unit).unwrap();
        w.emit(0, Value::str("loose row")).unwrap();
        w.close().unwrap();
        let ctx = crate::Context::new(1, 2);
        let dest = ex.finish(&ctx).unwrap();
        assert_eq!(dest[0], vec![Value::str("loose row")]);
        assert_eq!(dest[1], vec![Value::Unit]);
    }

    #[test]
    fn wide_rows_flush_on_bytes_not_row_count() {
        // flush_bytes = max(budget/4, 64 KiB); a 1 MiB budget flushes at
        // 256 KiB — three ~100 KiB rows — long before the 1024-row count.
        let ex = Exchange::new(1, Some(1 << 20));
        let mut w = ex.writer(0);
        let wide = Value::str("x".repeat(100 * 1024));
        for _ in 0..4 {
            w.emit(0, wide.clone()).unwrap();
        }
        assert!(
            ex.state.lock().unwrap().emitted_rows > 0,
            "byte trigger must flush wide rows early"
        );
        w.close().unwrap();
        let ctx = crate::Context::new(1, 1);
        assert_eq!(ex.finish(&ctx).unwrap()[0].len(), 4);
    }

    #[test]
    fn out_of_range_bucket_is_an_error_not_a_panic() {
        let ex = Exchange::new(2, None);
        let mut w = ex.writer(0);
        let err = w.emit(2, Value::Long(1)).unwrap_err();
        assert!(err.message.contains("bucket 2 of 2 partitions"), "{err}");
    }

    #[test]
    fn empty_exchange_produces_empty_buckets() {
        let ctx = crate::Context::new(1, 4);
        let ex = Exchange::new(4, Some(0));
        let dest = ex.finish(&ctx).unwrap();
        assert_eq!(dest.len(), 4);
        assert!(dest.iter().all(Vec::is_empty));
    }
}
