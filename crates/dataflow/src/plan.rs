//! The lazy physical plan: a DAG of [`PlanOp`] nodes built by [`Dataset`]
//! operators, and the executor that fuses narrow chains into single
//! per-partition passes.
//!
//! Narrow operators (`map`, `filter`, `flat_map`, `union`,
//! `map_partitions`) never run when called — they append a node to the
//! plan. At a *materialization point* (a shuffle, `collect`, `reduce`,
//! `broadcast`, `zip_partitions`) the executor collapses every pending
//! chain of row-level nodes into one [`Step`] list and runs it as a single
//! physical stage per partition, feeding each transformed row into a sink
//! without materializing any per-operator intermediate `Vec<Value>`.
//!
//! The executor is directional in the Cranelift optimization-rules sense:
//! a fused plan performs *at most* the work of the eager pipeline it
//! replaces — one pass, no intermediate allocations, one clone per
//! surviving row — never more.
//!
//! [`Dataset`]: crate::Dataset

use std::sync::Arc;

use diablo_runtime::{RuntimeError, Value};

use crate::pool::run_stage;
use crate::Context;

/// Result alias matching the engine's.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// A row-to-row transformation stored in the plan.
pub(crate) type RowMapFn = Arc<dyn Fn(&Value) -> Result<Value> + Send + Sync>;
/// A row predicate stored in the plan.
pub(crate) type RowPredFn = Arc<dyn Fn(&Value) -> Result<bool> + Send + Sync>;
/// A row-to-rows transformation stored in the plan.
pub(crate) type RowFlatFn = Arc<dyn Fn(&Value) -> Result<Vec<Value>> + Send + Sync>;
/// A partition-at-a-time transformation stored in the plan.
pub(crate) type PartFn = Arc<dyn Fn(&[Value]) -> Result<Vec<Value>> + Send + Sync>;

/// One node of the lazy physical plan.
pub(crate) enum PlanOp {
    /// Materialized partitions — the leaves of every plan.
    Scan(Arc<Vec<Vec<Value>>>),
    /// Row-wise `map`.
    Map(Arc<PlanOp>, RowMapFn),
    /// Row-wise `filter`.
    Filter(Arc<PlanOp>, RowPredFn),
    /// Row-wise `flat_map`.
    FlatMap(Arc<PlanOp>, RowFlatFn),
    /// Partition-wise transformation (a fusion barrier for row steps
    /// below it, but itself fused with the steps above it).
    MapPartitions(Arc<PlanOp>, PartFn),
    /// Bag union; keeps the left side's partition count.
    Union(Arc<PlanOp>, Arc<PlanOp>),
}

/// One fused narrow step (the row-level ops of a collapsed chain).
#[derive(Clone)]
pub(crate) enum Step {
    /// From [`PlanOp::Map`].
    Map(RowMapFn),
    /// From [`PlanOp::Filter`].
    Filter(RowPredFn),
    /// From [`PlanOp::FlatMap`].
    FlatMap(RowFlatFn),
}

impl Step {
    fn label(&self) -> &'static str {
        match self {
            Step::Map(_) => "map",
            Step::Filter(_) => "filter",
            Step::FlatMap(_) => "flat_map",
        }
    }
}

/// Drives one source row through a fused step chain, feeding every
/// surviving output row to `sink`. No intermediate collections: `map`
/// passes its output by value, `filter` short-circuits, and `flat_map`
/// iterates its expansion in place.
pub(crate) fn drive(
    row: &Value,
    steps: &[Step],
    sink: &mut dyn FnMut(Value) -> Result<()>,
) -> Result<()> {
    match steps.split_first() {
        None => sink(row.clone()),
        Some((Step::Map(f), rest)) => drive_owned(f(row)?, rest, sink),
        Some((Step::Filter(f), rest)) => {
            if f(row)? {
                drive(row, rest, sink)?;
            }
            Ok(())
        }
        Some((Step::FlatMap(f), rest)) => {
            for v in f(row)? {
                drive_owned(v, rest, sink)?;
            }
            Ok(())
        }
    }
}

fn drive_owned(
    row: Value,
    steps: &[Step],
    sink: &mut dyn FnMut(Value) -> Result<()>,
) -> Result<()> {
    match steps.split_first() {
        None => sink(row),
        Some((Step::Map(f), rest)) => drive_owned(f(&row)?, rest, sink),
        Some((Step::Filter(f), rest)) => {
            if f(&row)? {
                drive_owned(row, rest, sink)?;
            }
            Ok(())
        }
        Some((Step::FlatMap(f), rest)) => {
            for v in f(&row)? {
                drive_owned(v, rest, sink)?;
            }
            Ok(())
        }
    }
}

/// A plan collapsed to a base node plus the fused row steps above it.
pub(crate) struct Collapsed {
    /// The deepest non-row node: `Scan`, `MapPartitions`, or `Union`.
    pub base: Arc<PlanOp>,
    /// Row steps to apply to the base's rows, in execution order.
    pub steps: Vec<Step>,
}

/// Walks `Map`/`Filter`/`FlatMap` nodes down to the nearest barrier.
pub(crate) fn collapse(plan: &Arc<PlanOp>) -> Collapsed {
    let mut steps: Vec<Step> = Vec::new();
    let mut cur = plan.clone();
    loop {
        let next = match cur.as_ref() {
            PlanOp::Map(input, f) => {
                steps.push(Step::Map(f.clone()));
                input.clone()
            }
            PlanOp::Filter(input, f) => {
                steps.push(Step::Filter(f.clone()));
                input.clone()
            }
            PlanOp::FlatMap(input, f) => {
                steps.push(Step::FlatMap(f.clone()));
                input.clone()
            }
            PlanOp::Scan(_) | PlanOp::MapPartitions(_, _) | PlanOp::Union(_, _) => break,
        };
        cur = next;
    }
    steps.reverse();
    Collapsed { base: cur, steps }
}

/// Executor output: shared when no work was needed, owned otherwise.
pub(crate) enum Parts {
    /// Untouched materialized partitions (zero-copy).
    Shared(Arc<Vec<Vec<Value>>>),
    /// Freshly computed partitions.
    Owned(Vec<Vec<Value>>),
}

impl Parts {
    /// The partitions as a slice.
    pub fn as_slice(&self) -> &[Vec<Value>] {
        match self {
            Parts::Shared(p) => p,
            Parts::Owned(p) => p,
        }
    }

    /// Converts into a shared handle without copying owned data.
    pub fn into_arc(self) -> Arc<Vec<Vec<Value>>> {
        match self {
            Parts::Shared(p) => p,
            Parts::Owned(p) => Arc::new(p),
        }
    }

    /// Converts into owned partitions, cloning only if still shared
    /// elsewhere.
    pub fn into_owned(self) -> Vec<Vec<Value>> {
        match self {
            Parts::Shared(p) => Arc::try_unwrap(p).unwrap_or_else(|p| p.as_ref().clone()),
            Parts::Owned(p) => p,
        }
    }
}

/// Materializes a plan into partitions, fusing every narrow chain into one
/// physical stage per `Scan`/`MapPartitions` segment.
pub(crate) fn materialize(ctx: &Context, plan: &Arc<PlanOp>) -> Result<Parts> {
    materialize_with(ctx, plan, &[])
}

/// [`materialize`] with extra steps appended after the plan's own rows —
/// how steps above a `Union` are pushed down into both branches.
fn materialize_with(ctx: &Context, plan: &Arc<PlanOp>, extra: &[Step]) -> Result<Parts> {
    let Collapsed { base, steps } = collapse(plan);
    let mut all = steps;
    all.extend(extra.iter().cloned());
    match base.as_ref() {
        PlanOp::Scan(parts) => {
            if all.is_empty() {
                return Ok(Parts::Shared(parts.clone()));
            }
            let out = run_fused_stage(ctx, parts, None, &all, parts.len())?;
            Ok(Parts::Owned(out))
        }
        PlanOp::MapPartitions(input, f) => {
            let inp = materialize(ctx, input)?;
            let out = run_fused_stage(
                ctx,
                inp.as_slice(),
                Some(f.clone()),
                &all,
                inp.as_slice().len(),
            )?;
            Ok(Parts::Owned(out))
        }
        PlanOp::Union(left, right) => {
            // Producing owned combined partitions requires owning the
            // rows; a side that is still shared (a bare scan) is cloned
            // here. The hot consumers — shuffles and reductions — never
            // take this path: `run_partitionwise` reads union operands in
            // place via segments.
            let lp = materialize_with(ctx, left, &all)?;
            let rp = materialize_with(ctx, right, &all)?;
            let mut out = lp.into_owned();
            let n = out.len().max(1);
            for (i, bucket) in rp.into_owned().into_iter().enumerate() {
                if out.is_empty() {
                    out.push(bucket);
                } else {
                    out[i % n].extend(bucket);
                }
            }
            ctx.plan_note(format!(
                "union: folded right side into {n} partitions (no stage)"
            ));
            Ok(Parts::Owned(out))
        }
        // collapse() never returns a row node as base.
        _ => Err(RuntimeError::new("corrupt plan: row node as base")),
    }
}

/// Runs one fused physical stage: per partition, optionally apply a
/// partition-level function, then drive every row through `steps`.
fn run_fused_stage(
    ctx: &Context,
    input: &[Vec<Value>],
    prelude: Option<PartFn>,
    steps: &[Step],
    parts: usize,
) -> Result<Vec<Vec<Value>>> {
    ctx.record_physical_stage();
    ctx.plan_note(describe_stage(
        ctx,
        parts,
        prelude.is_some(),
        steps,
        "materialize",
    ));
    run_stage(ctx.workers(), input, |_, part: &Vec<Value>| {
        let mut out = Vec::with_capacity(part.len());
        let mut sink = |v: Value| {
            out.push(v);
            Ok(())
        };
        match &prelude {
            Some(f) => {
                for row in f(part)? {
                    drive_owned(row, steps, &mut sink)?;
                }
            }
            None => {
                for row in part {
                    drive(row, steps, &mut sink)?;
                }
            }
        }
        Ok(out)
    })
}

/// Runs `task` once per partition over the plan's *transformed* rows, in
/// one fused physical stage when the base is a `Scan` or a tree of
/// `Union`s over scans. `task` receives the partition index and a
/// [`PartitionRows`] cursor it can drain exactly once; this is how
/// shuffles and reductions consume a pending chain without an
/// intermediate materialization — for unions, without copying either
/// operand.
pub(crate) fn run_partitionwise<R, F>(
    ctx: &Context,
    plan: &Arc<PlanOp>,
    label: &str,
    task: F,
) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(usize, PartitionRows<'_>) -> Result<R> + Sync,
{
    let Collapsed { base, steps } = collapse(plan);
    match base.as_ref() {
        PlanOp::Scan(parts) => {
            ctx.record_physical_stage();
            ctx.plan_note(describe_stage(ctx, parts.len(), false, &steps, label));
            run_stage(ctx.workers(), parts, |i, part: &Vec<Value>| {
                task(
                    i,
                    PartitionRows {
                        segments: vec![Segment {
                            rows: part,
                            steps: &steps,
                        }],
                    },
                )
            })
        }
        PlanOp::Union(_, _) => {
            // Read both operands in place: each virtual partition is a
            // list of (source, partition) segments folded together with
            // the eager engine's `i % n` composition, each carrying its
            // own fused step chain. No operand is copied.
            let mut sources: Vec<(Parts, Vec<Step>)> = Vec::new();
            let mut virt: Vec<Vec<(usize, usize)>> = Vec::new();
            flatten_union(ctx, &base, &steps, &mut sources, &mut virt)?;
            ctx.record_physical_stage();
            let stage = ctx.stats().snapshot().physical_stages;
            ctx.plan_note(format!(
                "stage {stage}: union[{} sources, {} partitions] ⇒ {label} (read in place)",
                sources.len(),
                virt.len()
            ));
            run_stage(ctx.workers(), &virt, |i, segs: &Vec<(usize, usize)>| {
                let segments = segs
                    .iter()
                    .map(|&(src, part)| Segment {
                        rows: &sources[src].0.as_slice()[part],
                        steps: &sources[src].1,
                    })
                    .collect();
                task(i, PartitionRows { segments })
            })
        }
        _ => {
            // MapPartitions base: materialize it (fusing inside), then
            // run the consumer as one more stage with no row steps.
            let inp = materialize_with(ctx, &base, &steps)?;
            let parts = inp.as_slice();
            ctx.record_physical_stage();
            ctx.plan_note(describe_stage(ctx, parts.len(), false, &[], label));
            run_stage(ctx.workers(), parts, |i, part: &Vec<Value>| {
                task(
                    i,
                    PartitionRows {
                        segments: vec![Segment {
                            rows: part,
                            steps: &[],
                        }],
                    },
                )
            })
        }
    }
}

/// Flattens a tree of `Union` nodes into shared sources plus virtual
/// partitions (lists of `(source, partition)` indices), pushing the fused
/// steps above each branch down into its segments. The right operand's
/// partitions fold into the left's by index modulo the left's partition
/// count — the same composition the eager engine produced by extending
/// partition vectors, but without moving a row.
fn flatten_union(
    ctx: &Context,
    plan: &Arc<PlanOp>,
    extra: &[Step],
    sources: &mut Vec<(Parts, Vec<Step>)>,
    virt: &mut Vec<Vec<(usize, usize)>>,
) -> Result<()> {
    let Collapsed { base, steps } = collapse(plan);
    let mut all = steps;
    all.extend(extra.iter().cloned());
    match base.as_ref() {
        PlanOp::Scan(parts) => {
            let src = sources.len();
            let n = parts.len();
            sources.push((Parts::Shared(parts.clone()), all));
            virt.extend((0..n).map(|p| vec![(src, p)]));
            Ok(())
        }
        PlanOp::Union(l, r) => {
            let start = virt.len();
            flatten_union(ctx, l, &all, sources, virt)?;
            let n = virt.len() - start;
            let mut rvirt: Vec<Vec<(usize, usize)>> = Vec::new();
            flatten_union(ctx, r, &all, sources, &mut rvirt)?;
            if n == 0 {
                virt.extend(rvirt);
            } else {
                for (j, segs) in rvirt.into_iter().enumerate() {
                    virt[start + (j % n)].extend(segs);
                }
            }
            Ok(())
        }
        _ => {
            // MapPartitions under a union: materialize just this branch.
            let parts = materialize_with(ctx, &base, &all)?;
            let src = sources.len();
            let n = parts.as_slice().len();
            sources.push((parts, Vec::new()));
            virt.extend((0..n).map(|p| vec![(src, p)]));
            Ok(())
        }
    }
}

/// One run of source rows with the fused chain still to be applied.
struct Segment<'a> {
    rows: &'a [Value],
    steps: &'a [Step],
}

/// The rows of one (possibly union-composed) partition.
pub(crate) struct PartitionRows<'a> {
    segments: Vec<Segment<'a>>,
}

impl PartitionRows<'_> {
    /// Feeds every transformed row to `sink`, segment by segment.
    pub fn for_each(&self, sink: &mut dyn FnMut(Value) -> Result<()>) -> Result<()> {
        for seg in &self.segments {
            for row in seg.rows {
                drive(row, seg.steps, sink)?;
            }
        }
        Ok(())
    }
}

fn describe_stage(
    ctx: &Context,
    parts: usize,
    prelude: bool,
    steps: &[Step],
    label: &str,
) -> String {
    let mut chain = String::new();
    if prelude {
        chain.push_str(" → map_partitions");
    }
    for s in steps {
        chain.push_str(" → ");
        chain.push_str(s.label());
    }
    let fused = steps.len() + usize::from(prelude);
    let stage = ctx.stats().snapshot().physical_stages;
    if fused > 1 {
        format!("stage {stage}: scan[{parts}p]{chain} ⇒ {label} (fused {fused} narrow ops)")
    } else {
        format!("stage {stage}: scan[{parts}p]{chain} ⇒ {label}")
    }
}

/// Renders a pending (unforced) plan as an indented tree — the narrow
/// chains a materialization point would fuse.
pub(crate) fn render(plan: &Arc<PlanOp>, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let Collapsed { base, steps } = collapse(plan);
    match base.as_ref() {
        PlanOp::Scan(parts) => {
            out.push_str(&format!("{pad}scan[{}p]", parts.len()));
        }
        PlanOp::MapPartitions(input, _) => {
            render(input, indent, out);
            out.push_str(" → map_partitions");
        }
        PlanOp::Union(l, r) => {
            out.push_str(&format!("{pad}union:\n"));
            render(l, indent + 1, out);
            out.push('\n');
            render(r, indent + 1, out);
        }
        // collapse() never returns a row node as base.
        PlanOp::Map(_, _) | PlanOp::Filter(_, _) | PlanOp::FlatMap(_, _) => {}
    }
    for s in &steps {
        out.push_str(" → ");
        out.push_str(s.label());
    }
    if steps.len() > 1 {
        out.push_str(&format!(" (1 fused stage, {} ops)", steps.len()));
    }
}
